//! Workspace umbrella crate.
//!
//! `pc-suite` carries no code of its own: it exists so the workspace-level
//! integration tests in `tests/` and the runnable examples in `examples/`
//! have a package to hang off. The real functionality lives in the member
//! crates — `pcgraph`, `cograph`, `parprims`, `pram`, `pathcover`,
//! `pc-bench` and `pcservice`.

#![forbid(unsafe_code)]
