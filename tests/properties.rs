//! Property-based tests over random cotrees: every algorithm must produce a
//! valid, minimum cover, and the core invariants of the substrate crates must
//! hold for arbitrary inputs.

use cograph::{BinaryCotree, Cotree};
use parprims::brackets::{match_brackets_seq, BracketKind};
use parprims::scan::{prefix_sums_seq, ScanOp};
use pathcover::prelude::*;
use pcgraph::path::brute_force_min_path_cover;
use proptest::prelude::*;

/// Strategy producing arbitrary cotrees with up to `max_leaves` leaves.
fn arb_cotree(max_leaves: usize) -> impl Strategy<Value = Cotree> {
    let leaf = Just(Cotree::single(0));
    leaf.prop_recursive(6, max_leaves as u32, 4, |inner| {
        (prop::collection::vec(inner, 2..4), any::<bool>()).prop_map(|(parts, join)| {
            if join {
                Cotree::join_of(parts)
            } else {
                Cotree::union_of(parts)
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_cover_is_valid_and_minimum(cotree in arb_cotree(24)) {
        let graph = cotree.to_graph();
        let cover = path_cover(&cotree);
        let report = verify_path_cover(&graph, &cover);
        prop_assert!(report.is_valid(), "{report:?}");
        prop_assert_eq!(cover.len(), min_path_cover_size(&cotree));
        prop_assert_eq!(cover.total_vertices(), graph.num_vertices());
    }

    #[test]
    fn sequential_and_parallel_covers_have_equal_size(cotree in arb_cotree(24)) {
        prop_assert_eq!(sequential_path_cover(&cotree).len(), path_cover(&cotree).len());
    }

    #[test]
    fn cover_size_matches_brute_force_on_small_instances(cotree in arb_cotree(6)) {
        let graph = cotree.to_graph();
        if graph.num_vertices() <= 12 {
            prop_assert_eq!(min_path_cover_size(&cotree), brute_force_min_path_cover(&graph));
        }
    }

    #[test]
    fn path_counts_match_between_sequential_and_pram(cotree in arb_cotree(20)) {
        let (tree, leaf_counts) = BinaryCotree::leftist_from_cotree(&cotree);
        let seq = cograph::path_counts_seq(&tree, &leaf_counts);
        let mut machine = pram::Pram::strict(pram::Mode::Erew, 8);
        let par = cograph::path_counts_pram(&mut machine, &tree, &leaf_counts);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn hamiltonian_path_iff_single_path_cover(cotree in arb_cotree(16)) {
        prop_assert_eq!(has_hamiltonian_path(&cotree), path_cover(&cotree).len() == 1);
    }

    #[test]
    fn or_reduction_is_correct(bits in prop::collection::vec(any::<bool>(), 1..40)) {
        let expected = bits.iter().any(|&b| b);
        prop_assert_eq!(or_via_path_cover(&bits, min_path_cover_size), expected);
    }

    #[test]
    fn scan_is_associative_oracle(values in prop::collection::vec(-100i64..100, 0..200)) {
        let sums = prefix_sums_seq(&values, ScanOp::Sum);
        if let Some(last) = sums.last() {
            prop_assert_eq!(*last, values.iter().sum::<i64>());
        }
        let maxes = prefix_sums_seq(&values, ScanOp::Max);
        if let Some(last) = maxes.last() {
            prop_assert_eq!(*last, values.iter().copied().max().unwrap_or(i64::MIN));
        }
    }

    #[test]
    fn bracket_matching_pairs_are_consistent(kinds in prop::collection::vec(any::<bool>(), 0..300)) {
        let kinds: Vec<BracketKind> = kinds
            .into_iter()
            .map(|b| if b { BracketKind::Open } else { BracketKind::Close })
            .collect();
        let partner = match_brackets_seq(&kinds);
        for (i, p) in partner.iter().enumerate() {
            if let Some(j) = p {
                prop_assert_eq!(partner[*j], Some(i));
                let (open, close) = if i < *j { (i, *j) } else { (*j, i) };
                prop_assert_eq!(kinds[open], BracketKind::Open);
                prop_assert_eq!(kinds[close], BracketKind::Close);
            }
        }
    }
}
