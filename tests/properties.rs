//! Property-based tests over random cotrees: every algorithm must produce a
//! valid, minimum cover, and the core invariants of the substrate crates must
//! hold for arbitrary inputs.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these properties are driven by seeded `ChaCha8Rng` case generators: each
//! property checks a few dozen deterministic pseudo-random cases, mirroring
//! the original `ProptestConfig::with_cases(48)` budget.

use cograph::{BinaryCotree, Cotree};
use parprims::brackets::{match_brackets_seq, BracketKind};
use parprims::scan::{prefix_sums_seq, ScanOp};
use pathcover::prelude::*;
use pcgraph::path::brute_force_min_path_cover;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 48;

/// Arbitrary cotree with between 1 and `max_leaves` leaves: recursively
/// union/join 2–3 random parts, splitting the leaf budget at random.
fn arb_cotree<R: Rng>(max_leaves: usize, rng: &mut R) -> Cotree {
    let leaves = rng.gen_range(1..=max_leaves.max(1));
    build_cotree(leaves, rng)
}

fn build_cotree<R: Rng>(leaves: usize, rng: &mut R) -> Cotree {
    if leaves <= 1 {
        return Cotree::single(0);
    }
    let arity = rng.gen_range(2..=3usize).min(leaves);
    // Split `leaves` into `arity` nonempty parts.
    let mut budgets = vec![1usize; arity];
    for _ in 0..leaves - arity {
        let i = rng.gen_range(0..arity);
        budgets[i] += 1;
    }
    let parts: Vec<Cotree> = budgets.into_iter().map(|b| build_cotree(b, rng)).collect();
    if rng.gen_bool(0.5) {
        Cotree::join_of(parts)
    } else {
        Cotree::union_of(parts)
    }
}

#[test]
fn parallel_cover_is_valid_and_minimum() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    for _ in 0..CASES {
        let cotree = arb_cotree(24, &mut rng);
        let graph = cotree.to_graph();
        let cover = path_cover(&cotree);
        let report = verify_path_cover(&graph, &cover);
        assert!(report.is_valid(), "{report:?}");
        assert_eq!(cover.len(), min_path_cover_size(&cotree));
        assert_eq!(cover.total_vertices(), graph.num_vertices());
    }
}

#[test]
fn sequential_and_parallel_covers_have_equal_size() {
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    for _ in 0..CASES {
        let cotree = arb_cotree(24, &mut rng);
        assert_eq!(
            sequential_path_cover(&cotree).len(),
            path_cover(&cotree).len()
        );
    }
}

#[test]
fn cover_size_matches_brute_force_on_small_instances() {
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    for _ in 0..CASES {
        let cotree = arb_cotree(6, &mut rng);
        let graph = cotree.to_graph();
        if graph.num_vertices() <= 12 {
            assert_eq!(
                min_path_cover_size(&cotree),
                brute_force_min_path_cover(&graph)
            );
        }
    }
}

#[test]
fn path_counts_match_between_sequential_and_pram() {
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    for _ in 0..CASES {
        let cotree = arb_cotree(20, &mut rng);
        let (tree, leaf_counts) = BinaryCotree::leftist_from_cotree(&cotree);
        let seq = cograph::path_counts_seq(&tree, &leaf_counts);
        let mut machine = pram::Pram::strict(pram::Mode::Erew, 8);
        let par = cograph::path_counts_pram(&mut machine, &tree, &leaf_counts);
        assert_eq!(seq, par);
    }
}

#[test]
fn hamiltonian_path_iff_single_path_cover() {
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    for _ in 0..CASES {
        let cotree = arb_cotree(16, &mut rng);
        assert_eq!(
            has_hamiltonian_path(&cotree),
            path_cover(&cotree).len() == 1
        );
    }
}

#[test]
fn or_reduction_is_correct() {
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    for _ in 0..CASES {
        let n = rng.gen_range(1..40usize);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
        let expected = bits.iter().any(|&b| b);
        assert_eq!(or_via_path_cover(&bits, min_path_cover_size), expected);
    }
    // The all-false and all-true corners, which random sampling can miss.
    for value in [false, true] {
        let bits = vec![value; 17];
        assert_eq!(or_via_path_cover(&bits, min_path_cover_size), value);
    }
}

#[test]
fn scan_is_associative_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(107);
    for _ in 0..CASES {
        let n = rng.gen_range(0..200usize);
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-100..100i64)).collect();
        let sums = prefix_sums_seq(&values, ScanOp::Sum);
        if let Some(last) = sums.last() {
            assert_eq!(*last, values.iter().sum::<i64>());
        }
        let maxes = prefix_sums_seq(&values, ScanOp::Max);
        if let Some(last) = maxes.last() {
            assert_eq!(*last, values.iter().copied().max().unwrap_or(i64::MIN));
        }
    }
}

#[test]
fn bracket_matching_pairs_are_consistent() {
    let mut rng = ChaCha8Rng::seed_from_u64(108);
    for _ in 0..CASES {
        let n = rng.gen_range(0..300usize);
        let kinds: Vec<BracketKind> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    BracketKind::Open
                } else {
                    BracketKind::Close
                }
            })
            .collect();
        let partner = match_brackets_seq(&kinds);
        for (i, p) in partner.iter().enumerate() {
            if let Some(j) = p {
                assert_eq!(partner[*j], Some(i));
                let (open, close) = if i < *j { (i, *j) } else { (*j, i) };
                assert_eq!(kinds[open], BracketKind::Open);
                assert_eq!(kinds[close], BracketKind::Close);
            }
        }
    }
}
