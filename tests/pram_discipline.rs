//! Access-discipline integration tests: the primitives that claim to be
//! EREW-clean must report zero violations on the simulator, and the
//! simulator must still detect deliberately conflicting programs.

use cograph::{random_cotree, BinaryCotree, CotreeShape};
use parprims::scan::{prefix_sums_pram, ScanOp};
use pathcover::prelude::*;
use pram::{Mode, Pram, ViolationKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn scans_euler_and_contraction_are_erew_clean() {
    let mut rng = ChaCha8Rng::seed_from_u64(20);
    let cotree = random_cotree(300, CotreeShape::Mixed, &mut rng);
    let (tree, leaf_counts) = BinaryCotree::leftist_from_cotree(&cotree);

    let mut machine = Pram::strict(Mode::Erew, pram::optimal_processors(300));
    let data: Vec<i64> = (0..500).collect();
    let input = machine.alloc_from(&data);
    let _ = prefix_sums_pram(&mut machine, input, ScanOp::Sum, 0);
    let _ = cograph::path_counts_pram(&mut machine, &tree, &leaf_counts);
    assert!(machine.metrics().is_clean());
}

#[test]
fn full_pipeline_reports_conflict_counts() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let cotree = random_cotree(200, CotreeShape::Balanced, &mut rng);
    // Under CREW accounting the pipeline must be entirely clean.
    let crew = pram_path_cover(
        &cotree,
        PramConfig {
            mode: Mode::Crew,
            processors: None,
            strict: false,
            ..PramConfig::default()
        },
    );
    assert!(
        crew.metrics.as_ref().expect("sim metrics").is_clean(),
        "CREW run reported violations"
    );
    // Under EREW accounting the only tolerated conflicts are the concurrent
    // *reads* of the tournament tree in the bracket-matching extraction
    // phase (the documented approximation); no concurrent writes ever.
    let erew = pram_path_cover(
        &cotree,
        PramConfig {
            mode: Mode::Erew,
            processors: None,
            strict: false,
            ..PramConfig::default()
        },
    );
    assert!(erew
        .metrics
        .as_ref()
        .expect("sim metrics")
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::ConcurrentRead));
}

#[test]
fn deliberate_conflicts_are_detected() {
    let mut machine = Pram::new(Mode::Erew, 4);
    let cell = machine.alloc(1);
    machine.parallel_for(4, |ctx, i| ctx.write(cell, 0, i as i64));
    assert!(!machine.metrics().is_clean());
    assert!(machine
        .metrics()
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::ConcurrentWrite));
}

#[test]
fn processor_sweep_respects_brents_principle() {
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let n = 1 << 9;
    let cotree = random_cotree(n, CotreeShape::Balanced, &mut rng);
    let mut prev_steps = None;
    for p in [1usize, 4, 16, 64, 256] {
        let outcome = pram_path_cover(
            &cotree,
            PramConfig {
                mode: Mode::Erew,
                processors: Some(p),
                strict: false,
                ..PramConfig::default()
            },
        );
        if let Some(prev) = prev_steps {
            assert!(
                outcome.metrics.as_ref().expect("sim metrics").steps <= prev,
                "more processors must not be slower"
            );
        }
        prev_steps = Some(outcome.metrics.as_ref().expect("sim metrics").steps);
    }
}
