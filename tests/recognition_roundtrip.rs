//! Recognition round-trips: materialising a cotree and recognising the
//! resulting graph must reproduce the same adjacency structure, for every
//! generator shape, and non-cographs must be rejected with the right error
//! at every layer (library `Option` and service `ServiceError`).

use cograph::{random_cotree, recognize, CotreeShape};
use pcgraph::{generators, Graph};
use pcservice::{GraphSpec, QueryEngine, QueryKind, QueryRequest, ServiceError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn every_shape_round_trips_through_recognition() {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    for shape in CotreeShape::ALL {
        for n in [1usize, 2, 3, 7, 16, 33, 64] {
            let cotree = random_cotree(n, shape, &mut rng);
            let graph = cotree.to_graph();
            let recognised = recognize(&graph)
                .unwrap_or_else(|| panic!("{shape:?} n={n}: materialised cotree must recognise"));
            assert!(
                recognised.validate().is_ok(),
                "{shape:?} n={n}: invalid cotree"
            );
            // Adjacency equality: `Graph: Eq` compares sorted adjacency lists,
            // i.e. the exact (labelled) adjacency structure.
            assert_eq!(
                recognised.to_graph(),
                graph,
                "{shape:?} n={n}: adjacency changed"
            );
            // And the round trip is a fixed point from here on.
            let again = recognize(&recognised.to_graph()).expect("still a cograph");
            assert_eq!(
                again.to_graph(),
                graph,
                "{shape:?} n={n}: second round trip drifted"
            );
        }
    }
}

#[test]
fn recognition_is_label_faithful() {
    // The recognised cotree must carry the *original* vertex ids, not a
    // relabelling: check that each leaf set matches 0..n.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cotree = random_cotree(40, CotreeShape::Mixed, &mut rng);
    let graph = cotree.to_graph();
    let recognised = recognize(&graph).expect("cograph");
    let mut leaves = recognised.vertices();
    leaves.sort_unstable();
    let expected: Vec<u32> = (0..40).collect();
    assert_eq!(leaves, expected);
}

#[test]
fn p4_family_is_rejected_everywhere_with_witnesses() {
    // Library layer: recognition returns None for P4 and supergraphs of it,
    // and the certified form carries an induced P4.
    assert!(recognize(&generators::p4()).is_none());
    assert!(recognize(&generators::path_graph(5)).is_none());
    assert!(recognize(&generators::cycle_graph(5)).is_none());
    // Service layer: the same inputs produce the typed NotACograph error
    // whose witness is a real induced P4 of the offending graph.
    let engine = QueryEngine::default();
    for (n, edges) in [
        (4usize, vec![(0u32, 1u32), (1, 2), (2, 3)]), // P4 itself
        (5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),    // P5
        (5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]), // C5
    ] {
        let graph = Graph::from_edges(n, &edges).unwrap();
        let response = engine.execute(&QueryRequest::new(
            QueryKind::Recognize,
            GraphSpec::Graph(graph.clone()),
        ));
        let Err(ServiceError::NotACograph { vertices, witness }) = response.outcome else {
            panic!("expected typed rejection for n={n} {edges:?}");
        };
        assert_eq!(vertices, n);
        let p4 = cograph::InducedP4 { path: witness };
        assert!(
            p4.verify(&graph),
            "witness {p4} is not an induced P4 of n={n} {edges:?}"
        );
        assert_eq!(response.meta.canonical_key, None);
    }
}

#[test]
fn cographs_pass_the_service_recognize_query() {
    // C4 = K_{2,2} is the classic just-barely-a-cograph; its recognised
    // cotree must materialise back to the same graph.
    let c4 = generators::cycle_graph(4);
    let engine = QueryEngine::default();
    let response = engine.execute(&QueryRequest::new(
        QueryKind::Recognize,
        GraphSpec::Graph(c4.clone()),
    ));
    match response.outcome.expect("C4 is a cograph") {
        pcservice::Answer::Recognized {
            is_cograph,
            vertices,
            edges,
            term,
            ..
        } => {
            assert!(is_cograph);
            assert_eq!(vertices, 4);
            assert_eq!(edges, 4);
            // The emitted term re-ingests to an isomorphic graph: term leaf
            // names are renumbered by first appearance, so compare counts
            // and degree multisets rather than exact adjacency.
            let reparsed = pcservice::ingest::parse_cotree_term(&term)
                .unwrap()
                .to_graph();
            assert_eq!(reparsed.num_vertices(), 4);
            assert_eq!(reparsed.num_edges(), 4);
            let mut degrees: Vec<usize> = (0..4).map(|v| reparsed.degree(v)).collect();
            degrees.sort_unstable();
            assert_eq!(degrees, vec![2, 2, 2, 2]);
        }
        other => panic!("wrong answer variant: {other:?}"),
    }
}
