//! End-to-end integration: graph -> recognition -> cotree -> cover ->
//! verification, across all workload families and several sizes.

use cograph::{random_cotree, recognize, CotreeShape};
use pathcover::prelude::*;
use pcgraph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn from_raw_graph_to_verified_cover() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    // Cluster graphs are cographs; start from the raw graph as a user would.
    let graph = generators::random_cluster_graph(6, 5, &mut rng);
    let cotree = recognize(&graph).expect("cluster graphs are cographs");
    let cover = path_cover(&cotree);
    let report = verify_path_cover(&graph, &cover);
    assert!(report.is_valid(), "{report:?}");
    assert_eq!(cover.len(), sequential_path_cover(&cotree).len());
}

#[test]
fn non_cographs_are_rejected_by_recognition() {
    assert!(recognize(&generators::path_graph(5)).is_none());
    assert!(recognize(&generators::cycle_graph(5)).is_none());
}

#[test]
fn all_families_and_sizes_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for shape in CotreeShape::ALL {
        for n in [2usize, 17, 64, 250] {
            let cotree = random_cotree(n, shape, &mut rng);
            let graph = cotree.to_graph();
            let parallel = path_cover(&cotree);
            let sequential = sequential_path_cover(&cotree);
            assert!(
                verify_path_cover(&graph, &parallel).is_valid(),
                "{shape:?} n={n}"
            );
            assert!(
                verify_path_cover(&graph, &sequential).is_valid(),
                "{shape:?} n={n}"
            );
            assert_eq!(parallel.len(), sequential.len(), "{shape:?} n={n}");
            assert_eq!(
                parallel.len(),
                min_path_cover_size(&cotree),
                "{shape:?} n={n}"
            );
        }
    }
}

#[test]
fn hamiltonian_decisions_are_consistent_with_covers() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for n in [2usize, 9, 40, 120] {
        let cotree = cograph::generators::random_connected_cotree(n, CotreeShape::Mixed, &mut rng);
        let cover = path_cover(&cotree);
        assert_eq!(has_hamiltonian_path(&cotree), cover.len() == 1);
        if has_hamiltonian_cycle(&cotree) {
            assert!(has_hamiltonian_path(&cotree));
        }
    }
}

#[test]
fn pram_and_native_agree_across_modes() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let cotree = random_cotree(120, CotreeShape::Mixed, &mut rng);
    let graph = cotree.to_graph();
    let native = path_cover(&cotree);
    for mode in [pram::Mode::Erew, pram::Mode::Crew] {
        let outcome = pram_path_cover(
            &cotree,
            PramConfig {
                mode,
                processors: None,
                strict: false,
                ..PramConfig::default()
            },
        );
        assert_eq!(outcome.cover.len(), native.len(), "{mode}");
        assert!(
            verify_path_cover(&graph, &outcome.cover).is_valid(),
            "{mode}"
        );
    }
}
