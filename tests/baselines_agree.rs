//! The optimal algorithm, the sequential algorithm and every baseline find
//! covers of the same (minimum) size, and all of them verify against the
//! graph.

use cograph::{random_cotree, CotreeShape};
use pathcover::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn all_algorithms_agree_on_cover_size() {
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    for shape in CotreeShape::ALL {
        let cotree = random_cotree(90, shape, &mut rng);
        let graph = cotree.to_graph();
        let expected = min_path_cover_size(&cotree);

        let outcomes = vec![
            ("sequential", sequential_path_cover(&cotree)),
            ("parallel", path_cover(&cotree)),
            (
                "pram",
                pram_path_cover(&cotree, PramConfig::default()).cover,
            ),
            ("naive", naive_parallel_cover(&cotree).cover),
            ("lin et al.", lin_etal_cover(&cotree).cover),
            ("adhar-peng", adhar_peng_like_cover(&cotree).cover),
        ];
        for (name, cover) in outcomes {
            assert_eq!(cover.len(), expected, "{name} on {shape:?}");
            assert!(
                verify_path_cover(&graph, &cover).is_valid(),
                "{name} produced an invalid cover on {shape:?}"
            );
        }
    }
}

#[test]
fn comparison_metrics_have_the_expected_ordering() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let n = 1 << 10;
    let skewed = random_cotree(n, CotreeShape::Skewed, &mut rng);
    let ours = pram_path_cover(&skewed, PramConfig::default());
    let naive = naive_parallel_cover(&skewed);
    // The naive parallelisation pays one round per level: on a skewed cotree
    // of this size it must already be slower than the optimal algorithm.
    assert!(
        naive.metrics.as_ref().expect("sim metrics").steps
            > ours.metrics.as_ref().expect("sim metrics").steps,
        "naive {} vs ours {}",
        naive.metrics.as_ref().expect("sim metrics").steps,
        ours.metrics.as_ref().expect("sim metrics").steps
    );
    // Work optimality: our work per vertex stays within a constant band.
    assert!(ours.metrics.as_ref().expect("sim metrics").work_per_item(n) < 5000.0);
}
