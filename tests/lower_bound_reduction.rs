//! Integration tests for the Theorem 2.2 reduction: OR solved through the
//! path-cover oracle, including through the full PRAM pipeline.

use pathcover::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn or_via_the_full_pram_pipeline() {
    let mut rng = ChaCha8Rng::seed_from_u64(30);
    for n in [8usize, 32, 128] {
        for density in [0.0, 0.1, 0.9] {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(density)).collect();
            let expected = bits.iter().any(|&b| b);
            let via_pipeline = or_via_path_cover(&bits, |cotree| {
                pram_path_cover(cotree, PramConfig::default()).cover.len()
            });
            assert_eq!(via_pipeline, expected, "n={n} density={density}");
        }
    }
}

#[test]
fn reduction_cover_sizes_follow_the_formula() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for n in [4usize, 20, 100] {
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
        let ones = bits.iter().filter(|&&b| b).count();
        let cotree = or_instance_cotree(&bits);
        assert_eq!(min_path_cover_size(&cotree), n - ones + 2);
        let cover = path_cover(&cotree);
        assert_eq!(cover.len(), n - ones + 2);
        assert!(verify_path_cover(&cotree.to_graph(), &cover).is_valid());
    }
}

#[test]
fn upper_bound_step_counts_sit_on_a_logarithmic_curve() {
    // The measured steps of the algorithm on OR instances of growing size
    // must grow sub-linearly (logarithmically up to constants), matching the
    // lower bound's Theta(log n) prediction rather than exceeding it
    // polynomially.
    let mut rng = ChaCha8Rng::seed_from_u64(32);
    let mut steps = Vec::new();
    for exp in [6usize, 10] {
        let n = 1usize << exp;
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.2)).collect();
        let cotree = or_instance_cotree(&bits);
        let outcome = pram_path_cover(&cotree, PramConfig::default());
        steps.push(outcome.metrics.as_ref().expect("sim metrics").steps as f64);
    }
    // 16x more input must cost far less than 16x more steps.
    assert!(steps[1] / steps[0] < 4.0, "{steps:?}");
}
