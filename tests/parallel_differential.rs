//! End-to-end backend differential: `pram_path_cover` must produce identical
//! covers through the PRAM simulator and the real-cores pool backend.
//!
//! The kernel-level 200+-workload suite lives in
//! `crates/parprims/tests/differential.rs`; this file closes the loop at the
//! pipeline level. Pool thread counts come from `PC_POOL_THREADS`
//! (comma-separated, default `1,2,4`) so CI can pin the pool width.

use cograph::{random_cotree, CotreeShape};
use pathcover::{pram_path_cover, Backend, PramConfig};
use pcgraph::verify_path_cover;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn pool_thread_counts() -> Vec<usize> {
    match std::env::var("PC_POOL_THREADS") {
        Ok(spec) => {
            let counts: Vec<usize> = spec
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t >= 1)
                .collect();
            assert!(!counts.is_empty(), "PC_POOL_THREADS='{spec}' parsed empty");
            counts
        }
        Err(_) => vec![1, 2, 4],
    }
}

#[test]
fn pool_and_simulator_covers_are_identical() {
    let threads = pool_thread_counts();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for shape in CotreeShape::ALL {
        for n in [2usize, 7, 25, 96, 300] {
            for _ in 0..2 {
                let cotree = random_cotree(n, shape, &mut rng);
                let graph = cotree.to_graph();
                let sim = pram_path_cover(&cotree, PramConfig::default());
                assert!(
                    sim.metrics.is_some(),
                    "simulator backend must report step metrics"
                );
                assert!(verify_path_cover(&graph, &sim.cover).is_valid());
                for &t in &threads {
                    let pooled = pram_path_cover(
                        &cotree,
                        PramConfig {
                            backend: Backend::Pool,
                            threads: Some(t),
                            ..PramConfig::default()
                        },
                    );
                    assert!(
                        pooled.metrics.is_none(),
                        "pool backend must not fabricate step metrics"
                    );
                    assert_eq!(
                        pooled.cover, sim.cover,
                        "{shape:?} n={n} threads={t}: pool cover diverges from simulator"
                    );
                }
            }
        }
    }
}
