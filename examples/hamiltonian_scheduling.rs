//! Ring-protocol feasibility: deciding whether a token can visit every
//! station exactly once (Hamiltonian path / cycle), one of the applications
//! listed in the paper's introduction, plus the OR lower-bound construction
//! of Theorem 2.2 run end-to-end.
//!
//! Run with: `cargo run --release -p pathcover --example hamiltonian_scheduling`

use cograph::Cotree;
use pathcover::prelude::*;

fn main() {
    // Station groups: within a group all stations are linked; group A and B
    // share a backbone (join), group C hangs off the backbone only through a
    // single gateway group D.
    let group = |k: usize| Cotree::join_of((0..k).map(|_| Cotree::single(0)).collect());
    let backbone = Cotree::join_of(vec![group(4), group(3)]);
    let edge_network = Cotree::union_of(vec![backbone, group(5)]);
    let network = Cotree::join_of(vec![edge_network, group(2)]);

    let graph = network.to_graph();
    println!(
        "network with {} stations and {} links",
        graph.num_vertices(),
        graph.num_edges()
    );

    match hamiltonian_path(&network) {
        Some(route) => {
            println!(
                "token route visiting every station once: {:?}",
                route.vertices()
            );
            assert!(route.is_valid_in(&graph));
        }
        None => {
            let cover = path_cover(&network);
            println!(
                "no single token route exists; {} disjoint routes are required",
                cover.len()
            );
        }
    }
    println!("closed ring possible: {}", has_hamiltonian_cycle(&network));

    // The lower-bound reduction: computing OR of a bit vector through the
    // path-cover oracle (Theorem 2.2 / Fig. 2). Any algorithm that counts the
    // paths of a minimum path cover is therefore at least as hard as OR.
    let alarms = vec![false, false, true, false, false, false, true, false];
    let fired = or_via_path_cover(&alarms, min_path_cover_size);
    println!("any alarm fired (computed via the path-cover reduction): {fired}");
    assert_eq!(fired, alarms.iter().any(|&b| b));

    let quiet = vec![false; 16];
    assert!(!or_via_path_cover(&quiet, min_path_cover_size));
    println!("quiet network correctly reports no alarm");
}
