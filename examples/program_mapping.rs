//! Mapping a series-parallel task graph onto a linear processor array —
//! the "mapping parallel programs to parallel architectures" application the
//! paper's introduction mentions.
//!
//! Task compatibility (two tasks may run back-to-back on the same processor
//! pipeline) for series-parallel programs composed of sequential and parallel
//! blocks forms a cograph: a *parallel* composition makes all tasks of the
//! two sides compatible (join), a *sequential* composition keeps the two
//! sides incompatible (union). A minimum path cover of the compatibility
//! graph is a minimum number of processor pipelines needed to run everything,
//! and each path is the schedule of one pipeline.
//!
//! Run with: `cargo run --release -p pathcover --example program_mapping`

use cograph::Cotree;
use pathcover::prelude::*;
use pram::Mode;

/// A tiny series-parallel program description.
enum Block {
    /// A single task.
    Task,
    /// Blocks that must run one after another (no sharing possible).
    Seq(Vec<Block>),
    /// Blocks that may run concurrently (all pairs compatible).
    Par(Vec<Block>),
}

fn to_cotree(block: &Block) -> Cotree {
    match block {
        Block::Task => Cotree::single(0),
        Block::Seq(parts) => Cotree::union_of(parts.iter().map(to_cotree).collect()),
        Block::Par(parts) => Cotree::join_of(parts.iter().map(to_cotree).collect()),
    }
}

fn main() {
    // A pipeline stage followed by a fan-out of workers, a reduction, and a
    // post-processing stage.
    let program = Block::Seq(vec![
        Block::Task,
        Block::Par(vec![
            Block::Seq(vec![Block::Task, Block::Task]),
            Block::Seq(vec![Block::Task, Block::Task, Block::Task]),
            Block::Task,
            Block::Par(vec![Block::Task, Block::Task]),
        ]),
        Block::Task,
        Block::Par((0..6).map(|_| Block::Task).collect()),
    ]);

    let cotree = to_cotree(&program);
    let graph = cotree.to_graph();
    println!(
        "{} tasks, {} compatibility pairs",
        graph.num_vertices(),
        graph.num_edges()
    );

    let cover = path_cover(&cotree);
    assert!(verify_path_cover(&graph, &cover).is_valid());
    println!("minimum number of processor pipelines: {}", cover.len());
    for (i, path) in cover.paths().iter().enumerate() {
        println!("  pipeline {i}: tasks {:?}", path.vertices());
    }

    // The scheduling decision itself can be taken in O(log n) parallel time;
    // the metered run shows the cost and certifies the EREW discipline.
    let outcome = pram_path_cover(
        &cotree,
        PramConfig {
            mode: Mode::Erew,
            processors: None,
            strict: false,
            ..PramConfig::default()
        },
    );
    println!(
        "PRAM schedule computation: {} steps, {} work, {} EREW violations",
        outcome.metrics.as_ref().expect("sim metrics").steps,
        outcome.metrics.as_ref().expect("sim metrics").work,
        outcome
            .metrics
            .as_ref()
            .expect("sim metrics")
            .violations
            .len()
    );
    assert_eq!(outcome.cover.len(), cover.len());
}
