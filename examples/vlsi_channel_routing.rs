//! VLSI-style track assignment: one of the path-cover applications the
//! paper's introduction cites.
//!
//! A set of modules on a routing channel is grouped into clusters; within a
//! cluster every pair of modules is compatible (can share a track chain),
//! across clusters at the same hierarchy level compatibility is decided by
//! the hierarchy (join vs union). The compatibility graph built this way is a
//! cograph by construction, and a minimum path cover of it is a minimum set
//! of "daisy chains" wiring all modules: every path becomes one chained
//! track, so fewer paths means fewer tracks.
//!
//! Run with: `cargo run --release -p pathcover --example vlsi_channel_routing`

use cograph::Cotree;
use pathcover::prelude::*;

/// Builds the compatibility cotree of a channel: a top-level join of buses,
/// where every bus is a union of incompatible module groups, and each group
/// is a clique of mutually compatible modules.
fn channel(buses: &[Vec<usize>]) -> Cotree {
    let bus_trees: Vec<Cotree> = buses
        .iter()
        .map(|groups| {
            let group_trees: Vec<Cotree> = groups
                .iter()
                .map(|&size| Cotree::join_of((0..size.max(1)).map(|_| Cotree::single(0)).collect()))
                .collect();
            Cotree::union_of(group_trees)
        })
        .collect();
    Cotree::join_of(bus_trees)
}

fn main() {
    // Three buses with differently sized module groups.
    let layout = vec![vec![3, 2, 4], vec![5, 1], vec![2, 2, 2, 2]];
    let cotree = channel(&layout);
    let graph = cotree.to_graph();
    let modules = graph.num_vertices();
    println!(
        "channel with {} modules, {} compatibility edges",
        modules,
        graph.num_edges()
    );

    let cover = path_cover(&cotree);
    assert!(verify_path_cover(&graph, &cover).is_valid());
    println!("minimum number of daisy-chained tracks: {}", cover.len());
    for (i, path) in cover.paths().iter().enumerate() {
        println!(
            "  track {i:>2}: {} modules {:?}",
            path.len(),
            path.vertices()
        );
    }

    // The channel is routable on a single track exactly when the
    // compatibility graph has a Hamiltonian path.
    println!("single-track routable: {}", has_hamiltonian_path(&cotree));

    // What-if analysis: making the second bus compatible with nothing else
    // (union instead of join at the top) increases the number of tracks.
    let degraded = Cotree::union_of(vec![channel(&layout[..1]), channel(&layout[1..])]);
    let degraded_cover = path_cover(&degraded);
    println!(
        "tracks if the buses were electrically isolated: {} (was {})",
        degraded_cover.len(),
        cover.len()
    );
    assert!(degraded_cover.len() >= cover.len());
}
