//! Quickstart: build a cograph, compute its minimum path cover three ways
//! (sequential, native parallel, PRAM-metered), and verify the results.
//!
//! Run with: `cargo run --release -p pathcover --example quickstart`

use cograph::{random_cotree, recognize, CotreeShape};
use pathcover::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // A random 200-vertex cograph described by its cotree.
    let cotree = random_cotree(200, CotreeShape::Mixed, &mut rng);
    let graph = cotree.to_graph();
    println!(
        "cograph: {} vertices, {} edges, cotree height {}",
        graph.num_vertices(),
        graph.num_edges(),
        cotree.height()
    );

    // The library also recognises cographs from raw graphs.
    let recognised = recognize(&graph).expect("materialised cographs are recognised");
    assert_eq!(recognised.to_graph(), graph);

    // Sequential baseline (Lin-Olariu-Pruesse).
    let seq = sequential_path_cover(&cotree);
    println!("sequential cover: {} paths", seq.len());

    // The paper's parallel algorithm, executed natively.
    let par = path_cover(&cotree);
    println!("parallel  cover: {} paths", par.len());
    assert_eq!(seq.len(), par.len());
    assert!(verify_path_cover(&graph, &par).is_valid());

    // The same algorithm on the instrumented EREW PRAM with n / log n
    // processors: O(log n) steps, O(n) work, zero access violations.
    let outcome = pram_path_cover(&cotree, PramConfig::default());
    println!(
        "PRAM run: p = {}, steps = {}, work = {}, violations = {}",
        outcome.processors,
        outcome.metrics.as_ref().expect("sim metrics").steps,
        outcome.metrics.as_ref().expect("sim metrics").work,
        outcome
            .metrics
            .as_ref()
            .expect("sim metrics")
            .violations
            .len()
    );
    for phase in outcome
        .metrics
        .as_ref()
        .expect("sim metrics")
        .phase_report()
    {
        println!(
            "  {:<32} steps = {:>8}  work = {:>10}",
            phase.name, phase.steps, phase.work
        );
    }
    assert!(verify_path_cover(&graph, &outcome.cover).is_valid());

    // Hamiltonian corollaries.
    println!("hamiltonian path:  {}", has_hamiltonian_path(&cotree));
    println!("hamiltonian cycle: {}", has_hamiltonian_cycle(&cotree));
}
