//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`] against the workspace `rand` shim.
//!
//! The keystream is a faithful ChaCha implementation with 8 rounds (RFC 8439
//! quarter-round, 64-bit block counter). The `seed_from_u64` key expansion
//! uses SplitMix64 rather than upstream's PCG-based expansion, so streams are
//! **deterministic within this workspace** but not bit-identical to the real
//! `rand_chacha` crate; nothing in the workspace depends on the upstream
//! streams, only on determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (words 4..12) and nonce (words 14..16) of the ChaCha state.
    key: [u32; 8],
    nonce: [u32; 2],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// Current keystream block and the next word to hand out.
    block: [u32; 16],
    word: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, start) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(start);
        }
        self.block = state;
        self.word = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word == 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut rng = ChaCha8Rng {
            key,
            nonce: [0, 0],
            counter: 0,
            block: [0; 16],
            word: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        // 1024 * 64 / 2 = 32768 expected ones; allow a generous band.
        assert!((31_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn quarter_round_matches_rfc8439_vector() {
        // RFC 8439 section 2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }
}
