//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand 0.8` APIs the workspace actually uses are
//! re-implemented here and wired in through a `[patch]`-free path dependency.
//! The subset is deliberately tiny:
//!
//! * [`RngCore`] — the raw 64-bit generator interface,
//! * [`Rng`] — `gen_bool` and `gen_range` over integer ranges,
//! * [`SeedableRng`] — `seed_from_u64` only,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! Sampling is unbiased in the Lemire multiply-shift sense (the bias for a
//! 64-bit generator over the range sizes used here is < 2^-32), and
//! `gen_bool` uses the standard 53-bit mantissa construction. The concrete
//! generator lives in the sibling `rand_chacha` shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits -> a double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, matching `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from, producing a `T`.
///
/// `T` is a type parameter rather than an associated type so that inference
/// can flow *backwards* from the use site (e.g. a struct field of type `i64`)
/// into the literal range, exactly as in `rand 0.8`.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Multiply-shift reduction of a uniform word onto `0..span`.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u128) -> u128 {
    debug_assert!(span > 0);
    // Two words give a 128-bit numerator so spans beyond 2^64 stay uniform.
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    // (wide * span) >> 128 without overflowing u128: split wide into halves.
    let (hi, lo) = (wide >> 64, wide & u128::from(u64::MAX));
    let (span_hi, span_lo) = (span >> 64, span & u128::from(u64::MAX));
    // Only the top 128 bits of the 256-bit product are needed.
    let ll = lo * span_lo;
    let lh = lo * span_hi;
    let hl = hi * span_lo;
    let hh = hi * span_hi;
    let carry = ((ll >> 64) + (lh & u128::from(u64::MAX)) + (hl & u128::from(u64::MAX))) >> 64;
    hh + (lh >> 64) + (hl >> 64) + carry
}

/// Integer types [`Rng::gen_range`] can produce.
pub trait SampleUniform: Copy + PartialOrd {
    /// `hi - lo` as an unsigned 128-bit span (callers guarantee `lo <= hi`).
    fn span(lo: Self, hi: Self) -> u128;
    /// `lo + offset`, where `offset < span(lo, hi)` so wrapping is safe.
    fn offset(lo: Self, offset: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn span(lo: Self, hi: Self) -> u128 {
                (hi as i128 - lo as i128) as u128
            }
            fn offset(lo: Self, offset: u128) -> Self {
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_uniform!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

// A single generic impl per range shape (rather than one impl per integer
// type) so that type inference can unify `T` with the literal range's
// element type, exactly as in `rand 0.8`.
impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = T::span(self.start, self.end);
        T::offset(self.start, bounded(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        let span = T::span(lo, hi) + 1;
        T::offset(lo, bounded(rng, span))
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::{bounded, RngCore};

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = Counter(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(4);
        let mut xs: Vec<usize> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(5);
        let _ = rng.gen_range(3..3usize);
    }
}
