//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate provides the
//! small API subset the workspace benches use (`benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, the `criterion_group!`
//! / `criterion_main!` macros) backed by a plain wall-clock harness:
//!
//! * every benchmark takes `sample_size` timed samples after one warm-up run
//!   and reports min / median / mean per iteration on stdout;
//! * when the `CRITERION_JSON` environment variable names a file, one JSON
//!   line per benchmark (`{"group":..,"bench":..,"median_ns":..}`) is
//!   appended to it, which is how the repository's `BENCH_*.json` baselines
//!   are recorded;
//! * `cargo bench -- --test` mirrors real criterion's smoke mode: every
//!   benchmark body runs exactly once, untimed and without JSON output, so
//!   CI can prove the benches still compile and execute without paying for
//!   measurements.
//!
//! There is no statistical outlier analysis; treat the numbers as honest but
//! simple wall-clock measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the process arguments the way `cargo bench -- --test` hands
    /// them to every bench binary: with `--test` present, benchmarks run in
    /// smoke mode (one untimed execution each).
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
            test_mode: self.test_mode,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = BenchmarkGroup {
            name: name.clone(),
            sample_size: 20,
            test_mode: self.test_mode,
        };
        group.run(&name, f);
        self
    }
}

/// A named benchmark id: a function name plus a parameter rendered with
/// [`Display`].
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates the id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of benchmarks sharing a name and a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run(&label, f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        if self.test_mode {
            // Smoke mode (`cargo bench -- --test`): prove the body runs,
            // measure nothing, write no JSON.
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            println!("{label}: test ok ({} iteration(s))", bencher.iterations);
            return;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample, then `sample_size` timed ones.
        for timed in [false, true] {
            let rounds = if timed { self.sample_size } else { 1 };
            for _ in 0..rounds {
                let mut bencher = Bencher {
                    elapsed: Duration::ZERO,
                    iterations: 0,
                };
                f(&mut bencher);
                if timed && bencher.iterations > 0 {
                    samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
                }
            }
        }
        if samples.is_empty() {
            println!("{label}: no iterations recorded");
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{label}: median {} (min {}, mean {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
            samples.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let line = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}\n",
                self.name, label, median, min, mean, samples.len()
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| file.write_all(line.as_bytes()));
        }
    }

    /// Ends the group (printing nothing extra in this shim).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures inside a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `f` once, timing it; the harness calls the body repeatedly to
    /// collect samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Bundles benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        let data: Vec<u64> = (0..100).collect();
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            runs += 1;
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("scan", 1024).to_string(), "scan/1024");
    }

    #[test]
    fn test_mode_runs_each_benchmark_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(50);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert_eq!(runs, 1, "smoke mode must not warm up or sample");
    }
}
