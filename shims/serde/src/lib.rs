//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so that a real serde can be dropped in once the build
//! environment has network access. Until then, these derives expand to
//! nothing: the annotations stay source-compatible and the `pcservice` crate
//! does its JSON I/O through its own hand-written encoder instead.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`'s derive macro.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`'s derive macro.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
