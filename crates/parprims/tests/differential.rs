//! Differential suite: every parprims kernel, both [`Exec`] backends.
//!
//! Each workload is generated from a fixed seed, evaluated by the sequential
//! reference, then executed through the PRAM-simulator backend and through the
//! real-cores pool backend at every thread count in `PC_POOL_THREADS`
//! (comma-separated; defaults to `1,2,4`). All three must agree bit for bit —
//! the pool's double-buffered rounds are required to preserve the simulator's
//! read-before-write semantics exactly, not merely approximately.
//!
//! The suite runs well over 200 seeded workloads in total (the final test
//! asserts the count), satisfying the coverage floor set for the pool backend.

use parpool::Pool;
use parprims::brackets::{match_brackets_on_exec, match_brackets_seq, BracketKind};
use parprims::contraction::{evaluate_tree_exec, evaluate_tree_seq, NodeOp};
use parprims::euler::{euler_numbers_seq, euler_tour_numbers_exec, EulerNumbers};
use parprims::exec::Exec;
use parprims::ranking::{list_rank_exec, list_rank_seq, list_rank_wyllie_exec, NONE_WORD};
use parprims::scan::{
    exclusive_scan_exec, prefix_sums_exec, prefix_sums_seq, tree_scan_exec, ScanOp,
};
use parprims::tree::{RootedTree, NONE};
use pram::{Mode, Pram};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Debug;

/// Thread counts the pool backend is exercised at.
fn pool_thread_counts() -> Vec<usize> {
    match std::env::var("PC_POOL_THREADS") {
        Ok(spec) => {
            let counts: Vec<usize> = spec
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t >= 1)
                .collect();
            assert!(!counts.is_empty(), "PC_POOL_THREADS='{spec}' parsed empty");
            counts
        }
        Err(_) => vec![1, 2, 4],
    }
}

/// One pool per thread count, reused across all workloads of a test.
struct Backends {
    pools: Vec<(usize, Pool)>,
    workloads: usize,
}

impl Backends {
    fn new() -> Self {
        Backends {
            pools: pool_thread_counts()
                .into_iter()
                .map(|t| (t, Pool::new(t)))
                .collect(),
            workloads: 0,
        }
    }

    /// Runs `f` on the simulator and on every pool; all runs must reproduce
    /// `expected` exactly.
    fn check<T, F>(&mut self, label: &str, expected: &T, f: F)
    where
        T: PartialEq + Debug,
        F: Fn(&mut Exec<'_>) -> T,
    {
        let mut pram = Pram::new(Mode::Erew, 16);
        let mut sim = Exec::sim(&mut pram);
        let got = f(&mut sim);
        assert_eq!(&got, expected, "sim backend diverges on {label}");
        for (threads, pool) in &mut self.pools {
            let mut exec = Exec::pool(pool);
            let got = f(&mut exec);
            assert_eq!(
                &got, expected,
                "pool backend ({threads} threads) diverges on {label}"
            );
        }
        self.workloads += 1;
    }
}

/// Random tree on `n` nodes given by parent pointers (node 0 is the root).
fn random_tree(n: usize, rng: &mut ChaCha8Rng) -> RootedTree {
    let mut parent = vec![NONE; n];
    for (v, slot) in parent.iter_mut().enumerate().skip(1) {
        *slot = rng.gen_range(0..v);
    }
    RootedTree::from_parents(parent)
}

/// Random balanced bracket sequence with `pairs` matched pairs.
fn random_brackets(pairs: usize, rng: &mut ChaCha8Rng) -> Vec<BracketKind> {
    let mut kinds = Vec::with_capacity(2 * pairs);
    let (mut open_left, mut depth) = (pairs, 0usize);
    while kinds.len() < 2 * pairs {
        let must_open = depth == 0;
        let must_close = open_left == 0;
        if must_close || (!must_open && rng.gen_range(0..2) == 0) {
            kinds.push(BracketKind::Close);
            depth -= 1;
        } else {
            kinds.push(BracketKind::Open);
            open_left -= 1;
            depth += 1;
        }
    }
    kinds
}

const SCAN_WORKLOADS: usize = 80;
const RANK_WORKLOADS: usize = 40;
const EULER_WORKLOADS: usize = 42;
const BRACKET_WORKLOADS: usize = 40;
const CONTRACTION_WORKLOADS: usize = 40;

#[test]
fn scans_agree_across_backends() {
    let mut backends = Backends::new();
    // Inclusive scans: 6 sizes x 5 seeds x 2 ops.
    for (i, &n) in [1usize, 2, 3, 17, 64, 257].iter().enumerate() {
        for seed in 0..5u64 {
            for &op in &[ScanOp::Sum, ScanOp::Max] {
                let mut rng = ChaCha8Rng::seed_from_u64(1000 + 10 * seed + i as u64);
                let input: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
                let block = [1, 3, 8][seed as usize % 3];
                let expected = prefix_sums_seq(&input, op);
                backends.check(&format!("prefix_sums n={n} {op:?}"), &expected, |exec| {
                    let xs = exec.alloc_from(&input);
                    let out = prefix_sums_exec(exec, xs, op, block);
                    exec.snapshot(out)
                });
            }
        }
    }
    // Tree scans and exclusive scans: 5 sizes x 2 seeds each.
    for &n in &[1usize, 5, 33, 100, 256] {
        for seed in 0..2u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(2000 + 7 * seed + n as u64);
            let input: Vec<i64> = (0..n).map(|_| rng.gen_range(-9..9)).collect();
            let inclusive = prefix_sums_seq(&input, ScanOp::Sum);
            backends.check(&format!("tree_scan n={n}"), &inclusive, |exec| {
                let xs = exec.alloc_from(&input);
                let out = tree_scan_exec(exec, xs, ScanOp::Sum);
                exec.snapshot(out)
            });
            let mut exclusive = vec![0i64; n];
            exclusive[1..].copy_from_slice(&inclusive[..n - 1]);
            backends.check(&format!("exclusive_scan n={n}"), &exclusive, |exec| {
                let xs = exec.alloc_from(&input);
                let out = exclusive_scan_exec(exec, xs, ScanOp::Sum, 4);
                exec.snapshot(out)
            });
        }
    }
    assert_eq!(backends.workloads, SCAN_WORKLOADS);
}

#[test]
fn list_ranking_agrees_across_backends() {
    let mut backends = Backends::new();
    // 5 sizes x 4 seeds x 2 algorithms.
    for &n in &[1usize, 2, 9, 33, 120] {
        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(3000 + 13 * seed + n as u64);
            // Random permutation chopped into a few independent lists.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..i + 1));
            }
            let mut succ = vec![NONE_WORD; n];
            for w in order.windows(2) {
                if rng.gen_range(0..5) > 0 {
                    succ[w[0]] = w[1] as i64;
                }
            }
            let expected = list_rank_seq(&succ);
            let stride = [2usize, 8][seed as usize % 2];
            backends.check(&format!("list_rank n={n} seed={seed}"), &expected, |exec| {
                let xs = exec.alloc_from(&succ);
                let rank = list_rank_exec(exec, xs, stride);
                exec.snapshot(rank)
            });
            backends.check(&format!("wyllie n={n} seed={seed}"), &expected, |exec| {
                let xs = exec.alloc_from(&succ);
                let rank = list_rank_wyllie_exec(exec, xs);
                exec.snapshot(rank)
            });
        }
    }
    assert_eq!(backends.workloads, RANK_WORKLOADS);
}

#[test]
fn euler_tours_agree_across_backends() {
    let mut backends = Backends::new();
    // 6 sizes x 7 seeds.
    for &n in &[1usize, 2, 3, 10, 40, 150] {
        for seed in 0..7u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(4000 + 17 * seed + n as u64);
            let tree = random_tree(n, &mut rng);
            // The sequential oracle defines the six traversal numberings but
            // not the tour positions (advance/retreat), which only the PRAM
            // algorithm produces — validate those by sim/pool agreement.
            let seq = euler_numbers_seq(&tree, None);
            let mut pram = Pram::new(Mode::Erew, 16);
            let mut sim = Exec::sim(&mut pram);
            let expected: EulerNumbers = euler_tour_numbers_exec(&mut sim, &tree, None);
            assert_eq!(expected.preorder, seq.preorder, "preorder n={n}");
            assert_eq!(expected.postorder, seq.postorder, "postorder n={n}");
            assert_eq!(expected.inorder, seq.inorder, "inorder n={n}");
            assert_eq!(expected.depth, seq.depth, "depth n={n}");
            assert_eq!(expected.subtree_size, seq.subtree_size, "size n={n}");
            assert_eq!(expected.leaf_count, seq.leaf_count, "leaves n={n}");
            backends.check(&format!("euler n={n} seed={seed}"), &expected, |exec| {
                euler_tour_numbers_exec(exec, &tree, None)
            });
        }
    }
    assert_eq!(backends.workloads, EULER_WORKLOADS);
}

#[test]
fn bracket_matching_agrees_across_backends() {
    let mut backends = Backends::new();
    // 5 sizes x 8 seeds.
    for &pairs in &[1usize, 2, 5, 20, 80] {
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(5000 + 19 * seed + pairs as u64);
            let kinds = random_brackets(pairs, &mut rng);
            let expected = match_brackets_seq(&kinds);
            backends.check(
                &format!("brackets pairs={pairs} seed={seed}"),
                &expected,
                |exec| match_brackets_on_exec(exec, &kinds),
            );
        }
    }
    assert_eq!(backends.workloads, BRACKET_WORKLOADS);
}

/// Random strictly binary expression tree with `leaves` leaves, built by
/// repeatedly joining two random roots of a forest.
fn random_expression(leaves: usize, rng: &mut ChaCha8Rng) -> (RootedTree, Vec<NodeOp>, Vec<i64>) {
    let total = 2 * leaves - 1;
    let mut parent = vec![NONE; total];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut ops = vec![NodeOp::Add; total];
    let mut values = vec![0i64; total];
    let mut roots: Vec<usize> = (0..leaves).collect();
    for value in values.iter_mut().take(leaves) {
        *value = rng.gen_range(1..6);
    }
    let mut next = leaves;
    while roots.len() > 1 {
        let i = rng.gen_range(0..roots.len());
        let a = roots.swap_remove(i);
        let j = rng.gen_range(0..roots.len());
        let b = roots.swap_remove(j);
        parent[a] = next;
        parent[b] = next;
        children[next] = vec![a, b];
        ops[next] = if rng.gen_range(0..2) == 0 {
            NodeOp::Add
        } else {
            NodeOp::LeftAffine {
                add: -rng.gen_range(0..5),
                floor: 1,
            }
        };
        roots.push(next);
        next += 1;
    }
    (RootedTree::new(parent, children, roots[0]), ops, values)
}

#[test]
fn tree_contraction_agrees_across_backends() {
    let mut backends = Backends::new();
    // 5 sizes x 8 seeds.
    for &leaves in &[1usize, 3, 11, 47, 160] {
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(6000 + 23 * seed + leaves as u64);
            let (tree, ops, leaf_values) = random_expression(leaves, &mut rng);
            let expected = evaluate_tree_seq(&tree, &ops, &leaf_values);
            backends.check(
                &format!("contraction leaves={leaves} seed={seed}"),
                &expected,
                |exec| evaluate_tree_exec(exec, &tree, &ops, &leaf_values),
            );
        }
    }
    assert_eq!(backends.workloads, CONTRACTION_WORKLOADS);
}

#[test]
fn suite_covers_at_least_200_workloads() {
    let total = SCAN_WORKLOADS
        + RANK_WORKLOADS
        + EULER_WORKLOADS
        + BRACKET_WORKLOADS
        + CONTRACTION_WORKLOADS;
    assert!(
        total >= 200,
        "differential suite shrank to {total} workloads"
    );
}
