//! # parprims — classical PRAM parallel primitives
//!
//! The path-cover algorithm of Nakano, Olariu and Zomaya leans on a toolbox of
//! classical PRAM primitives (the paper's Lemmas 5.1 and 5.2):
//!
//! 1. prefix sums over an array ([`scan`]),
//! 2. list ranking of a linked list ([`ranking`]),
//! 3. bracket (parentheses) matching ([`brackets`]),
//! 4. the Euler tour technique on rooted trees, including preorder, inorder
//!    and postorder numbering, subtree sizes, leaf counts and depths
//!    ([`euler`]), and
//! 5. rake-based tree contraction for expression evaluation over
//!    max-plus-affine functions, used to compute the path counts `p(u)`
//!    ([`contraction`]).
//!
//! Every primitive is implemented against the [`pram`] simulator so its time
//! (synchronous steps), work and access discipline are *measured*, and every
//! primitive has a plain sequential reference implementation used by the
//! tests as an oracle.
//!
//! Fidelity notes (also summarised in the workspace `DESIGN.md`): the blocked
//! prefix-sum, list-ranking and Euler-tour implementations are work-optimal
//! and EREW-clean. The bracket-matching pair-extraction phase implements the
//! tournament algorithm, which performs concurrent reads of the tournament
//! tree and `O(n log n)` work; it stands in for the optimal EREW algorithm of
//! Gibbons and Rytter cited by the paper. The experiment driver reports the
//! phases separately so the substitution is visible in the measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brackets;
pub mod contraction;
pub mod euler;
pub mod exec;
pub mod ranking;
pub mod scan;
pub mod tree;

pub use brackets::{match_brackets_exec, match_brackets_pram, match_brackets_seq, BracketKind};
pub use contraction::{
    evaluate_tree_exec, evaluate_tree_pram, evaluate_tree_seq, MaxPlusAffine, NodeOp,
};
pub use euler::{euler_tour_numbers, euler_tour_numbers_exec, EulerNumbers};
pub use exec::{Exec, Handle, RoundCtx};
pub use ranking::{list_rank_blocked, list_rank_exec, list_rank_seq, list_rank_wyllie};
pub use scan::{prefix_sums_exec, prefix_sums_pram, prefix_sums_seq, ScanOp};
pub use tree::RootedTree;
