//! Bracket (parentheses) matching — Lemma 5.1(3) of the paper.
//!
//! Given a sequence of opening and closing brackets (not necessarily
//! balanced), find for every bracket its partner under the usual stack
//! discipline: a closing bracket matches the nearest preceding unmatched
//! opening bracket.
//!
//! Two implementations:
//!
//! * [`match_brackets_seq`] — the linear-time stack reference.
//! * [`match_brackets_pram`] — the tournament (segment-tree) algorithm. The
//!   bottom-up counting phase is EREW-clean with `O(n)` work and `O(log n)`
//!   steps. The pair-extraction phase walks the tournament tree once per
//!   closing bracket: `O(log n)` steps but `O(n log n)` work and concurrent
//!   reads of the tree nodes (CREW). This is the documented approximation of
//!   the optimal EREW algorithm of Gibbons–Rytter cited by the paper; the
//!   experiment driver reports the phase separately so the deviation is
//!   visible in the measurements (see `DESIGN.md`).

use crate::exec::{Exec, Handle};
use crate::ranking::NONE_WORD;
use pram::{ArrayHandle, Pram};

/// Kind of a bracket in a matching problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BracketKind {
    /// An opening bracket.
    Open,
    /// A closing bracket.
    Close,
}

impl BracketKind {
    /// Encoding used inside PRAM memory: open = 0, close = 1.
    pub fn to_word(self) -> i64 {
        match self {
            BracketKind::Open => 0,
            BracketKind::Close => 1,
        }
    }

    /// Decodes the PRAM encoding.
    pub fn from_word(w: i64) -> Self {
        if w == 0 {
            BracketKind::Open
        } else {
            BracketKind::Close
        }
    }
}

/// Sequential stack matching. Returns, for every position, the index of its
/// partner, or `None` when the bracket stays unmatched.
pub fn match_brackets_seq(kinds: &[BracketKind]) -> Vec<Option<usize>> {
    let mut partner = vec![None; kinds.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, &k) in kinds.iter().enumerate() {
        match k {
            BracketKind::Open => stack.push(i),
            BracketKind::Close => {
                if let Some(open) = stack.pop() {
                    partner[open] = Some(i);
                    partner[i] = Some(open);
                }
            }
        }
    }
    partner
}

/// Tournament-tree bracket matching on any [`Exec`] backend.
///
/// `kinds` holds one word per position (0 = open, 1 = close). Returns a
/// handle of the same length whose entries are the partner index or
/// [`NONE_WORD`] for unmatched brackets.
pub fn match_brackets_exec(exec: &mut Exec<'_>, kinds: Handle) -> Handle {
    let n = kinds.len();
    let partner = exec.alloc(n);
    if n == 0 {
        return partner;
    }
    exec.parallel_for(n, move |ctx, i| {
        ctx.write(partner, i, NONE_WORD);
    });

    // Complete binary tournament tree over `size` leaves (power of two).
    let size = n.next_power_of_two();
    // Node layout: 1-based heap order, nodes 1..2*size. uo = unmatched opens,
    // uc = unmatched closes, k = pairs matched at this node.
    let uo = exec.alloc(2 * size);
    let uc = exec.alloc(2 * size);
    let kk = exec.alloc(2 * size);

    // Leaves.
    exec.parallel_for(size, move |ctx, i| {
        let node = size + i;
        if i < n {
            let kind = ctx.read(kinds, i);
            ctx.write(uo, node, if kind == 0 { 1 } else { 0 });
            ctx.write(uc, node, if kind == 1 { 1 } else { 0 });
        } else {
            ctx.write(uo, node, 0);
            ctx.write(uc, node, 0);
        }
    });

    // Bottom-up counting: O(log n) rounds, total work O(n), EREW.
    let mut level_size = size / 2;
    let mut level_start = size / 2;
    while level_size >= 1 {
        exec.parallel_for(level_size, move |ctx, i| {
            let node = level_start + i;
            let l = 2 * node;
            let r = 2 * node + 1;
            let lo = ctx.read(uo, l);
            let lc = ctx.read(uc, l);
            let ro = ctx.read(uo, r);
            let rc = ctx.read(uc, r);
            let k = lo.min(rc);
            ctx.write(kk, node, k);
            ctx.write(uo, node, lo - k + ro);
            ctx.write(uc, node, lc + rc - k);
        });
        level_size /= 2;
        level_start /= 2;
    }

    // Extraction: every closing bracket walks up until the ancestor at which
    // it is matched, then walks down the opposite subtree to locate its
    // opening partner. Concurrent reads of the tree counters (CREW); charged
    // honestly by the simulator.
    exec.parallel_for(n, move |ctx, i| {
        if ctx.read(kinds, i) != 1 {
            return;
        }
        // Walk up, maintaining the rank of this close (1-based, in position
        // order) among the unmatched closes of the current node's segment.
        let mut node = size + i;
        let mut rank: i64 = 1;
        let mut matched_at = 0usize;
        let mut rank_at_match: i64 = 0;
        while node > 1 {
            let parent = node / 2;
            let is_right = node % 2 == 1;
            if is_right {
                let k = ctx.read(kk, parent);
                if rank <= k {
                    matched_at = parent;
                    rank_at_match = rank;
                    break;
                }
                let left_uc = ctx.read(uc, 2 * parent);
                rank = rank - k + left_uc;
            }
            node = parent;
        }
        if matched_at == 0 {
            return; // globally unmatched
        }
        // Walk down the left child of `matched_at` looking for the open with
        // rank-from-the-right `rank_at_match` among its unmatched opens.
        let mut node = 2 * matched_at;
        let mut rr = rank_at_match;
        while node < size {
            let l = 2 * node;
            let r = 2 * node + 1;
            let ro = ctx.read(uo, r);
            if rr <= ro {
                node = r;
            } else {
                let k = ctx.read(kk, node);
                rr = rr - ro + k;
                node = l;
            }
        }
        let open_pos = node - size;
        ctx.write(partner, i, open_pos as i64);
        ctx.write(partner, open_pos, i as i64);
    });
    partner
}

/// Tournament-tree bracket matching on the PRAM simulator (wrapper over
/// [`match_brackets_exec`]).
pub fn match_brackets_pram(pram: &mut Pram, kinds: ArrayHandle) -> ArrayHandle {
    let mut exec = Exec::sim(pram);
    let kinds = exec.adopt(kinds);
    let partner = match_brackets_exec(&mut exec, kinds);
    exec.sim_handle(partner)
}

/// Convenience wrapper running the matcher on a host slice and returning
/// host results; used by the higher-level pipeline and by tests.
pub fn match_brackets_on_exec(exec: &mut Exec<'_>, kinds: &[BracketKind]) -> Vec<Option<usize>> {
    let words: Vec<i64> = kinds.iter().map(|k| k.to_word()).collect();
    let h = exec.alloc_from(&words);
    let partner = match_brackets_exec(exec, h);
    exec.snapshot(partner)
        .into_iter()
        .map(|w| {
            if w == NONE_WORD {
                None
            } else {
                Some(w as usize)
            }
        })
        .collect()
}

/// [`match_brackets_on_exec`] specialised to the PRAM simulator.
pub fn match_brackets_on(pram: &mut Pram, kinds: &[BracketKind]) -> Vec<Option<usize>> {
    let mut exec = Exec::sim(pram);
    match_brackets_on_exec(&mut exec, kinds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Mode, Pram};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn parse(s: &str) -> Vec<BracketKind> {
        s.chars()
            .map(|c| match c {
                '(' => BracketKind::Open,
                ')' => BracketKind::Close,
                other => panic!("unexpected char {other}"),
            })
            .collect()
    }

    #[test]
    fn sequential_simple() {
        let p = match_brackets_seq(&parse("(())"));
        assert_eq!(p, vec![Some(3), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn sequential_unbalanced() {
        let p = match_brackets_seq(&parse(")()("));
        assert_eq!(p, vec![None, Some(2), Some(1), None]);
    }

    #[test]
    fn sequential_empty() {
        assert!(match_brackets_seq(&[]).is_empty());
    }

    fn check_pram(s: &str) {
        let kinds = parse(s);
        let mut pram = Pram::new(Mode::Crew, pram::optimal_processors(kinds.len().max(1)));
        let got = match_brackets_on(&mut pram, &kinds);
        assert_eq!(got, match_brackets_seq(&kinds), "input {s}");
        assert!(
            pram.metrics().is_clean(),
            "CREW discipline violated for {s}"
        );
    }

    #[test]
    fn pram_matches_sequential_on_simple_cases() {
        for s in [
            "", "()", "(())", "()()", "((()))", ")(", "(((", ")))", "(()(()))", ")()(()",
        ] {
            check_pram(s);
        }
    }

    #[test]
    fn pram_matches_sequential_on_random_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for len in [1usize, 2, 3, 7, 16, 33, 100, 257] {
            for _ in 0..5 {
                let s: String = (0..len)
                    .map(|_| if rng.gen_bool(0.5) { '(' } else { ')' })
                    .collect();
                check_pram(&s);
            }
        }
    }

    #[test]
    fn pram_matches_sequential_on_deep_nesting() {
        let s = "(".repeat(200) + &")".repeat(200);
        check_pram(&s);
    }

    #[test]
    fn counting_phase_is_erew_clean() {
        // Run only the counting phase in strict EREW mode by checking that
        // violations, if any, stem from the extraction phase (which reads
        // tree counters concurrently). A sequence with no closing bracket
        // has an empty extraction phase and must be fully EREW-clean.
        let kinds = parse("((((((((");
        let mut pram = Pram::strict(Mode::Erew, 4);
        let got = match_brackets_on(&mut pram, &kinds);
        assert!(got.iter().all(Option::is_none));
        assert!(pram.metrics().is_clean());
    }

    #[test]
    fn work_and_steps_scaling() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut stats = Vec::new();
        for exp in [10usize, 12] {
            let n = 1 << exp;
            let kinds: Vec<BracketKind> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        BracketKind::Open
                    } else {
                        BracketKind::Close
                    }
                })
                .collect();
            let mut pram = Pram::new(Mode::Crew, pram::optimal_processors(n));
            match_brackets_on(&mut pram, &kinds);
            stats.push(pram.metrics().steps_per_log(n));
        }
        // Steps stay O(log n): the normalised value must not blow up.
        assert!(stats[1] / stats[0] < 3.0, "{stats:?}");
    }
}
