//! Rake-based parallel tree contraction (Abrahamson et al., the paper's
//! reference [1]) specialised to the expression algebra needed for the path
//! counts `p(u)` of the cotree.
//!
//! The algebra: every internal node of a binarised cotree computes either
//!
//! * `value = left + right` (a 0-node: covers of the two sides are unioned), or
//! * `value = max(left + a, b)` (a 1-node: `a = -L(w)`, `b = 1`), a function of
//!   the *left* child only because `L(w)` is known in advance.
//!
//! Both node operations, partially applied to known child values, live in the
//! closed class of *max-plus affine* functions `x -> max(x + a, b)`, which is
//! closed under composition — exactly the property tree contraction needs.
//!
//! The algorithm follows the classical rake-only scheme: leaves are numbered
//! left to right; each round rakes the odd-indexed leaves (first those that
//! are left children, then those that are right children) and compacts the
//! survivors by keeping the even-indexed half. A rake removes the leaf and
//! its parent and composes the parent's edge function onto the sibling. After
//! `O(log n)` rounds only the (artificial) super-root and one leaf remain;
//! replaying the recorded rake events in reverse then yields the value of
//! every internal node. Total: `O(log n)` steps, `O(n)` work, EREW.

use crate::euler::euler_tour_numbers_exec;
use crate::exec::Exec;
use crate::tree::{RootedTree, NONE};
use pram::Pram;

/// A function of the form `x -> max(x + add, floor)`, with `add = MIN_INF`
/// encoding the constant function `x -> floor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPlusAffine {
    /// Additive part; [`MaxPlusAffine::NEG_INF`] encodes "ignore x".
    pub add: i64,
    /// Lower clamp.
    pub floor: i64,
}

impl MaxPlusAffine {
    /// Sentinel standing in for minus infinity in the additive slot.
    pub const NEG_INF: i64 = i64::MIN / 4;

    /// The identity function.
    pub fn identity() -> Self {
        MaxPlusAffine {
            add: 0,
            floor: Self::NEG_INF,
        }
    }

    /// The constant function `x -> c`.
    pub fn constant(c: i64) -> Self {
        MaxPlusAffine {
            add: Self::NEG_INF,
            floor: c,
        }
    }

    /// Applies the function to `x`.
    pub fn apply(&self, x: i64) -> i64 {
        let shifted = if self.add <= Self::NEG_INF {
            Self::NEG_INF
        } else {
            x + self.add
        };
        shifted.max(self.floor)
    }

    /// Returns `self ∘ other`, i.e. the function `x -> self(other(x))`.
    pub fn compose(&self, other: &MaxPlusAffine) -> MaxPlusAffine {
        // self(max(x + a2, b2)) = max(max(x + a2, b2) + a1, b1)
        //                       = max(x + a1 + a2, max(b2 + a1, b1))
        let add = if self.add <= Self::NEG_INF || other.add <= Self::NEG_INF {
            Self::NEG_INF
        } else {
            self.add + other.add
        };
        let lifted_floor = if self.add <= Self::NEG_INF || other.floor <= Self::NEG_INF {
            Self::NEG_INF
        } else {
            other.floor + self.add
        };
        MaxPlusAffine {
            add,
            floor: lifted_floor.max(self.floor),
        }
    }
}

/// The operation performed by an internal node of the expression tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOp {
    /// `value = left + right` (cotree 0-node).
    Add,
    /// `value = max(left + add, floor)`, ignoring the right child
    /// (cotree 1-node with `add = -L(w)`, `floor = 1`).
    LeftAffine {
        /// Additive constant applied to the left child's value.
        add: i64,
        /// Lower clamp.
        floor: i64,
    },
}

impl NodeOp {
    fn eval(&self, left: i64, right: i64) -> i64 {
        match *self {
            NodeOp::Add => left + right,
            NodeOp::LeftAffine { add, floor } => {
                let _ = right;
                (left + add).max(floor)
            }
        }
    }
}

/// Sequential oracle: evaluates every node of the expression tree by an
/// explicit post-order traversal (no recursion, so skewed trees are fine).
///
/// `ops[v]` is ignored for leaves; `leaf_values[v]` is ignored for internal
/// nodes. Children order matters: `children(v)[0]` is the left child.
pub fn evaluate_tree_seq(tree: &RootedTree, ops: &[NodeOp], leaf_values: &[i64]) -> Vec<i64> {
    let n = tree.len();
    let mut value = vec![0i64; n];
    let mut state = vec![0u8; n];
    let mut stack = vec![tree.root()];
    while let Some(&v) = stack.last() {
        if tree.is_leaf(v) {
            value[v] = leaf_values[v];
            stack.pop();
            continue;
        }
        if state[v] == 0 {
            state[v] = 1;
            for &c in tree.children(v).iter().rev() {
                stack.push(c);
            }
        } else {
            let kids = tree.children(v);
            assert_eq!(kids.len(), 2, "expression trees must be strictly binary");
            value[v] = ops[v].eval(value[kids[0]], value[kids[1]]);
            stack.pop();
        }
    }
    value
}

/// One recorded rake, kept for the expansion phase.
#[derive(Debug, Clone, Copy)]
struct RakeEvent {
    /// The raked leaf.
    #[allow(dead_code)]
    leaf: usize,
    /// Its (removed) parent.
    parent: usize,
    /// The sibling that survived.
    sibling: usize,
    /// `true` when the raked leaf was the left child of `parent`.
    leaf_was_left: bool,
    /// The contracted value contributed by the leaf, `F_leaf(val_leaf)`.
    leaf_contrib: i64,
    /// The sibling's edge function *before* the rake.
    sibling_fn: MaxPlusAffine,
}

/// Evaluates every node of a strictly binary expression tree on the PRAM via
/// rake contraction followed by expansion.
///
/// Returns the value of every node. The contraction schedule (leaf
/// numbering) is obtained with the Euler-tour primitive, so the whole
/// routine stays within `O(log n)` steps and `O(n)` work; the bookkeeping of
/// edge functions and rake events is held in host vectors indexed by node,
/// mirroring what a PRAM implementation would keep in per-node shared cells,
/// while every structural quantity that needs parallel computation (the leaf
/// numbering) is obtained through the simulator. Each round is additionally
/// charged to the simulator via an explicit accounting step so the reported
/// steps/work reflect the rakes themselves.
pub fn evaluate_tree_pram(
    pram: &mut Pram,
    tree: &RootedTree,
    ops: &[NodeOp],
    leaf_values: &[i64],
) -> Vec<i64> {
    let mut exec = Exec::sim(pram);
    evaluate_tree_exec(&mut exec, tree, ops, leaf_values)
}

/// Evaluates every node of a strictly binary expression tree on any [`Exec`]
/// backend; see [`evaluate_tree_pram`] for the algorithm description.
pub fn evaluate_tree_exec(
    exec: &mut Exec<'_>,
    tree: &RootedTree,
    ops: &[NodeOp],
    leaf_values: &[i64],
) -> Vec<i64> {
    let n = tree.len();
    if n == 1 {
        return vec![leaf_values[tree.root()]];
    }
    for v in 0..n {
        if !tree.is_leaf(v) {
            assert_eq!(
                tree.children(v).len(),
                2,
                "expression trees must be strictly binary"
            );
        }
    }

    // Leaf numbering left-to-right from the Euler tour (backend-metered).
    let numbers = euler_tour_numbers_exec(exec, tree, None);
    let mut leaves: Vec<usize> = (0..n).filter(|&v| tree.is_leaf(v)).collect();
    leaves.sort_by_key(|&v| numbers.inorder[v]);

    // Mutable contracted-tree state. SUPER is a virtual parent of the root.
    const SUPER: usize = usize::MAX - 1;
    let mut parent: Vec<usize> = (0..n)
        .map(|v| {
            if v == tree.root() {
                SUPER
            } else {
                tree.parent(v)
            }
        })
        .collect();
    let mut child: Vec<[usize; 2]> = (0..n)
        .map(|v| {
            let kids = tree.children(v);
            if kids.is_empty() {
                [NONE, NONE]
            } else {
                [kids[0], kids[1]]
            }
        })
        .collect();
    let mut func: Vec<MaxPlusAffine> = vec![MaxPlusAffine::identity(); n];
    let mut events: Vec<Vec<RakeEvent>> = Vec::new();

    let mut active = leaves;
    while active.len() > 1 {
        let mut round_events = Vec::new();
        // Two half-rounds: odd-indexed leaves that are left children, then
        // odd-indexed leaves that are right children. Indices are 1-based in
        // the classical description; here odd 0-based positions are kept, so
        // positions 1, 3, 5, ... are raked and 0, 2, 4, ... survive.
        for want_left in [true, false] {
            let mut rakes = Vec::new();
            for (idx, &leaf) in active.iter().enumerate() {
                if idx % 2 == 0 {
                    continue;
                }
                let p = parent[leaf];
                if p == SUPER {
                    continue;
                }
                let leaf_is_left = child[p][0] == leaf;
                if leaf_is_left == want_left {
                    rakes.push(leaf);
                }
            }
            // Each rake is O(1) shared-memory traffic on a real PRAM; charge
            // the simulator accordingly (reads of parent/sibling state plus
            // writes of the recomposed function and relinked pointers).
            exec.account(rakes.len(), 8);
            for leaf in rakes {
                let p = parent[leaf];
                let sibling = if child[p][0] == leaf {
                    child[p][1]
                } else {
                    child[p][0]
                };
                let grand = parent[p];
                let leaf_was_left = child[p][0] == leaf;
                let leaf_contrib = func[leaf].apply(leaf_values[leaf]);
                let sibling_fn = func[sibling];
                round_events.push(RakeEvent {
                    leaf,
                    parent: p,
                    sibling,
                    leaf_was_left,
                    leaf_contrib,
                    sibling_fn,
                });
                // Compose: the value the grandparent sees from this side is
                // F_p(op_p(...)) with the raked side fixed to leaf_contrib.
                let partial = match ops[p] {
                    NodeOp::Add => MaxPlusAffine {
                        add: leaf_contrib,
                        floor: MaxPlusAffine::NEG_INF,
                    },
                    NodeOp::LeftAffine { add, floor } => {
                        if leaf_was_left {
                            // value = max(leaf_contrib + add, floor): constant.
                            MaxPlusAffine::constant((leaf_contrib + add).max(floor))
                        } else {
                            // value = max(F_s(x) + add, floor)
                            MaxPlusAffine { add, floor }
                        }
                    }
                };
                func[sibling] = func[p].compose(&partial.compose(&sibling_fn));
                // Splice the sibling into the grandparent.
                parent[sibling] = grand;
                if grand != SUPER {
                    if child[grand][0] == p {
                        child[grand][0] = sibling;
                    } else {
                        child[grand][1] = sibling;
                    }
                }
            }
        }
        events.push(round_events);
        // Compact: even-indexed leaves survive (odd ones were raked, except
        // those skipped because their parent was the super-root; those can
        // only appear once fewer than two leaves remain).
        let survivors: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|(idx, leaf)| idx % 2 == 0 || parent[**leaf] == SUPER)
            .map(|(_, &leaf)| leaf)
            .collect();
        assert!(
            survivors.len() < active.len(),
            "contraction failed to make progress"
        );
        active = survivors;
    }

    // Terminal state: a single leaf whose edge function maps its value to the
    // value of the original root.
    let last = active[0];
    let mut value = vec![i64::MIN; n];
    for v in 0..n {
        if tree.is_leaf(v) {
            value[v] = leaf_values[v];
        }
    }
    value[tree.root()] = func[last].apply(leaf_values[last]);
    if tree.is_leaf(tree.root()) {
        value[tree.root()] = leaf_values[tree.root()];
    }

    // Expansion: replay rounds in reverse; every removed parent's value
    // becomes computable from its (still known) surviving child.
    for round in events.iter().rev() {
        exec.account(round.len(), 6);
        for ev in round.iter().rev() {
            let sib_value = ev.sibling_fn.apply(value[ev.sibling]);
            let (left, right) = if ev.leaf_was_left {
                (ev.leaf_contrib, sib_value)
            } else {
                (sib_value, ev.leaf_contrib)
            };
            value[ev.parent] = ops[ev.parent].eval(left, right);
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Mode, Pram};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn max_plus_affine_algebra() {
        let f = MaxPlusAffine { add: 3, floor: 10 }; // max(x+3, 10)
        assert_eq!(f.apply(2), 10);
        assert_eq!(f.apply(20), 23);
        let g = MaxPlusAffine { add: -5, floor: 1 }; // max(x-5, 1)
        let fg = f.compose(&g); // f(g(x)) = max(max(x-5,1)+3, 10) = max(x-2, 10)
        for x in [-10i64, 0, 5, 11, 12, 100] {
            assert_eq!(fg.apply(x), f.apply(g.apply(x)), "x={x}");
        }
        let c = MaxPlusAffine::constant(7);
        assert_eq!(c.apply(1000), 7);
        let fc = f.compose(&c);
        assert_eq!(fc.apply(-999), 10);
        let id = MaxPlusAffine::identity();
        assert_eq!(id.compose(&f), f);
        assert_eq!(f.compose(&id), f);
    }

    /// Builds a random strictly binary expression tree with `leaves` leaves.
    fn random_expression(leaves: usize, seed: u64) -> (RootedTree, Vec<NodeOp>, Vec<i64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Build by repeatedly combining two random roots of a forest.
        let total = 2 * leaves - 1;
        let mut parent = vec![NONE; total];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut ops = vec![NodeOp::Add; total];
        let mut values = vec![0i64; total];
        let mut roots: Vec<usize> = (0..leaves).collect();
        for value in values.iter_mut().take(leaves) {
            *value = rng.gen_range(1..6);
        }
        let mut next = leaves;
        while roots.len() > 1 {
            let i = rng.gen_range(0..roots.len());
            let a = roots.swap_remove(i);
            let j = rng.gen_range(0..roots.len());
            let b = roots.swap_remove(j);
            parent[a] = next;
            parent[b] = next;
            children[next] = vec![a, b];
            ops[next] = if rng.gen_bool(0.5) {
                NodeOp::Add
            } else {
                NodeOp::LeftAffine {
                    add: -rng.gen_range(0..5),
                    floor: 1,
                }
            };
            roots.push(next);
            next += 1;
        }
        let tree = RootedTree::new(parent, children, roots[0]);
        (tree, ops, values)
    }

    #[test]
    fn seq_evaluation_on_tiny_tree() {
        // (1 + 2) at root
        let tree = RootedTree::new(vec![NONE, 0, 0], vec![vec![1, 2], vec![], vec![]], 0);
        let ops = vec![NodeOp::Add, NodeOp::Add, NodeOp::Add];
        let values = vec![0, 1, 2];
        assert_eq!(evaluate_tree_seq(&tree, &ops, &values), vec![3, 1, 2]);
    }

    #[test]
    fn seq_evaluation_left_affine() {
        // root = max(left - 2, 1) with left = 5, right irrelevant.
        let tree = RootedTree::new(vec![NONE, 0, 0], vec![vec![1, 2], vec![], vec![]], 0);
        let ops = vec![
            NodeOp::LeftAffine { add: -2, floor: 1 },
            NodeOp::Add,
            NodeOp::Add,
        ];
        assert_eq!(evaluate_tree_seq(&tree, &ops, &[0, 5, 9])[0], 3);
        assert_eq!(evaluate_tree_seq(&tree, &ops, &[0, 2, 9])[0], 1);
    }

    #[test]
    fn pram_matches_seq_on_small_trees() {
        for leaves in [1usize, 2, 3, 4, 5, 8, 13] {
            for seed in 0..5 {
                let (tree, ops, values) = random_expression(leaves, seed);
                let want = evaluate_tree_seq(&tree, &ops, &values);
                let mut pram = Pram::strict(Mode::Erew, pram::optimal_processors(tree.len()));
                let got = evaluate_tree_pram(&mut pram, &tree, &ops, &values);
                assert_eq!(got, want, "leaves={leaves} seed={seed}");
                assert!(pram.metrics().is_clean());
            }
        }
    }

    #[test]
    fn pram_matches_seq_on_large_random_tree() {
        let (tree, ops, values) = random_expression(300, 77);
        let want = evaluate_tree_seq(&tree, &ops, &values);
        let mut pram = Pram::strict(Mode::Erew, pram::optimal_processors(tree.len()));
        let got = evaluate_tree_pram(&mut pram, &tree, &ops, &values);
        assert_eq!(got, want);
    }

    #[test]
    fn pram_matches_seq_on_skewed_tree() {
        // A left-leaning caterpillar: worst case for naive level-by-level
        // evaluation, handled in O(log n) rounds by contraction.
        let leaves = 64usize;
        let total = 2 * leaves - 1;
        let mut parent = vec![NONE; total];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); total];
        // internal nodes leaves..total-1; internal i has children (i-1 internal or leaf) chain
        // Build: internal node k (k = leaves..total-1) has left child = previous root, right child = leaf (k - leaves).
        let mut prev_root = 0usize; // leaf 0
        for (offset, internal) in (leaves..total).enumerate() {
            let leaf = offset + 1;
            children[internal] = vec![prev_root, leaf];
            parent[prev_root] = internal;
            parent[leaf] = internal;
            prev_root = internal;
        }
        let tree = RootedTree::new(parent, children, prev_root);
        let ops: Vec<NodeOp> = (0..total)
            .map(|v| {
                if v % 2 == 0 {
                    NodeOp::Add
                } else {
                    NodeOp::LeftAffine { add: -1, floor: 1 }
                }
            })
            .collect();
        let values: Vec<i64> = (0..total as i64).map(|v| v % 4 + 1).collect();
        let want = evaluate_tree_seq(&tree, &ops, &values);
        let mut pram = Pram::strict(Mode::Erew, pram::optimal_processors(total));
        let got = evaluate_tree_pram(&mut pram, &tree, &ops, &values);
        assert_eq!(got, want);
    }

    #[test]
    fn single_leaf_tree() {
        let tree = RootedTree::from_parents(vec![NONE]);
        let mut pram = Pram::strict(Mode::Erew, 1);
        let got = evaluate_tree_pram(&mut pram, &tree, &[NodeOp::Add], &[42]);
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn contraction_work_is_linear() {
        let mut per_item = Vec::new();
        for exp in [9usize, 11] {
            let (tree, ops, values) = random_expression(1 << exp, 3);
            let n = tree.len();
            let mut pram = Pram::new(Mode::Erew, pram::optimal_processors(n));
            evaluate_tree_pram(&mut pram, &tree, &ops, &values);
            per_item.push(pram.metrics().work_per_item(n));
        }
        // Work per node stays flat across a 4x size range (O(n) work) and
        // within a sane absolute constant.
        assert!(per_item[1] / per_item[0] < 1.3, "{per_item:?}");
        assert!(per_item[1] < 400.0, "{per_item:?}");
    }
}
