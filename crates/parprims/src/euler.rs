//! The Euler tour technique — Lemma 5.2 of the paper.
//!
//! Given a rooted ordered tree, the Euler tour walks every edge twice (once
//! downwards, once upwards). Linking the directed edges into a list and
//! ranking that list yields the position of every edge in the tour; weighted
//! prefix sums over the tour then deliver, in `O(log n)` steps and `O(n)`
//! work on an EREW PRAM:
//!
//! * preorder, postorder and inorder numbers,
//! * the depth of every node,
//! * the number of descendants (subtree size) of every node, and
//! * the number of descendant leaves of every node.
//!
//! Edge identifiers: for every non-root node `v`, the *advance* edge
//! `parent(v) -> v` has id `v` and the *retreat* edge `v -> parent(v)` has id
//! `n + v`. The root contributes no edges; its two slots stay unused.

use crate::exec::Exec;
use crate::ranking::{list_rank_exec, NONE_WORD};
use crate::scan::{prefix_sums_exec, ScanOp};
use crate::tree::{RootedTree, NONE};
use pram::Pram;

/// Node numberings produced by [`euler_tour_numbers`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EulerNumbers {
    /// Preorder number of every node (root = 0).
    pub preorder: Vec<usize>,
    /// Postorder number of every node (root = n - 1).
    pub postorder: Vec<usize>,
    /// Inorder number of every node. For nodes with a left child the inorder
    /// moment is the return from that child; otherwise it is the node's first
    /// visit. For strictly binary trees this is the classical inorder.
    pub inorder: Vec<usize>,
    /// Depth of every node (root = 0).
    pub depth: Vec<usize>,
    /// Number of nodes in the subtree rooted at every node (including itself).
    pub subtree_size: Vec<usize>,
    /// Number of leaf descendants of every node (a leaf counts itself).
    pub leaf_count: Vec<usize>,
    /// Position of every node's advance edge in the tour (`usize::MAX` for
    /// the root), exposed because the path-cover pipeline lays out bracket
    /// sequences along the tour.
    pub advance_pos: Vec<usize>,
    /// Position of every node's retreat edge in the tour (`usize::MAX` for
    /// the root).
    pub retreat_pos: Vec<usize>,
}

/// Computes the Euler-tour numberings of `tree` on the given PRAM.
///
/// `left_child[v]` designates whether the *first* child of `v` counts as its
/// left child for the inorder numbering: it must be either [`NONE`] (all
/// children of `v` are right children, so `v`'s inorder moment is its first
/// visit) or equal to `tree.children(v)[0]`. When `left_child` is `None` the
/// first child of every node is used. This convention matches how the
/// path-cover pipeline stores its binary path trees (children ordered left,
/// right).
pub fn euler_tour_numbers(
    pram: &mut Pram,
    tree: &RootedTree,
    left_child: Option<&[usize]>,
) -> EulerNumbers {
    let mut exec = Exec::sim(pram);
    euler_tour_numbers_exec(&mut exec, tree, left_child)
}

/// Computes the Euler-tour numberings of `tree` on any [`Exec`] backend; see
/// [`euler_tour_numbers`] for the `left_child` convention.
pub fn euler_tour_numbers_exec(
    exec: &mut Exec<'_>,
    tree: &RootedTree,
    left_child: Option<&[usize]>,
) -> EulerNumbers {
    let n = tree.len();
    if n == 1 {
        return EulerNumbers {
            preorder: vec![0],
            postorder: vec![0],
            inorder: vec![0],
            depth: vec![0],
            subtree_size: vec![1],
            leaf_count: vec![1],
            advance_pos: vec![usize::MAX],
            retreat_pos: vec![usize::MAX],
        };
    }
    let root = tree.root();

    // Host-side encodings of the tree shape loaded into PRAM memory. The
    // per-node arrays use NONE_WORD (-1) for "absent".
    let mut parent_w = vec![NONE_WORD; n];
    let mut first_child_w = vec![NONE_WORD; n];
    let mut next_sibling_w = vec![NONE_WORD; n];
    let mut is_leaf_w = vec![0i64; n];
    let mut left_child_w = vec![NONE_WORD; n];
    let mut is_left_w = vec![0i64; n];
    for v in 0..n {
        if tree.parent(v) != NONE {
            parent_w[v] = tree.parent(v) as i64;
        }
        let kids = tree.children(v);
        if kids.is_empty() {
            is_leaf_w[v] = 1;
        } else {
            first_child_w[v] = kids[0] as i64;
            for w in kids.windows(2) {
                next_sibling_w[w[0]] = w[1] as i64;
            }
        }
        let lc = match left_child {
            Some(lc) => lc[v],
            None => *kids.first().unwrap_or(&NONE),
        };
        if lc != NONE {
            assert_eq!(
                Some(&lc),
                kids.first(),
                "the designated left child of node {v} must be its first child"
            );
            left_child_w[v] = lc as i64;
            is_left_w[lc] = 1;
        }
    }
    let parent_h = exec.alloc_from(&parent_w);
    let first_child_h = exec.alloc_from(&first_child_w);
    let next_sibling_h = exec.alloc_from(&next_sibling_w);
    let is_leaf_h = exec.alloc_from(&is_leaf_w);
    let left_child_h = exec.alloc_from(&left_child_w);
    let is_left_h = exec.alloc_from(&is_left_w);

    // Successor array over edge ids. Advance edge of v: id v; retreat edge:
    // id n + v. The root's two ids stay isolated.
    let succ = exec.alloc_from(&vec![NONE_WORD; 2 * n]);
    exec.parallel_for(n, move |ctx, v| {
        if v == root {
            return;
        }
        // successor of the advance edge (parent -> v)
        let fc = ctx.read(first_child_h, v);
        let adv_succ = if fc != NONE_WORD { fc } else { (n + v) as i64 };
        ctx.write(succ, v, adv_succ);
        // successor of the retreat edge (v -> parent)
        let ns = ctx.read(next_sibling_h, v);
        let ret_succ = if ns != NONE_WORD {
            ns
        } else {
            let p = ctx.read(parent_h, v);
            if p as usize == root {
                NONE_WORD
            } else {
                (n as i64) + p
            }
        };
        ctx.write(succ, n + v, ret_succ);
    });

    // Rank the tour list; position = tour_len - 1 - rank for edges on the
    // tour. Isolated (root) ids keep meaningless ranks and are ignored.
    let tour_len = 2 * (n - 1);
    let rank = list_rank_exec(exec, succ, 0);
    let pos = exec.alloc(2 * n);
    exec.parallel_for(n, move |ctx, v| {
        if v == root {
            return;
        }
        let ra = ctx.read(rank, v);
        let rr = ctx.read(rank, n + v);
        ctx.write(pos, v, tour_len as i64 - 1 - ra);
        ctx.write(pos, n + v, tour_len as i64 - 1 - rr);
    });

    // Weight arrays over tour positions. Each edge writes its own cell.
    let w_pre = exec.alloc(tour_len);
    let w_post = exec.alloc(tour_len);
    let w_in = exec.alloc(tour_len);
    let w_depth = exec.alloc(tour_len);
    let w_leaf = exec.alloc(tour_len);
    exec.parallel_for(n, move |ctx, v| {
        if v == root {
            return;
        }
        let pa = ctx.read(pos, v) as usize;
        let pr = ctx.read(pos, n + v) as usize;
        let leaf = ctx.read(is_leaf_h, v) == 1;
        let is_left_of_parent = ctx.read(is_left_h, v) == 1;
        let own_left = ctx.read(left_child_h, v);
        // preorder: 1 on advance edges.
        ctx.write(w_pre, pa, 1);
        // postorder: 1 on retreat edges.
        ctx.write(w_post, pr, 1);
        // depth: +1 on advance, -1 on retreat.
        ctx.write(w_depth, pa, 1);
        ctx.write(w_depth, pr, -1);
        // leaves: 1 on the advance edge of a leaf.
        if leaf {
            ctx.write(w_leaf, pa, 1);
        }
        // inorder: a node without a left child is visited on its advance
        // edge; a node with a left child is visited on the retreat edge of
        // that child. The retreat edge of v carries weight for v's parent
        // exactly when v is the designated left child of its parent.
        if own_left == NONE_WORD {
            ctx.write(w_in, pa, 1);
        }
        if is_left_of_parent {
            ctx.write(w_in, pr, 1);
        }
    });

    let s_pre = prefix_sums_exec(exec, w_pre, ScanOp::Sum, 0);
    let s_post = prefix_sums_exec(exec, w_post, ScanOp::Sum, 0);
    let s_in = prefix_sums_exec(exec, w_in, ScanOp::Sum, 0);
    let s_depth = prefix_sums_exec(exec, w_depth, ScanOp::Sum, 0);
    let s_leaf = prefix_sums_exec(exec, w_leaf, ScanOp::Sum, 0);

    // Per-node readouts. Each node reads only cells at its own edges'
    // positions, which are distinct across nodes.
    let out_pre = exec.alloc(n);
    let out_post = exec.alloc(n);
    let out_depth = exec.alloc(n);
    let out_size = exec.alloc(n);
    let out_leaf = exec.alloc(n);
    exec.parallel_for(n, move |ctx, v| {
        if v == root {
            // Root values follow directly from totals.
            ctx.write(out_pre, v, 0);
            ctx.write(out_post, v, n as i64 - 1);
            ctx.write(out_depth, v, 0);
            ctx.write(out_size, v, n as i64);
            return;
        }
        let pa = ctx.read(pos, v) as usize;
        let pr = ctx.read(pos, n + v) as usize;
        let pre = ctx.read(s_pre, pa); // 1-based among non-root nodes
        ctx.write(out_pre, v, pre);
        let post = ctx.read(s_post, pr) - 1;
        ctx.write(out_post, v, post);
        let depth = ctx.read(s_depth, pa);
        ctx.write(out_depth, v, depth);
        // subtree size: advance edges strictly inside (pa, pr] plus self.
        let pre_at_end = ctx.read(s_pre, pr);
        ctx.write(out_size, v, pre_at_end - pre + 1);
        // leaf count: leaf-advance edges in (pa, pr], plus self when a leaf.
        let leaves_in = ctx.read(s_leaf, pr) - ctx.read(s_leaf, pa);
        let own = ctx.read(is_leaf_h, v);
        ctx.write(out_leaf, v, leaves_in + own);
    });
    // Root leaf count and inorder need the totals / root's own weights.
    let total_leaves = exec.peek(s_leaf, tour_len - 1) + if tree.is_leaf(root) { 1 } else { 0 };
    exec.poke(out_leaf, root, total_leaves);

    // Inorder: every non-root node reads the inorder prefix at its moment.
    // The root's moment is either the retreat edge of its designated left
    // child (if any) or position "before the whole tour" (only possible when
    // the root has no left child, i.e. all children are right-ish), in which
    // case it precedes everything and gets inorder 0 after shifting.
    let out_in_nonroot = exec.alloc(n);
    exec.parallel_for(n, move |ctx, v| {
        if v == root {
            return;
        }
        let own_left = ctx.read(left_child_h, v);
        let moment = if own_left == NONE_WORD {
            ctx.read(pos, v)
        } else {
            ctx.read(pos, n + own_left as usize)
        };
        let val = ctx.read(s_in, moment as usize);
        ctx.write(out_in_nonroot, v, val);
    });
    let root_in = {
        let root_left = left_child_w[root];
        if root_left == NONE_WORD {
            0
        } else {
            exec.peek(s_in, exec.peek(pos, n + root_left as usize) as usize)
        }
    };

    // Host-side assembly of the result (pure readback).
    let pre = exec.snapshot(out_pre);
    let post = exec.snapshot(out_post);
    let depth = exec.snapshot(out_depth);
    let size = exec.snapshot(out_size);
    let leaf = exec.snapshot(out_leaf);
    let mut inorder_raw = exec.snapshot(out_in_nonroot);
    inorder_raw[root] = root_in;
    let pos_snapshot = exec.snapshot(pos);

    // Every node's inorder moment carries weight 1 at a distinct tour
    // position, so the raw values are a permutation of 1..=n — except when
    // the root has no designated left child, in which case its moment
    // precedes the tour and the raw values are already 0..n-1.
    let shift = if left_child_w[root] == NONE_WORD {
        0
    } else {
        1
    };
    let inorder: Vec<usize> = inorder_raw.iter().map(|&x| (x - shift) as usize).collect();

    EulerNumbers {
        preorder: pre.iter().map(|&x| x as usize).collect(),
        postorder: post.iter().map(|&x| x as usize).collect(),
        inorder,
        depth: depth.iter().map(|&x| x as usize).collect(),
        subtree_size: size.iter().map(|&x| x as usize).collect(),
        leaf_count: leaf.iter().map(|&x| x as usize).collect(),
        advance_pos: (0..n)
            .map(|v| {
                if v == root {
                    usize::MAX
                } else {
                    pos_snapshot[v] as usize
                }
            })
            .collect(),
        retreat_pos: (0..n)
            .map(|v| {
                if v == root {
                    usize::MAX
                } else {
                    pos_snapshot[n + v] as usize
                }
            })
            .collect(),
    }
}

/// Sequential oracle used by the tests: the same numberings computed by a
/// plain recursive traversal.
pub fn euler_numbers_seq(tree: &RootedTree, left_child: Option<&[usize]>) -> EulerNumbers {
    let n = tree.len();
    let mut pre = vec![0usize; n];
    let mut post = vec![0usize; n];
    let mut inord = vec![0usize; n];
    let mut depth = vec![0usize; n];
    let mut size = vec![1usize; n];
    let mut leaves = vec![0usize; n];
    let mut pre_counter = 0usize;
    let mut post_counter = 0usize;
    let mut in_counter = 0usize;

    // Iterative DFS carrying an explicit phase per node so deep (skewed)
    // trees cannot overflow the call stack.
    enum Frame {
        Enter(usize, usize),
        Exit(usize),
    }
    let mut stack = vec![Frame::Enter(tree.root(), 0)];
    // For the inorder we need to emit a node's number once its designated
    // left child has been fully processed (or on entry when it has none).
    let designated_left = |v: usize| -> usize {
        match left_child {
            Some(lc) => lc[v],
            None => *tree.children(v).first().unwrap_or(&NONE),
        }
    };
    // We emulate inorder by a separate pass below; enter/exit handles the rest.
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(v, d) => {
                pre[v] = pre_counter;
                pre_counter += 1;
                depth[v] = d;
                stack.push(Frame::Exit(v));
                for &c in tree.children(v).iter().rev() {
                    stack.push(Frame::Enter(c, d + 1));
                }
            }
            Frame::Exit(v) => {
                post[v] = post_counter;
                post_counter += 1;
                let mut s = 1;
                let mut l = if tree.is_leaf(v) { 1 } else { 0 };
                for &c in tree.children(v) {
                    s += size[c];
                    l += leaves[c];
                }
                size[v] = s;
                leaves[v] = l;
            }
        }
    }
    // Inorder: explicit stack walk emitting each node after its designated
    // left child's subtree.
    enum InFrame {
        Visit(usize),
        Emit(usize, Vec<usize>),
    }
    let mut stack = vec![InFrame::Visit(tree.root())];
    while let Some(frame) = stack.pop() {
        match frame {
            InFrame::Visit(v) => {
                let lc = designated_left(v);
                let rest: Vec<usize> = tree
                    .children(v)
                    .iter()
                    .copied()
                    .filter(|&c| c != lc)
                    .collect();
                stack.push(InFrame::Emit(v, rest));
                if lc != NONE {
                    stack.push(InFrame::Visit(lc));
                }
            }
            InFrame::Emit(v, rest) => {
                inord[v] = in_counter;
                in_counter += 1;
                for &c in rest.iter().rev() {
                    stack.push(InFrame::Visit(c));
                }
            }
        }
    }
    EulerNumbers {
        preorder: pre,
        postorder: post,
        inorder: inord,
        depth,
        subtree_size: size,
        leaf_count: leaves,
        advance_pos: vec![usize::MAX; n],
        retreat_pos: vec![usize::MAX; n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::Mode;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_tree() -> RootedTree {
        RootedTree::new(
            vec![NONE, 0, 0, 1, 1, 2],
            vec![vec![1, 2], vec![3, 4], vec![5], vec![], vec![], vec![]],
            0,
        )
    }

    fn random_tree(n: usize, seed: u64, max_children: usize) -> RootedTree {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut parent = vec![NONE; n];
        let mut child_count = vec![0usize; n];
        for (v, slot) in parent.iter_mut().enumerate().skip(1) {
            // attach to a random earlier node with spare arity
            loop {
                let p = rng.gen_range(0..v);
                if child_count[p] < max_children {
                    *slot = p;
                    child_count[p] += 1;
                    break;
                }
            }
        }
        RootedTree::from_parents(parent)
    }

    fn check_against_seq(tree: &RootedTree) {
        let mut pram = pram::Pram::strict(Mode::Erew, pram::optimal_processors(tree.len()));
        let got = euler_tour_numbers(&mut pram, tree, None);
        let want = euler_numbers_seq(tree, None);
        assert_eq!(got.preorder, want.preorder, "preorder");
        assert_eq!(got.postorder, want.postorder, "postorder");
        assert_eq!(got.inorder, want.inorder, "inorder");
        assert_eq!(got.depth, want.depth, "depth");
        assert_eq!(got.subtree_size, want.subtree_size, "subtree size");
        assert_eq!(got.leaf_count, want.leaf_count, "leaf count");
        assert!(pram.metrics().is_clean());
    }

    #[test]
    fn sequential_numbers_on_sample() {
        let t = sample_tree();
        let nums = euler_numbers_seq(&t, None);
        assert_eq!(nums.preorder, vec![0, 1, 4, 2, 3, 5]);
        assert_eq!(nums.postorder, vec![5, 2, 4, 0, 1, 3]);
        assert_eq!(nums.depth, vec![0, 1, 1, 2, 2, 2]);
        assert_eq!(nums.subtree_size, vec![6, 3, 2, 1, 1, 1]);
        assert_eq!(nums.leaf_count, vec![3, 2, 1, 1, 1, 1]);
        // inorder of the binary-ish shape: 3,1,4,0,5,2 reading by position
        assert_eq!(nums.inorder, vec![3, 1, 5, 0, 2, 4]);
    }

    #[test]
    fn pram_matches_seq_on_sample() {
        check_against_seq(&sample_tree());
    }

    #[test]
    fn pram_matches_seq_on_single_node() {
        check_against_seq(&RootedTree::from_parents(vec![NONE]));
    }

    #[test]
    fn pram_matches_seq_on_path_tree() {
        // A degenerate chain (worst case height).
        let n = 40;
        let mut parent = vec![NONE; n];
        for (v, slot) in parent.iter_mut().enumerate().skip(1) {
            *slot = v - 1;
        }
        check_against_seq(&RootedTree::from_parents(parent));
    }

    #[test]
    fn pram_matches_seq_on_random_binary_trees() {
        for seed in 0..6 {
            check_against_seq(&random_tree(60, seed, 2));
        }
    }

    #[test]
    fn pram_matches_seq_on_random_general_trees() {
        for seed in 0..4 {
            check_against_seq(&random_tree(80, 100 + seed, 4));
        }
    }

    #[test]
    fn explicit_left_children_change_inorder() {
        // Node 0 with a single child 1 that is a *right* child, and node 1
        // with a single child 2 that is a *left* child:
        // inorder must read 0, 2, 1.
        let t = RootedTree::new(vec![NONE, 0, 1], vec![vec![1], vec![2], vec![]], 0);
        let lc = vec![NONE, 2usize, NONE];
        let seq = euler_numbers_seq(&t, Some(&lc));
        assert_eq!(seq.inorder, vec![0, 2, 1]);
        let mut pram = pram::Pram::strict(Mode::Erew, 2);
        let par = euler_tour_numbers(&mut pram, &t, Some(&lc));
        assert_eq!(par.inorder, seq.inorder);
    }

    #[test]
    #[should_panic(expected = "must be its first child")]
    fn rejects_left_child_that_is_not_first() {
        let t = RootedTree::new(vec![NONE, 0, 0], vec![vec![1, 2], vec![], vec![]], 0);
        let lc = vec![2usize, NONE, NONE];
        let mut pram = pram::Pram::strict(Mode::Erew, 2);
        euler_tour_numbers(&mut pram, &t, Some(&lc));
    }

    #[test]
    fn work_is_linear_and_steps_logarithmic() {
        let mut results = Vec::new();
        for exp in [9usize, 11, 13] {
            let n = 1 << exp;
            let t = random_tree(n, 7, 2);
            let mut pram = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
            euler_tour_numbers(&mut pram, &t, None);
            results.push((
                pram.metrics().work_per_item(n),
                pram.metrics().steps_per_log(n),
            ));
        }
        // Work per node must stay essentially flat across a 16x size range
        // (constant factor is implementation-dependent, the trend is what
        // certifies O(n) work), and normalised steps must not grow.
        let (w_first, s_first) = results[0];
        let (w_last, s_last) = *results.last().expect("nonempty");
        assert!(
            w_last / w_first < 1.3,
            "work is not O(n): {w_first} -> {w_last}"
        );
        assert!(w_last < 400.0, "work constant unexpectedly large: {w_last}");
        assert!(
            s_last / s_first < 2.5,
            "steps not O(log n): {s_first} -> {s_last}"
        );
    }
}
