//! Backend abstraction for the PRAM kernels.
//!
//! Every primitive in this crate is written against [`Exec`], which offers
//! the small machine surface the kernels need — array allocation, host-side
//! `peek`/`poke`/`snapshot` between rounds, and the round-synchronous
//! [`Exec::parallel_for`] — and dispatches it to one of two backends:
//!
//! * [`Exec::sim`] wraps the [`pram::Pram`] step simulator. This is the
//!   fidelity backend: it meters steps and work under Brent's scheduling and
//!   polices the EREW/CREW access discipline. It is the *only* source of
//!   step/work metrics.
//! * [`Exec::pool`] wraps a [`parpool::Pool`] and runs each round across
//!   real cores. Reads go straight to shared `i64` cells; writes are
//!   buffered in per-worker logs and committed after a barrier, so a round
//!   observes exactly the pre-round memory — the same read-before-write
//!   semantics the simulator enforces. Kernels that are conflict-free on the
//!   simulator therefore produce bit-identical results here.
//!
//! Round bodies receive a `&mut dyn RoundCtx` instead of the simulator's
//! `ProcCtx`; the closure must be `Send + Sync + 'static` because the pool
//! ships it to persistent worker threads. Kernels achieve this by capturing
//! only `Copy` data (handles and scalars).

use std::ops::Range;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

use pram::{ArrayHandle, Pram, ProcCtx};

/// A backend-independent reference to an array allocated through [`Exec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle {
    id: u32,
    len: u32,
}

impl Handle {
    /// Number of `i64` cells in the array.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the array has zero cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-processor view of memory inside one [`Exec::parallel_for`] round.
///
/// Reads observe the memory state from before the round; writes become
/// visible only when the round ends. `charge` adds simulator instruction
/// cost and is a no-op on the pool backend.
pub trait RoundCtx {
    /// Reads `array[i]` (pre-round value).
    fn read(&mut self, array: Handle, i: usize) -> i64;
    /// Writes `array[i] = value`, visible after the round.
    fn write(&mut self, array: Handle, i: usize, value: i64);
    /// Charges `ops` extra simulator instructions (accounting only).
    fn charge(&mut self, ops: u64);
}

/// Simulator-backed round context: delegates to [`ProcCtx`] through the
/// handle table.
struct SimRound<'a, 'b> {
    pc: &'a mut ProcCtx<'b>,
    table: &'a [ArrayHandle],
}

impl RoundCtx for SimRound<'_, '_> {
    fn read(&mut self, array: Handle, i: usize) -> i64 {
        self.pc.read(self.table[array.id as usize], i)
    }

    fn write(&mut self, array: Handle, i: usize, value: i64) {
        self.pc.write(self.table[array.id as usize], i, value);
    }

    fn charge(&mut self, ops: u64) {
        self.pc.charge(ops);
    }
}

/// One buffered write in the pool backend's per-worker log.
#[derive(Clone, Copy)]
struct WriteRec {
    id: u32,
    idx: u32,
    value: i64,
}

/// Pool-backed round context: relaxed atomic loads for reads, log append for
/// writes. The commit happens in the round's finish phase, after the
/// compute barrier.
struct PoolRound<'a> {
    arrays: &'a [Arc<Vec<AtomicI64>>],
    log: &'a mut Vec<WriteRec>,
}

impl RoundCtx for PoolRound<'_> {
    fn read(&mut self, array: Handle, i: usize) -> i64 {
        self.arrays[array.id as usize][i].load(Ordering::Relaxed)
    }

    fn write(&mut self, array: Handle, i: usize, value: i64) {
        self.log.push(WriteRec {
            id: array.id,
            idx: i as u32,
            value,
        });
    }

    fn charge(&mut self, _ops: u64) {}
}

/// Simulator backend state: the machine plus the handle table mapping
/// backend-independent [`Handle`]s to simulator [`ArrayHandle`]s.
pub struct SimExec<'p> {
    pram: &'p mut Pram,
    table: Vec<ArrayHandle>,
}

/// Pool backend state: the thread pool, the array registry, and the
/// per-worker write logs reused across rounds.
pub struct PoolExec<'p> {
    pool: &'p mut parpool::Pool,
    arrays: Vec<Arc<Vec<AtomicI64>>>,
    logs: Arc<Vec<Mutex<Vec<WriteRec>>>>,
}

/// An execution backend for the PRAM kernels; see the module docs.
pub enum Exec<'p> {
    /// Step-counting simulator backend (the fidelity oracle).
    Sim(SimExec<'p>),
    /// Real-cores work-stealing pool backend.
    Pool(PoolExec<'p>),
}

fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<'p> Exec<'p> {
    /// Wraps the step simulator as a backend.
    pub fn sim(pram: &'p mut Pram) -> Self {
        Exec::Sim(SimExec {
            pram,
            table: Vec::new(),
        })
    }

    /// Wraps a work-stealing pool as a backend.
    pub fn pool(pool: &'p mut parpool::Pool) -> Self {
        let workers = pool.threads();
        Exec::Pool(PoolExec {
            pool,
            arrays: Vec::new(),
            logs: Arc::new((0..workers).map(|_| Mutex::new(Vec::new())).collect()),
        })
    }

    /// `true` when this backend meters simulator steps.
    pub fn is_sim(&self) -> bool {
        matches!(self, Exec::Sim(_))
    }

    /// Allocates a zero-initialised array of `len` cells.
    pub fn alloc(&mut self, len: usize) -> Handle {
        let len32 = u32::try_from(len).expect("array too large for backend handle");
        match self {
            Exec::Sim(sim) => {
                let handle = sim.pram.alloc(len);
                sim.table.push(handle);
                Handle {
                    id: (sim.table.len() - 1) as u32,
                    len: len32,
                }
            }
            Exec::Pool(pool) => {
                let cells: Vec<AtomicI64> = (0..len).map(|_| AtomicI64::new(0)).collect();
                pool.arrays.push(Arc::new(cells));
                Handle {
                    id: (pool.arrays.len() - 1) as u32,
                    len: len32,
                }
            }
        }
    }

    /// Allocates an array initialised from `data`.
    pub fn alloc_from(&mut self, data: &[i64]) -> Handle {
        let len32 = u32::try_from(data.len()).expect("array too large for backend handle");
        match self {
            Exec::Sim(sim) => {
                let handle = sim.pram.alloc_from(data);
                sim.table.push(handle);
                Handle {
                    id: (sim.table.len() - 1) as u32,
                    len: len32,
                }
            }
            Exec::Pool(pool) => {
                let cells: Vec<AtomicI64> = data.iter().map(|&v| AtomicI64::new(v)).collect();
                pool.arrays.push(Arc::new(cells));
                Handle {
                    id: (pool.arrays.len() - 1) as u32,
                    len: len32,
                }
            }
        }
    }

    /// Adopts an existing simulator array into this backend's handle table.
    ///
    /// # Panics
    /// Panics on the pool backend: simulator handles have no meaning there.
    pub fn adopt(&mut self, handle: ArrayHandle) -> Handle {
        match self {
            Exec::Sim(sim) => {
                let len32 = u32::try_from(handle.len()).expect("array too large");
                sim.table.push(handle);
                Handle {
                    id: (sim.table.len() - 1) as u32,
                    len: len32,
                }
            }
            Exec::Pool(_) => panic!("cannot adopt a simulator handle into the pool backend"),
        }
    }

    /// Resolves a backend handle back to the simulator handle it wraps.
    ///
    /// # Panics
    /// Panics on the pool backend.
    pub fn sim_handle(&self, handle: Handle) -> ArrayHandle {
        match self {
            Exec::Sim(sim) => sim.table[handle.id as usize],
            Exec::Pool(_) => panic!("pool backend has no simulator handles"),
        }
    }

    /// Host-side read of `array[i]` between rounds.
    pub fn peek(&self, array: Handle, i: usize) -> i64 {
        match self {
            Exec::Sim(sim) => sim.pram.peek(sim.table[array.id as usize], i),
            Exec::Pool(pool) => pool.arrays[array.id as usize][i].load(Ordering::Relaxed),
        }
    }

    /// Host-side write of `array[i] = value` between rounds.
    pub fn poke(&mut self, array: Handle, i: usize, value: i64) {
        match self {
            Exec::Sim(sim) => sim.pram.poke(sim.table[array.id as usize], i, value),
            Exec::Pool(pool) => pool.arrays[array.id as usize][i].store(value, Ordering::Relaxed),
        }
    }

    /// Host-side copy of the whole array between rounds.
    pub fn snapshot(&self, array: Handle) -> Vec<i64> {
        match self {
            Exec::Sim(sim) => sim.pram.snapshot(sim.table[array.id as usize]),
            Exec::Pool(pool) => pool.arrays[array.id as usize]
                .iter()
                .map(|cell| cell.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Marks a phase boundary in the simulator's step metering (no-op on the
    /// pool backend).
    pub fn phase(&mut self, label: &str) {
        if let Exec::Sim(sim) = self {
            sim.pram.phase(label);
        }
    }

    /// Charges the simulator for `m` items of `extra_ops + 1` instructions
    /// each (one scratch write plus `extra_ops` charged ops), mirroring the
    /// accounting passes the kernels ran before the backend split. A no-op
    /// on the pool backend: the pass computes nothing.
    pub fn account(&mut self, m: usize, extra_ops: u64) {
        if let Exec::Sim(_) = self {
            if m == 0 {
                return;
            }
            let scratch = self.alloc(m);
            self.parallel_for(m, move |ctx, i| {
                ctx.charge(extra_ops);
                ctx.write(scratch, i, 1);
            });
        }
    }

    /// Runs one round: `body(ctx, i)` for every `i in 0..m`, with all reads
    /// observing pre-round memory and all writes committed at round end.
    pub fn parallel_for<F>(&mut self, m: usize, body: F)
    where
        F: Fn(&mut dyn RoundCtx, usize) + Send + Sync + 'static,
    {
        match self {
            Exec::Sim(sim) => {
                let table = &sim.table;
                sim.pram.parallel_for(m, |pc, i| {
                    let mut ctx = SimRound { pc, table };
                    body(&mut ctx, i);
                });
            }
            Exec::Pool(pool) => {
                let arrays: Arc<Vec<Arc<Vec<AtomicI64>>>> = Arc::new(pool.arrays.clone());
                let logs = Arc::clone(&pool.logs);
                let commit_arrays = Arc::clone(&arrays);
                let commit_logs = Arc::clone(&pool.logs);
                pool.pool.round(
                    m,
                    move |worker: usize, range: Range<usize>| {
                        let mut log = lock_ignore_poison(&logs[worker]);
                        let mut ctx = PoolRound {
                            arrays: &arrays,
                            log: &mut log,
                        };
                        for i in range {
                            body(&mut ctx, i);
                        }
                    },
                    move |worker: usize| {
                        let mut log = lock_ignore_poison(&commit_logs[worker]);
                        for rec in log.drain(..) {
                            commit_arrays[rec.id as usize][rec.idx as usize]
                                .store(rec.value, Ordering::Relaxed);
                        }
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::Mode;

    fn both_backends(test: impl Fn(&mut Exec<'_>)) {
        let mut pram = Pram::strict(Mode::Crew, 4);
        let mut exec = Exec::sim(&mut pram);
        test(&mut exec);
        for threads in [1, 3] {
            let mut pool = parpool::Pool::new(threads);
            let mut exec = Exec::pool(&mut pool);
            test(&mut exec);
        }
    }

    #[test]
    fn round_reads_see_pre_round_memory() {
        both_backends(|exec| {
            let a = exec.alloc_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
            // Shift left: out[i] = a[i + 1]; in-place would corrupt without
            // deferred writes, so write into the same array deliberately.
            exec.parallel_for(7, move |ctx, i| {
                let next = ctx.read(a, i + 1);
                ctx.write(a, i, next);
            });
            assert_eq!(exec.snapshot(a), vec![2, 3, 4, 5, 6, 7, 8, 8]);
        });
    }

    #[test]
    fn peek_poke_roundtrip() {
        both_backends(|exec| {
            let a = exec.alloc(4);
            exec.poke(a, 2, 42);
            assert_eq!(exec.peek(a, 2), 42);
            assert_eq!(exec.snapshot(a), vec![0, 0, 42, 0]);
            assert_eq!(a.len(), 4);
            assert!(!a.is_empty());
        });
    }

    #[test]
    fn account_is_sim_only_metering() {
        let mut pram = Pram::new(Mode::Erew, 4);
        let mut exec = Exec::sim(&mut pram);
        exec.account(16, 7);
        drop(exec);
        assert!(pram.metrics().work >= 16 * 8);

        let mut pool = parpool::Pool::new(2);
        let mut exec = Exec::pool(&mut pool);
        exec.account(16, 7);
        drop(exec);
        assert_eq!(pool.stats().rounds, 0, "account must not run pool rounds");
    }
}
