//! Prefix sums (scans) — Lemma 5.1(2) of the paper.
//!
//! The work-optimal EREW algorithm follows the classical three-phase blocked
//! scheme: with `p = ceil(n / b)` blocks of size `b` (the caller typically
//! chooses `b = log2 n`), (1) every virtual processor reduces its block
//! sequentially, (2) the block sums are scanned with the balanced-tree
//! algorithm, (3) every virtual processor rescans its block seeded with the
//! scanned block offset. Phases 1 and 3 touch only the processor's own block,
//! phase 2 touches each tree cell exactly once per direction, so the whole
//! scan is EREW-clean. Total: `O(b + log p)` steps and `O(n)` work.
//!
//! All scans are written against the backend-independent [`Exec`] machine;
//! the `*_pram` entry points are thin wrappers that keep the historical
//! simulator-only signatures.

use crate::exec::{Exec, Handle};
use pram::{ArrayHandle, Pram};

/// Associative operators supported by the scans.
///
/// All operators act on `i64` words. `CopyLast` propagates the most recent
/// *defined* value (any value different from the designated `undefined`
/// sentinel, `i64::MIN`); it is the segmented "broadcast the last marker"
/// scan used to attach bracket positions to their emitting cotree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOp {
    /// Addition; identity 0.
    Sum,
    /// Maximum; identity `i64::MIN`.
    Max,
    /// Minimum; identity `i64::MAX`.
    Min,
    /// Keep the right operand unless it is `i64::MIN` ("undefined"), in which
    /// case keep the left one; identity `i64::MIN`.
    CopyLast,
}

impl ScanOp {
    /// Identity element of the operator.
    pub fn identity(self) -> i64 {
        match self {
            ScanOp::Sum => 0,
            ScanOp::Max | ScanOp::CopyLast => i64::MIN,
            ScanOp::Min => i64::MAX,
        }
    }

    /// Applies the operator.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            ScanOp::Sum => a + b,
            ScanOp::Max => a.max(b),
            ScanOp::Min => a.min(b),
            ScanOp::CopyLast => {
                if b == i64::MIN {
                    a
                } else {
                    b
                }
            }
        }
    }
}

/// Sequential reference scan. Returns the inclusive scan of `input`.
pub fn prefix_sums_seq(input: &[i64], op: ScanOp) -> Vec<i64> {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = op.identity();
    for &x in input {
        acc = op.apply(acc, x);
        out.push(acc);
    }
    out
}

/// Work-optimal inclusive scan on any [`Exec`] backend.
///
/// Reads `input`, writes and returns a freshly allocated array of the same
/// length holding the inclusive scan. `block` is the block size of the
/// work-optimal scheme; callers aiming for the paper's bounds pass
/// `log2(n)`; `0` selects that default.
pub fn prefix_sums_exec(exec: &mut Exec<'_>, input: Handle, op: ScanOp, block: usize) -> Handle {
    let n = input.len();
    let output = exec.alloc(n);
    if n == 0 {
        return output;
    }
    let block = effective_block(n, block);
    let num_blocks = n.div_ceil(block);

    // Phase 1: per-block sequential reduction into `sums`.
    let sums = exec.alloc(num_blocks);
    exec.parallel_for(num_blocks, move |ctx, b| {
        let start = b * block;
        let end = (start + block).min(n);
        let mut acc = op.identity();
        for i in start..end {
            acc = op.apply(acc, ctx.read(input, i));
        }
        ctx.write(sums, b, acc);
    });

    // Phase 2: balanced-tree scan of the block sums (exclusive).
    let offsets = tree_exclusive_scan(exec, sums, op);

    // Phase 3: per-block rescan seeded with the block offset.
    exec.parallel_for(num_blocks, move |ctx, b| {
        let start = b * block;
        let end = (start + block).min(n);
        let mut acc = ctx.read(offsets, b);
        for i in start..end {
            acc = op.apply(acc, ctx.read(input, i));
            ctx.write(output, i, acc);
        }
    });
    output
}

/// Work-optimal inclusive scan on the PRAM simulator (wrapper over
/// [`prefix_sums_exec`]).
pub fn prefix_sums_pram(
    pram: &mut Pram,
    input: ArrayHandle,
    op: ScanOp,
    block: usize,
) -> ArrayHandle {
    let mut exec = Exec::sim(pram);
    let input = exec.adopt(input);
    let out = prefix_sums_exec(&mut exec, input, op, block);
    exec.sim_handle(out)
}

/// Exclusive scan: element `i` of the result combines elements `0..i` of the
/// input (the identity for `i = 0`).
pub fn exclusive_scan_exec(exec: &mut Exec<'_>, input: Handle, op: ScanOp, block: usize) -> Handle {
    let n = input.len();
    let inclusive = prefix_sums_exec(exec, input, op, block);
    let output = exec.alloc(n);
    if n == 0 {
        return output;
    }
    exec.parallel_for(n, move |ctx, i| {
        let v = if i == 0 {
            op.identity()
        } else {
            ctx.read(inclusive, i - 1)
        };
        ctx.write(output, i, v);
    });
    output
}

/// Exclusive scan on the PRAM simulator (wrapper over
/// [`exclusive_scan_exec`]).
pub fn exclusive_scan_pram(
    pram: &mut Pram,
    input: ArrayHandle,
    op: ScanOp,
    block: usize,
) -> ArrayHandle {
    let mut exec = Exec::sim(pram);
    let input = exec.adopt(input);
    let out = exclusive_scan_exec(&mut exec, input, op, block);
    exec.sim_handle(out)
}

/// The non-blocked balanced-tree scan (up-sweep / down-sweep), exposed for
/// the ablation benchmark comparing it against the work-optimal blocked
/// version: `O(log n)` steps but `O(n log n)`-ish work when charged per
/// round over all elements.
pub fn tree_scan_exec(exec: &mut Exec<'_>, input: Handle, op: ScanOp) -> Handle {
    let n = input.len();
    let output = exec.alloc(n);
    if n == 0 {
        return output;
    }
    exec.parallel_for(n, move |ctx, i| {
        let v = ctx.read(input, i);
        ctx.write(output, i, v);
    });
    // Hillis–Steele inclusive scan: log n rounds of shifted combines. Each
    // round reads a private copy to stay exclusive.
    let mut stride = 1usize;
    while stride < n {
        let shifted = exec.alloc(n);
        exec.parallel_for(n, move |ctx, i| {
            let v = ctx.read(output, i);
            ctx.write(shifted, i, v);
        });
        exec.parallel_for(n, move |ctx, i| {
            if i >= stride {
                let a = ctx.read(shifted, i - stride);
                let b = ctx.read(output, i);
                ctx.write(output, i, op.apply(a, b));
            }
        });
        stride *= 2;
    }
    output
}

/// Balanced-tree scan on the PRAM simulator (wrapper over
/// [`tree_scan_exec`]).
pub fn tree_scan_pram(pram: &mut Pram, input: ArrayHandle, op: ScanOp) -> ArrayHandle {
    let mut exec = Exec::sim(pram);
    let input = exec.adopt(input);
    let out = tree_scan_exec(&mut exec, input, op);
    exec.sim_handle(out)
}

/// Exclusive balanced-tree scan over `input`, used internally for the block
/// sums of the work-optimal scan. Returns a new array `off` with
/// `off[0] = identity` and `off[i] = op(input[0..i])`.
fn tree_exclusive_scan(exec: &mut Exec<'_>, input: Handle, op: ScanOp) -> Handle {
    let n = input.len();
    let inclusive = tree_scan_exec(exec, input, op);
    let out = exec.alloc(n);
    exec.parallel_for(n, move |ctx, i| {
        let v = if i == 0 {
            op.identity()
        } else {
            ctx.read(inclusive, i - 1)
        };
        ctx.write(out, i, v);
    });
    out
}

/// Default block size: `log2(n)` rounded up, at least 1.
pub fn effective_block(n: usize, block: usize) -> usize {
    if block > 0 {
        return block;
    }
    if n <= 2 {
        1
    } else {
        ((usize::BITS - (n - 1).leading_zeros()) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Mode, Pram};

    fn run_pram_scan(data: &[i64], op: ScanOp, block: usize) -> (Vec<i64>, pram::Metrics) {
        let mut pram = Pram::strict(Mode::Erew, pram::optimal_processors(data.len().max(1)));
        let input = pram.alloc_from(data);
        let out = prefix_sums_pram(&mut pram, input, op, block);
        (pram.snapshot(out), pram.into_metrics())
    }

    #[test]
    fn sequential_scan_ops() {
        assert_eq!(
            prefix_sums_seq(&[1, 2, 3, 4], ScanOp::Sum),
            vec![1, 3, 6, 10]
        );
        assert_eq!(
            prefix_sums_seq(&[3, 1, 4, 1], ScanOp::Max),
            vec![3, 3, 4, 4]
        );
        assert_eq!(
            prefix_sums_seq(&[3, 1, 4, 1], ScanOp::Min),
            vec![3, 1, 1, 1]
        );
        assert_eq!(
            prefix_sums_seq(&[i64::MIN, 5, i64::MIN, 7, i64::MIN], ScanOp::CopyLast),
            vec![i64::MIN, 5, 5, 7, 7]
        );
        assert!(prefix_sums_seq(&[], ScanOp::Sum).is_empty());
    }

    #[test]
    fn pram_scan_matches_sequential() {
        let data: Vec<i64> = (0..257).map(|i| (i * 37 % 101) - 50).collect();
        for op in [ScanOp::Sum, ScanOp::Max, ScanOp::Min] {
            let (got, metrics) = run_pram_scan(&data, op, 0);
            assert_eq!(got, prefix_sums_seq(&data, op), "{op:?}");
            assert!(metrics.is_clean());
        }
    }

    #[test]
    fn pool_scan_matches_sequential() {
        let data: Vec<i64> = (0..1000).map(|i| (i * 53 % 211) - 100).collect();
        for threads in [1usize, 4] {
            let mut pool = parpool::Pool::new(threads);
            let mut exec = Exec::pool(&mut pool);
            let input = exec.alloc_from(&data);
            for op in [ScanOp::Sum, ScanOp::Max, ScanOp::Min, ScanOp::CopyLast] {
                let out = prefix_sums_exec(&mut exec, input, op, 0);
                assert_eq!(
                    exec.snapshot(out),
                    prefix_sums_seq(&data, op),
                    "{op:?} t={threads}"
                );
            }
        }
    }

    #[test]
    fn pram_copylast_matches_sequential() {
        let data: Vec<i64> = (0..100)
            .map(|i| if i % 7 == 0 { i } else { i64::MIN })
            .collect();
        let (got, _) = run_pram_scan(&data, ScanOp::CopyLast, 0);
        assert_eq!(got, prefix_sums_seq(&data, ScanOp::CopyLast));
    }

    #[test]
    fn pram_scan_handles_awkward_sizes() {
        for n in [0usize, 1, 2, 3, 5, 17, 64, 65, 255] {
            let data: Vec<i64> = (0..n as i64).collect();
            let (got, _) = run_pram_scan(&data, ScanOp::Sum, 0);
            assert_eq!(got, prefix_sums_seq(&data, ScanOp::Sum), "n={n}");
        }
    }

    #[test]
    fn exclusive_scan_shifts_by_one() {
        let mut pram = Pram::strict(Mode::Erew, 4);
        let input = pram.alloc_from(&[5, 1, 2, 3]);
        let out = exclusive_scan_pram(&mut pram, input, ScanOp::Sum, 0);
        assert_eq!(pram.snapshot(out), vec![0, 5, 6, 8]);
    }

    #[test]
    fn tree_scan_matches_sequential() {
        let data: Vec<i64> = (0..130).map(|i| i % 9 - 4).collect();
        let mut pram = Pram::strict(Mode::Erew, 16);
        let input = pram.alloc_from(&data);
        let out = tree_scan_pram(&mut pram, input, ScanOp::Sum);
        assert_eq!(pram.snapshot(out), prefix_sums_seq(&data, ScanOp::Sum));
        assert!(pram.metrics().is_clean());
    }

    #[test]
    fn blocked_scan_is_work_optimal_and_logarithmic() {
        // Work must stay within a constant factor of n, and steps within a
        // constant factor of log n, when p = n / log n.
        let mut ratios = Vec::new();
        for exp in [10usize, 12, 14] {
            let n = 1usize << exp;
            let data: Vec<i64> = vec![1; n];
            let (_, metrics) = run_pram_scan(&data, ScanOp::Sum, 0);
            ratios.push((metrics.work_per_item(n), metrics.steps_per_log(n)));
        }
        for (work_per_item, _) in &ratios {
            assert!(
                *work_per_item < 8.0,
                "work per item too high: {work_per_item}"
            );
        }
        // Steps per log n may not grow by more than ~2x across a 16x size
        // range if the algorithm is O(log n).
        let first = ratios.first().expect("non-empty").1;
        let last = ratios.last().expect("non-empty").1;
        assert!(
            last / first < 2.0,
            "steps are not O(log n): {first} -> {last}"
        );
    }

    #[test]
    fn default_block_is_log_n() {
        assert_eq!(effective_block(1024, 0), 10);
        assert_eq!(effective_block(1, 0), 1);
        assert_eq!(effective_block(1000, 16), 16);
    }
}
