//! Host-side description of rooted ordered trees handed to the PRAM
//! primitives.
//!
//! The Euler-tour and tree-contraction primitives both consume a
//! [`RootedTree`]: an ordered forest/tree given by parent pointers and
//! per-node ordered child lists. The structure performs the structural
//! validation once so the primitives can assume a well-formed tree.

/// Sentinel meaning "no node" in parent/child arrays.
pub const NONE: usize = usize::MAX;

/// A rooted ordered tree (children are ordered left to right).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    parent: Vec<usize>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl RootedTree {
    /// Builds a tree from parent pointers and ordered child lists.
    ///
    /// # Panics
    /// Panics when the arrays are inconsistent (child lists not matching the
    /// parent array, multiple roots, cycles).
    pub fn new(parent: Vec<usize>, children: Vec<Vec<usize>>, root: usize) -> Self {
        let n = parent.len();
        assert_eq!(children.len(), n, "children array length mismatch");
        assert!(root < n, "root out of range");
        assert_eq!(parent[root], NONE, "root must have no parent");
        let mut seen_as_child = vec![false; n];
        for (p, kids) in children.iter().enumerate() {
            for &c in kids {
                assert!(c < n, "child index out of range");
                assert_eq!(parent[c], p, "child list disagrees with parent array");
                assert!(!seen_as_child[c], "node {c} appears as a child twice");
                seen_as_child[c] = true;
            }
        }
        for (v, &seen) in seen_as_child.iter().enumerate() {
            if v != root {
                assert!(seen, "node {v} is not reachable as a child");
            }
        }
        RootedTree {
            parent,
            children,
            root,
        }
    }

    /// Builds a tree from parent pointers only; children are ordered by node
    /// index.
    pub fn from_parents(parent: Vec<usize>) -> Self {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        let mut root = NONE;
        for (v, &p) in parent.iter().enumerate() {
            if p == NONE {
                assert_eq!(root, NONE, "multiple roots");
                root = v;
            } else {
                children[p].push(v);
            }
        }
        assert_ne!(root, NONE, "no root found");
        RootedTree::new(parent, children, root)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the tree has no nodes (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `v`, or [`NONE`] for the root.
    pub fn parent(&self, v: usize) -> usize {
        self.parent[v]
    }

    /// Ordered children of `v`.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// `true` when `v` has no children.
    pub fn is_leaf(&self, v: usize) -> bool {
        self.children[v].is_empty()
    }

    /// Number of leaves of the whole tree.
    pub fn num_leaves(&self) -> usize {
        (0..self.len()).filter(|&v| self.is_leaf(v)).count()
    }

    /// Depth of each node (root has depth 0), computed sequentially. Used by
    /// tests as an oracle for the PRAM computation.
    pub fn depths_seq(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.len()];
        // children are always created after parents is NOT guaranteed, so do
        // an explicit traversal.
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            for &c in self.children(v) {
                depth[c] = depth[v] + 1;
                stack.push(c);
            }
        }
        depth
    }

    /// Flattens the child lists into CSR form `(offsets, child_list)`.
    pub fn children_csr(&self) -> (Vec<usize>, Vec<usize>) {
        let mut offsets = Vec::with_capacity(self.len() + 1);
        let mut list = Vec::new();
        offsets.push(0);
        for v in 0..self.len() {
            list.extend_from_slice(&self.children[v]);
            offsets.push(list.len());
        }
        (offsets, list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The small binary tree used across the primitive tests:
    ///
    /// ```text
    ///        0
    ///      /   \
    ///     1     2
    ///    / \     \
    ///   3   4     5
    /// ```
    pub(crate) fn sample_tree() -> RootedTree {
        RootedTree::new(
            vec![NONE, 0, 0, 1, 1, 2],
            vec![vec![1, 2], vec![3, 4], vec![5], vec![], vec![], vec![]],
            0,
        )
    }

    #[test]
    fn construction_and_queries() {
        let t = sample_tree();
        assert_eq!(t.len(), 6);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(3), 1);
        assert_eq!(t.children(1), &[3, 4]);
        assert!(t.is_leaf(5));
        assert!(!t.is_leaf(2));
        assert_eq!(t.num_leaves(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_parents_orders_children_by_index() {
        let t = RootedTree::from_parents(vec![NONE, 0, 0, 1]);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3]);
        assert_eq!(t.root(), 0);
    }

    #[test]
    fn depths() {
        let t = sample_tree();
        assert_eq!(t.depths_seq(), vec![0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn csr_roundtrip() {
        let t = sample_tree();
        let (offsets, list) = t.children_csr();
        assert_eq!(offsets, vec![0, 2, 4, 5, 5, 5, 5]);
        assert_eq!(list, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "multiple roots")]
    fn rejects_multiple_roots() {
        RootedTree::from_parents(vec![NONE, NONE]);
    }

    #[test]
    #[should_panic(expected = "disagrees with parent")]
    fn rejects_inconsistent_child_lists() {
        RootedTree::new(vec![NONE, 0], vec![vec![], vec![0]], 0);
    }

    #[test]
    #[should_panic(expected = "not reachable")]
    fn rejects_unreachable_nodes() {
        RootedTree::new(vec![NONE, 0, NONE], vec![vec![1], vec![], vec![]], 0);
    }

    #[test]
    fn single_node_tree() {
        let t = RootedTree::from_parents(vec![NONE]);
        assert_eq!(t.len(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.depths_seq(), vec![0]);
    }
}
