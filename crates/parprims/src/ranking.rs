//! List ranking — Lemma 5.1(1) of the paper.
//!
//! Given a linked list encoded as a successor array, compute for every
//! element its rank, defined (as in the paper) as the distance to the tail of
//! the list (the tail has rank 0).
//!
//! Two PRAM implementations are provided:
//!
//! * [`list_rank_wyllie`] — classical pointer jumping: `O(log n)` steps but
//!   `O(n log n)` work. EREW-clean (successor pointers are injective, and each
//!   round reads through private mirror copies).
//! * [`list_rank_blocked`] — a Helman–JáJá-style two-level algorithm: stride-
//!   spaced splitters walk their sublists sequentially, the reduced splitter
//!   list is ranked by pointer jumping, and a second walk distributes the
//!   final ranks. `O(n)` work; the step count is `O(stride + log n)` where
//!   `stride` defaults to `log2 n`, matching the work-optimal bound whenever
//!   sublists stay near the stride length (which holds for the Euler-tour
//!   lists produced in this workspace). This is the documented stand-in for
//!   the deterministic optimal algorithms of Cole–Vishkin/Anderson–Miller
//!   cited by the paper.
//!
//! Elements that are not part of any list (successor pointing to themselves
//! is not allowed; use `NONE_WORD`) simply keep whatever rank falls out; the
//! callers in this workspace always rank every live element.
//!
//! Both algorithms are written against the backend-independent [`Exec`]
//! machine; the `list_rank_*` entry points taking a [`Pram`] are wrappers.

use crate::exec::{Exec, Handle};
use crate::scan::effective_block;
use pram::{ArrayHandle, Pram};

/// Sentinel for "no successor" in successor arrays stored in PRAM memory.
pub const NONE_WORD: i64 = -1;

/// Sequential reference: rank (distance to tail) of every element.
pub fn list_rank_seq(succ: &[i64]) -> Vec<i64> {
    let n = succ.len();
    let mut rank = vec![0i64; n];
    // Find heads (elements that are nobody's successor), then walk each list.
    let mut has_pred = vec![false; n];
    for &s in succ {
        if s >= 0 {
            has_pred[s as usize] = true;
        }
    }
    for (head, &pred) in has_pred.iter().enumerate() {
        if pred {
            continue;
        }
        // Collect the list, then assign ranks from the tail backwards.
        let mut order = Vec::new();
        let mut cur = head as i64;
        while cur >= 0 {
            order.push(cur as usize);
            cur = succ[cur as usize];
        }
        for (i, &v) in order.iter().enumerate() {
            rank[v] = (order.len() - 1 - i) as i64;
        }
    }
    rank
}

/// Pointer-jumping (Wyllie) list ranking on any [`Exec`] backend.
pub fn list_rank_wyllie_exec(exec: &mut Exec<'_>, succ: Handle) -> Handle {
    let n = succ.len();
    let rank = exec.alloc(n);
    if n == 0 {
        return rank;
    }
    // Working copies so the input successor array is left untouched.
    let nxt = exec.alloc(n);
    exec.parallel_for(n, move |ctx, i| {
        let s = ctx.read(succ, i);
        ctx.write(nxt, i, s);
        ctx.write(rank, i, if s == NONE_WORD { 0 } else { 1 });
    });

    let rounds = (usize::BITS - n.leading_zeros()) as usize;
    for _ in 0..rounds {
        // Mirror copies so that reading a successor's fields never collides
        // with the successor reading its own fields (EREW discipline).
        let nxt_mirror = exec.alloc(n);
        let rank_mirror = exec.alloc(n);
        exec.parallel_for(n, move |ctx, i| {
            let s = ctx.read(nxt, i);
            let r = ctx.read(rank, i);
            ctx.write(nxt_mirror, i, s);
            ctx.write(rank_mirror, i, r);
        });
        exec.parallel_for(n, move |ctx, i| {
            let s = ctx.read(nxt, i);
            if s != NONE_WORD {
                let r = ctx.read(rank, i);
                let rs = ctx.read(rank_mirror, s as usize);
                let ss = ctx.read(nxt_mirror, s as usize);
                ctx.write(rank, i, r + rs);
                ctx.write(nxt, i, ss);
            }
        });
    }
    rank
}

/// Pointer-jumping (Wyllie) list ranking on the PRAM simulator.
pub fn list_rank_wyllie(pram: &mut Pram, succ: ArrayHandle) -> ArrayHandle {
    let mut exec = Exec::sim(pram);
    let succ = exec.adopt(succ);
    let rank = list_rank_wyllie_exec(&mut exec, succ);
    exec.sim_handle(rank)
}

/// Blocked two-level list ranking on any [`Exec`] backend (see module docs).
///
/// `stride = 0` selects the default `log2 n`.
pub fn list_rank_exec(exec: &mut Exec<'_>, succ: Handle, stride: usize) -> Handle {
    let n = succ.len();
    let rank = exec.alloc(n);
    if n == 0 {
        return rank;
    }
    let stride = effective_block(n, stride);

    // Heads: elements that are nobody's successor.
    let has_pred = exec.alloc(n);
    exec.parallel_for(n, move |ctx, i| {
        let s = ctx.read(succ, i);
        if s != NONE_WORD {
            ctx.write(has_pred, s as usize, 1);
        }
    });

    // Splitters: every `stride`-th array position plus every head.
    let is_splitter = exec.alloc(n);
    exec.parallel_for(n, move |ctx, i| {
        let head = ctx.read(has_pred, i) == 0;
        let marked = head || i % stride == 0;
        ctx.write(is_splitter, i, if marked { 1 } else { 0 });
    });

    // Dense splitter ids via a prefix sum.
    let splitter_prefix =
        crate::scan::prefix_sums_exec(exec, is_splitter, crate::scan::ScanOp::Sum, 0);
    let num_splitters = exec.peek(splitter_prefix, n - 1) as usize;
    // splitter_of[dense id] = element index
    let splitter_of = exec.alloc(num_splitters.max(1));
    exec.parallel_for(n, move |ctx, i| {
        if ctx.read(is_splitter, i) == 1 {
            let id = ctx.read(splitter_prefix, i) - 1;
            ctx.write(splitter_of, id as usize, i as i64);
        }
    });

    // Walk phase: each splitter walks its sublist until the next splitter,
    // recording per-element local offsets and its sublist metadata.
    let local_offset = exec.alloc(n); // offset of element within its sublist
    let sublist_len = exec.alloc(num_splitters.max(1));
    let next_splitter = exec.alloc(num_splitters.max(1)); // dense id or NONE
    exec.parallel_for(num_splitters, move |ctx, sid| {
        let start = ctx.read(splitter_of, sid) as usize;
        let mut cur = start;
        let mut offset: i64 = 0;
        loop {
            ctx.write(local_offset, cur, offset);
            let nxt = ctx.read(succ, cur);
            if nxt == NONE_WORD {
                ctx.write(sublist_len, sid, offset + 1);
                ctx.write(next_splitter, sid, NONE_WORD);
                return;
            }
            let nxt = nxt as usize;
            if ctx.read(is_splitter, nxt) == 1 {
                ctx.write(sublist_len, sid, offset + 1);
                let nxt_id = ctx.read(splitter_prefix, nxt) - 1;
                ctx.write(next_splitter, sid, nxt_id);
                return;
            }
            cur = nxt;
            offset += 1;
        }
    });

    // Rank the reduced splitter list by weighted pointer jumping:
    // after convergence, `after[s]` holds the number of elements in sublists
    // strictly after `s`.
    let after = exec.alloc(num_splitters.max(1));
    let red_next = exec.alloc(num_splitters.max(1));
    exec.parallel_for(num_splitters, move |ctx, sid| {
        let nxt = ctx.read(next_splitter, sid);
        ctx.write(red_next, sid, nxt);
        let w = if nxt == NONE_WORD {
            0
        } else {
            ctx.read(sublist_len, nxt as usize)
        };
        ctx.write(after, sid, w);
    });
    let rounds = (usize::BITS - num_splitters.max(1).leading_zeros()) as usize;
    for _ in 0..rounds {
        let next_mirror = exec.alloc(num_splitters.max(1));
        let after_mirror = exec.alloc(num_splitters.max(1));
        exec.parallel_for(num_splitters, move |ctx, sid| {
            let s = ctx.read(red_next, sid);
            let a = ctx.read(after, sid);
            ctx.write(next_mirror, sid, s);
            ctx.write(after_mirror, sid, a);
        });
        exec.parallel_for(num_splitters, move |ctx, sid| {
            let s = ctx.read(red_next, sid);
            if s != NONE_WORD {
                let a = ctx.read(after, sid);
                let aj = ctx.read(after_mirror, s as usize);
                let sj = ctx.read(next_mirror, s as usize);
                ctx.write(after, sid, a + aj);
                ctx.write(red_next, sid, sj);
            }
        });
    }

    // Distribution walk: every splitter re-walks its sublist and writes the
    // final ranks: rank(x) = after(s) + (len(s) - 1 - local_offset(x)).
    exec.parallel_for(num_splitters, move |ctx, sid| {
        let start = ctx.read(splitter_of, sid) as usize;
        let len = ctx.read(sublist_len, sid);
        let tail_after = ctx.read(after, sid);
        let mut cur = start;
        let mut offset: i64 = 0;
        loop {
            ctx.write(rank, cur, tail_after + (len - 1 - offset));
            let nxt = ctx.read(succ, cur);
            if nxt == NONE_WORD {
                return;
            }
            let nxt = nxt as usize;
            if ctx.read(is_splitter, nxt) == 1 {
                return;
            }
            cur = nxt;
            offset += 1;
        }
    });
    rank
}

/// Blocked two-level list ranking on the PRAM simulator (wrapper over
/// [`list_rank_exec`]).
pub fn list_rank_blocked(pram: &mut Pram, succ: ArrayHandle, stride: usize) -> ArrayHandle {
    let mut exec = Exec::sim(pram);
    let succ = exec.adopt(succ);
    let rank = list_rank_exec(&mut exec, succ, stride);
    exec.sim_handle(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Mode, Pram};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Builds the successor array of a single list visiting `order` in order,
    /// where `order` is a permutation of `0..n`.
    fn succ_from_order(order: &[usize]) -> Vec<i64> {
        let n = order.len();
        let mut succ = vec![NONE_WORD; n];
        for w in order.windows(2) {
            succ[w[0]] = w[1] as i64;
        }
        succ
    }

    #[test]
    fn sequential_ranking() {
        // list: 2 -> 0 -> 1 (tail)
        let succ = vec![1, NONE_WORD, 0];
        assert_eq!(list_rank_seq(&succ), vec![1, 0, 2]);
    }

    #[test]
    fn sequential_ranking_multiple_lists() {
        // lists: 0 -> 1, 2 -> 3 -> 4
        let succ = vec![1, NONE_WORD, 3, 4, NONE_WORD];
        assert_eq!(list_rank_seq(&succ), vec![1, 0, 2, 1, 0]);
    }

    #[test]
    fn wyllie_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in [1usize, 2, 3, 10, 64, 129] {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let succ = succ_from_order(&order);
            let mut pram = Pram::strict(Mode::Erew, pram::optimal_processors(n));
            let h = pram.alloc_from(&succ);
            let r = list_rank_wyllie(&mut pram, h);
            assert_eq!(pram.snapshot(r), list_rank_seq(&succ), "n={n}");
            assert!(pram.metrics().is_clean());
        }
    }

    #[test]
    fn blocked_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for n in [1usize, 2, 5, 33, 128, 500] {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let succ = succ_from_order(&order);
            let mut pram = Pram::strict(Mode::Erew, pram::optimal_processors(n));
            let h = pram.alloc_from(&succ);
            let r = list_rank_blocked(&mut pram, h, 0);
            assert_eq!(pram.snapshot(r), list_rank_seq(&succ), "n={n}");
            assert!(pram.metrics().is_clean());
        }
    }

    #[test]
    fn pool_blocked_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        for threads in [1usize, 4] {
            let mut pool = parpool::Pool::new(threads);
            for n in [1usize, 5, 128, 700] {
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(&mut rng);
                let succ = succ_from_order(&order);
                let mut exec = Exec::pool(&mut pool);
                let h = exec.alloc_from(&succ);
                let r = list_rank_exec(&mut exec, h, 0);
                assert_eq!(exec.snapshot(r), list_rank_seq(&succ), "n={n} t={threads}");
            }
        }
    }

    #[test]
    fn blocked_handles_identity_order() {
        let n = 200;
        let order: Vec<usize> = (0..n).collect();
        let succ = succ_from_order(&order);
        let mut pram = Pram::strict(Mode::Erew, 8);
        let h = pram.alloc_from(&succ);
        let r = list_rank_blocked(&mut pram, h, 16);
        assert_eq!(pram.snapshot(r), list_rank_seq(&succ));
    }

    #[test]
    fn blocked_is_work_optimal() {
        let n = 1 << 12;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let succ = succ_from_order(&order);

        let mut pram_blocked = Pram::new(Mode::Erew, pram::optimal_processors(n));
        let h = pram_blocked.alloc_from(&succ);
        list_rank_blocked(&mut pram_blocked, h, 0);

        let mut pram_wyllie = Pram::new(Mode::Erew, pram::optimal_processors(n));
        let h = pram_wyllie.alloc_from(&succ);
        list_rank_wyllie(&mut pram_wyllie, h);

        // Pointer jumping performs Theta(n log n) work; the blocked algorithm
        // must be well below it.
        assert!(
            pram_blocked.metrics().work * 2 < pram_wyllie.metrics().work,
            "blocked={} wyllie={}",
            pram_blocked.metrics().work,
            pram_wyllie.metrics().work
        );
    }

    #[test]
    fn wyllie_handles_multiple_lists() {
        let succ = vec![1, NONE_WORD, 3, 4, NONE_WORD, NONE_WORD];
        let mut pram = Pram::strict(Mode::Erew, 4);
        let h = pram.alloc_from(&succ);
        let r = list_rank_wyllie(&mut pram, h);
        assert_eq!(pram.snapshot(r), list_rank_seq(&succ));
    }

    #[test]
    fn blocked_handles_multiple_lists() {
        let succ = vec![1, NONE_WORD, 3, 4, NONE_WORD, NONE_WORD, 0];
        let mut pram = Pram::strict(Mode::Erew, 4);
        let h = pram.alloc_from(&succ);
        let r = list_rank_blocked(&mut pram, h, 2);
        assert_eq!(pram.snapshot(r), list_rank_seq(&succ));
    }

    #[test]
    fn empty_list() {
        let mut pram = Pram::strict(Mode::Erew, 4);
        let h = pram.alloc(0);
        let r = list_rank_wyllie(&mut pram, h);
        assert!(pram.snapshot(r).is_empty());
        let r = list_rank_blocked(&mut pram, h, 0);
        assert!(pram.snapshot(r).is_empty());
    }
}
