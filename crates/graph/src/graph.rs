//! A simple undirected graph stored as adjacency lists.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Identifier of a vertex inside a [`Graph`].
///
/// Vertices are dense indices `0..n`; the small integer type keeps hot
/// structures compact (see the type-size guidance of the Rust performance
/// book) while still allowing graphs of up to four billion vertices.
pub type VertexId = u32;

/// A finite simple undirected graph.
///
/// The representation is an adjacency list per vertex. After
/// [`Graph::finalize`] (called implicitly by every constructor that returns a
/// complete graph) the neighbour lists are sorted, which makes
/// [`Graph::has_edge`] a binary search and iteration deterministic.
///
/// ```
/// use pcgraph::Graph;
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(1, 2).unwrap();
/// g.add_edge(2, 3).unwrap();
/// assert!(g.has_edge(1, 2));
/// assert!(!g.has_edge(0, 3));
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<VertexId>>,
    m: usize,
    sorted: bool,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            m: 0,
            sorted: true,
        }
    }

    /// Creates a graph from an explicit edge list.
    ///
    /// Returns an error on out-of-range endpoints, self loops or duplicate
    /// edges.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        g.finalize();
        Ok(g)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Inserts the undirected edge `{u, v}`.
    ///
    /// Self loops and duplicate edges are rejected so that the structure
    /// always represents a *simple* graph, which is what the cograph theory
    /// assumes.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.num_vertices();
        if (u as usize) >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if (v as usize) >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        // Appending in ascending neighbour order keeps the lists sorted, so
        // bulk constructors that emit edges in order (complement, join,
        // generators) retain binary-search `has_edge` while building instead
        // of degenerating to linear scans.
        let keeps_sorted = self.sorted
            && self.adj[u as usize].last().map_or(true, |&last| last < v)
            && self.adj[v as usize].last().map_or(true, |&last| last < u);
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.m += 1;
        self.sorted = keeps_sorted;
        Ok(())
    }

    /// Sorts all adjacency lists; called by constructors, cheap when already
    /// sorted. Idempotent.
    pub fn finalize(&mut self) {
        if !self.sorted {
            for list in &mut self.adj {
                list.sort_unstable();
            }
            self.sorted = true;
        }
    }

    /// Returns `true` when `{u, v}` is an edge.
    ///
    /// Out-of-range queries return `false` rather than panicking so the
    /// verifier can use the method on untrusted covers.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let n = self.num_vertices();
        if (u as usize) >= n || (v as usize) >= n || u == v {
            return false;
        }
        let list = &self.adj[u as usize];
        if self.sorted {
            list.binary_search(&v).is_ok()
        } else {
            list.contains(&v)
        }
    }

    /// Degree of `u`.
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj[u as usize].len()
    }

    /// Neighbours of `u` (sorted once [`Graph::finalize`] has run).
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[u as usize]
    }

    /// `true` once every adjacency list is sorted (after [`Graph::finalize`],
    /// or when all insertions arrived in ascending order). Sorted lists make
    /// [`Graph::has_edge`] a binary search and let passes that only care
    /// about neighbours below a threshold read a list prefix.
    pub fn is_finalized(&self) -> bool {
        self.sorted
    }

    /// All adjacency lists at once, indexed by vertex id.
    ///
    /// One borrow hands a pass over the whole graph its neighbour slices
    /// without a bounds-checked [`Graph::neighbors`] call per vertex; the
    /// incremental recogniser's marker pass iterates this directly.
    pub fn adjacency(&self) -> &[Vec<VertexId>] {
        &self.adj
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = u as VertexId;
            list.iter()
                .copied()
                .filter_map(move |v| if u < v { Some((u, v)) } else { None })
        })
    }

    /// Connected components as a vector `comp[v] = component index`, together
    /// with the number of components. Components are numbered in order of
    /// their smallest vertex.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let n = self.num_vertices();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = count;
            stack.push(start as VertexId);
            while let Some(u) = stack.pop() {
                for &w in self.neighbors(u) {
                    if comp[w as usize] == usize::MAX {
                        comp[w as usize] = count;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// `true` when the graph is connected (the empty graph is considered
    /// connected, matching the usual convention in the cograph literature).
    pub fn is_connected(&self) -> bool {
        if self.num_vertices() <= 1 {
            return true;
        }
        self.connected_components().1 == 1
    }

    /// Returns the adjacency matrix as a vector of row bitsets, used by the
    /// CRCW baseline that models an O(n^2)-processor algorithm.
    pub fn adjacency_matrix(&self) -> Vec<Vec<bool>> {
        let n = self.num_vertices();
        let mut rows = vec![vec![false; n]; n];
        for (u, v) in self.edges() {
            rows[u as usize][v as usize] = true;
            rows[v as usize][u as usize] = true;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert!(g.is_connected());
    }

    #[test]
    fn add_and_query_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(0, 3),
            Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })
        ));
        assert!(matches!(
            g.add_edge(5, 0),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 3 })
        ));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn edge_iterator_reports_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (2, 3)]).unwrap();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn connected_components_counts() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, count) = g.connected_components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
        assert!(!g.is_connected());
    }

    #[test]
    fn single_vertex_is_connected() {
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn adjacency_matrix_is_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let m = g.adjacency_matrix();
        for (u, row) in m.iter().enumerate() {
            for (v, &cell) in row.iter().enumerate() {
                assert_eq!(cell, m[v][u]);
                assert_eq!(cell, g.has_edge(u as u32, v as u32));
            }
        }
    }

    #[test]
    fn vertices_iterator() {
        let g = Graph::new(3);
        let vs: Vec<_> = g.vertices().collect();
        assert_eq!(vs, vec![0, 1, 2]);
    }

    #[test]
    fn adjacency_accessor() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3)]).unwrap();
        assert_eq!(g.adjacency().len(), 5);
        assert_eq!(&g.adjacency()[1], &[0, 2, 3]);
        assert!(g.is_finalized());
    }

    #[test]
    fn ascending_insertion_keeps_lists_sorted() {
        // Edges inserted in ascending order (the pattern of complement/join
        // construction) never dirty the sorted flag, so duplicate checks stay
        // binary searches mid-construction.
        let mut g = Graph::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                g.add_edge(u, v).unwrap();
            }
        }
        // All lists are sorted without an explicit finalize.
        for v in g.vertices() {
            let list = g.neighbors(v);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "list of {v} unsorted");
        }
        assert!(g.has_edge(0, 3));
        // Out-of-order insertion still works and finalize restores order.
        let mut h = Graph::new(3);
        h.add_edge(2, 0).unwrap();
        h.add_edge(0, 1).unwrap();
        h.finalize();
        assert_eq!(h.neighbors(0), &[1, 2]);
    }
}
