//! Graph operators used by the recursive cograph construction.
//!
//! Cographs are exactly the graphs obtainable from single vertices by
//! repeatedly taking disjoint unions and complements — equivalently, disjoint
//! unions and *joins* (the complement of a union of complements). The
//! operators here mirror that algebra on concrete [`Graph`]s so that cotree
//! materialisation and the test oracles can be expressed directly.

use crate::graph::{Graph, VertexId};

/// Complement of a simple graph: `{u, v}` is an edge of the result iff it is
/// not an edge of `g` (self loops excluded).
pub fn complement(g: &Graph) -> Graph {
    let n = g.num_vertices();
    let mut out = Graph::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if !g.has_edge(u, v) {
                out.add_edge(u, v)
                    .expect("complement edge insertion cannot fail");
            }
        }
    }
    out.finalize();
    out
}

/// Disjoint union of two graphs. Vertices of `b` are shifted by
/// `a.num_vertices()`.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let na = a.num_vertices();
    let nb = b.num_vertices();
    let mut out = Graph::new(na + nb);
    for (u, v) in a.edges() {
        out.add_edge(u, v).expect("union copies valid edges");
    }
    for (u, v) in b.edges() {
        out.add_edge(u + na as VertexId, v + na as VertexId)
            .expect("union copies valid edges");
    }
    out.finalize();
    out
}

/// Join of two graphs: the disjoint union plus every edge between the two
/// vertex sets. Vertices of `b` are shifted by `a.num_vertices()`.
pub fn join(a: &Graph, b: &Graph) -> Graph {
    let na = a.num_vertices();
    let nb = b.num_vertices();
    let mut out = disjoint_union(a, b);
    for u in 0..na as VertexId {
        for v in 0..nb as VertexId {
            out.add_edge(u, v + na as VertexId)
                .expect("join edges are fresh");
        }
    }
    out.finalize();
    out
}

/// Subgraph of `g` induced by `keep`, with vertices renumbered `0..keep.len()`
/// in the order given. Returns the mapping `new -> old` alongside the graph.
pub fn induced_subgraph(g: &Graph, keep: &[VertexId]) -> (Graph, Vec<VertexId>) {
    let mut old_to_new = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in keep.iter().enumerate() {
        old_to_new[old as usize] = new as VertexId;
    }
    let mut out = Graph::new(keep.len());
    for (u, v) in g.edges() {
        let (nu, nv) = (old_to_new[u as usize], old_to_new[v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            out.add_edge(nu, nv).expect("induced edges are fresh");
        }
    }
    out.finalize();
    (out, keep.to_vec())
}

/// Relabels the vertices of `g` according to `perm`, where `perm[old] = new`.
/// `perm` must be a permutation of `0..n`.
pub fn relabel(g: &Graph, perm: &[VertexId]) -> Graph {
    assert_eq!(perm.len(), g.num_vertices(), "permutation length mismatch");
    let mut out = Graph::new(g.num_vertices());
    for (u, v) in g.edges() {
        out.add_edge(perm[u as usize], perm[v as usize])
            .expect("relabelled edges are fresh for a permutation");
    }
    out.finalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn complement_of_empty_is_complete() {
        let g = Graph::new(4);
        let c = complement(&g);
        assert_eq!(c.num_edges(), 6);
        assert_eq!(complement(&c).num_edges(), 0);
    }

    #[test]
    fn complement_is_involutive() {
        let g = generators::path_graph(7);
        assert_eq!(complement(&complement(&g)), g);
    }

    #[test]
    fn disjoint_union_counts() {
        let a = generators::path_graph(3);
        let b = generators::complete_graph(3);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_vertices(), 6);
        assert_eq!(u.num_edges(), a.num_edges() + b.num_edges());
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(2, 3));
    }

    #[test]
    fn join_adds_all_cross_edges() {
        let a = Graph::new(2);
        let b = Graph::new(3);
        let j = join(&a, &b);
        assert_eq!(j.num_vertices(), 5);
        // no internal edges, 2*3 cross edges
        assert_eq!(j.num_edges(), 6);
        for u in 0..2u32 {
            for v in 2..5u32 {
                assert!(j.has_edge(u, v));
            }
        }
        assert!(!j.has_edge(0, 1));
        assert!(!j.has_edge(2, 3));
    }

    #[test]
    fn join_is_complement_of_union_of_complements() {
        let a = generators::path_graph(3);
        let b = generators::star_graph(3);
        let lhs = join(&a, &b);
        let rhs = complement(&disjoint_union(&complement(&a), &complement(&b)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = generators::complete_graph(5);
        let (sub, map) = induced_subgraph(&g, &[1, 3, 4]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![1, 3, 4]);
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        let g = generators::path_graph(5); // 0-1-2-3-4
        let (sub, _) = induced_subgraph(&g, &[0, 2, 4]);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = generators::path_graph(4);
        let perm = vec![3, 2, 1, 0];
        let r = relabel(&g, &perm);
        assert_eq!(r.num_edges(), g.num_edges());
        assert!(r.has_edge(3, 2));
        assert!(r.has_edge(1, 0));
        assert!(!r.has_edge(3, 0));
    }

    #[test]
    #[should_panic(expected = "permutation length mismatch")]
    fn relabel_rejects_wrong_length() {
        let g = generators::path_graph(4);
        relabel(&g, &[0, 1, 2]);
    }
}
