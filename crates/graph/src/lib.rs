//! # pcgraph — general graph substrate
//!
//! This crate provides the plain (non-cograph-specific) graph machinery the
//! rest of the workspace is built on:
//!
//! * [`Graph`] — a simple undirected graph stored as adjacency lists, with
//!   adjacency queries backed by sorted neighbour lists.
//! * [`CsrGraph`] — an immutable compressed-sparse-row view used by the
//!   benchmark harness for cache-friendly traversals.
//! * [`Path`], [`PathCover`] — the objects the path-cover algorithms produce,
//!   together with [`verify_path_cover`], the oracle every test and benchmark
//!   uses to certify a cover against the underlying graph.
//! * [`ops`] — graph operators (complement, disjoint union, join, induced
//!   subgraph) matching the recursive definition of cographs.
//! * [`generators`] — deterministic pseudo-random workload generators.
//!
//! The crate is deliberately free of any cograph- or PRAM-specific knowledge;
//! those live in the `cograph`, `parprims` and `pathcover` crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod error;
pub mod generators;
pub mod graph;
pub mod ops;
pub mod path;

pub use csr::CsrGraph;
pub use error::GraphError;
pub use graph::{Graph, VertexId};
pub use path::{verify_path_cover, CoverReport, Path, PathCover};
