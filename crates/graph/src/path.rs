//! Paths, path covers and the cover verifier.
//!
//! A *path cover* of a graph `G` is a set of vertex-disjoint simple paths
//! whose union contains every vertex of `G`. The path cover problem asks for
//! a cover with the minimum number of paths; a graph admitting a cover of
//! size one is Hamiltonian. Every algorithm in this workspace ultimately
//! produces a [`PathCover`], and every test certifies it with
//! [`verify_path_cover`].

use crate::error::GraphError;
use crate::graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};

/// A simple path given as the sequence of its vertices.
///
/// A single vertex is a path of length zero; the empty path is not allowed in
/// a [`PathCover`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    vertices: Vec<VertexId>,
}

impl Path {
    /// Creates a path from its vertex sequence.
    pub fn new(vertices: Vec<VertexId>) -> Self {
        Path { vertices }
    }

    /// Creates the one-vertex path.
    pub fn singleton(v: VertexId) -> Self {
        Path { vertices: vec![v] }
    }

    /// The vertices of the path in traversal order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of vertices on the path.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` for the (illegal inside covers) empty path.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// First vertex, if any.
    pub fn first(&self) -> Option<VertexId> {
        self.vertices.first().copied()
    }

    /// Last vertex, if any.
    pub fn last(&self) -> Option<VertexId> {
        self.vertices.last().copied()
    }

    /// Consumes the path and returns its vertex sequence.
    pub fn into_vertices(self) -> Vec<VertexId> {
        self.vertices
    }

    /// Checks that every consecutive pair of vertices is an edge of `g` and
    /// that no vertex repeats.
    pub fn is_valid_in(&self, g: &Graph) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        let mut seen = vec![false; g.num_vertices()];
        for &v in &self.vertices {
            let idx = v as usize;
            if idx >= g.num_vertices() || seen[idx] {
                return false;
            }
            seen[idx] = true;
        }
        self.vertices.windows(2).all(|w| g.has_edge(w[0], w[1]))
    }
}

impl From<Vec<VertexId>> for Path {
    fn from(vertices: Vec<VertexId>) -> Self {
        Path::new(vertices)
    }
}

/// A collection of vertex-disjoint paths intended to cover a graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathCover {
    paths: Vec<Path>,
}

impl PathCover {
    /// Creates an empty cover (valid only for the empty graph).
    pub fn new() -> Self {
        PathCover { paths: Vec::new() }
    }

    /// Creates a cover from a list of paths.
    pub fn from_paths(paths: Vec<Path>) -> Self {
        PathCover { paths }
    }

    /// Adds a path to the cover.
    pub fn push(&mut self, p: Path) {
        self.paths.push(p);
    }

    /// The paths of the cover.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` when the cover has no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Total number of vertices across all paths.
    pub fn total_vertices(&self) -> usize {
        self.paths.iter().map(Path::len).sum()
    }

    /// `true` when the cover consists of a single path (i.e. certifies a
    /// Hamiltonian path when it verifies against the graph).
    pub fn is_hamiltonian_path(&self) -> bool {
        self.paths.len() == 1
    }

    /// Consumes the cover and returns its paths.
    pub fn into_paths(self) -> Vec<Path> {
        self.paths
    }

    /// Iterates over all covered vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.paths.iter().flat_map(|p| p.vertices().iter().copied())
    }
}

impl FromIterator<Path> for PathCover {
    fn from_iter<T: IntoIterator<Item = Path>>(iter: T) -> Self {
        PathCover {
            paths: iter.into_iter().collect(),
        }
    }
}

/// Detailed result of verifying a [`PathCover`] against a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverReport {
    /// Number of paths in the cover.
    pub num_paths: usize,
    /// Number of vertices covered.
    pub covered: usize,
    /// Vertices of the graph not covered by any path.
    pub missing: Vec<VertexId>,
    /// Vertices covered by more than one path position.
    pub duplicated: Vec<VertexId>,
    /// Consecutive pairs on some path that are not edges of the graph.
    pub non_edges: Vec<(VertexId, VertexId)>,
    /// Vertices referenced by the cover that do not exist in the graph.
    pub out_of_range: Vec<VertexId>,
}

impl CoverReport {
    /// `true` when the cover is a genuine path cover of the graph.
    pub fn is_valid(&self) -> bool {
        self.missing.is_empty()
            && self.duplicated.is_empty()
            && self.non_edges.is_empty()
            && self.out_of_range.is_empty()
    }
}

/// Verifies that `cover` is a path cover of `g` and reports every defect.
///
/// The verifier is the trusted oracle of the whole workspace: both the
/// sequential baseline and the PRAM algorithm are checked against it, so it
/// is written for clarity rather than speed.
pub fn verify_path_cover(g: &Graph, cover: &PathCover) -> CoverReport {
    let n = g.num_vertices();
    let mut times_covered = vec![0usize; n];
    let mut out_of_range = Vec::new();
    let mut non_edges = Vec::new();

    for path in cover.paths() {
        for &v in path.vertices() {
            if (v as usize) < n {
                times_covered[v as usize] += 1;
            } else {
                out_of_range.push(v);
            }
        }
        for w in path.vertices().windows(2) {
            if !g.has_edge(w[0], w[1]) {
                non_edges.push((w[0], w[1]));
            }
        }
    }

    let missing: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| times_covered[v as usize] == 0)
        .collect();
    let duplicated: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| times_covered[v as usize] > 1)
        .collect();
    let covered = times_covered.iter().filter(|&&c| c > 0).count();

    CoverReport {
        num_paths: cover.len(),
        covered,
        missing,
        duplicated,
        non_edges,
        out_of_range,
    }
}

/// Convenience wrapper returning an error describing the first defect.
pub fn check_path_cover(g: &Graph, cover: &PathCover) -> Result<(), GraphError> {
    let report = verify_path_cover(g, cover);
    if report.is_valid() {
        Ok(())
    } else {
        Err(GraphError::InvalidCover(format!(
            "missing={:?} duplicated={:?} non_edges={:?} out_of_range={:?}",
            report.missing, report.duplicated, report.non_edges, report.out_of_range
        )))
    }
}

/// Computes the exact minimum number of paths needed to cover `g` by
/// exhaustive bitmask dynamic programming. Exponential; intended only for
/// cross-checking the real algorithms on small graphs (`n <= 20`) in tests.
///
/// `single[mask]` records whether the vertex subset `mask` can be covered by
/// one simple path; `best[mask]` is the minimum number of paths covering
/// exactly `mask`.
pub fn brute_force_min_path_cover(g: &Graph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    assert!(
        n <= 20,
        "brute force oracle is restricted to n <= 20 (got {n})"
    );
    let full: usize = if n == usize::BITS as usize {
        usize::MAX
    } else {
        (1 << n) - 1
    };

    // reach[mask][v]: `mask` can be covered by one path ending at `v`.
    let mut reach = vec![0usize; 1 << n]; // bitset over ending vertices
    for v in 0..n {
        reach[1 << v] |= 1 << v;
    }
    for mask in 1..=full {
        let ends = reach[mask];
        if ends == 0 {
            continue;
        }
        for v in 0..n {
            if ends & (1 << v) == 0 {
                continue;
            }
            for &w in g.neighbors(v as VertexId) {
                let w = w as usize;
                if mask & (1 << w) == 0 {
                    reach[mask | (1 << w)] |= 1 << w;
                }
            }
        }
    }
    let single: Vec<bool> = reach.iter().map(|&ends| ends != 0).collect();

    // best[mask]: minimum number of vertex-disjoint paths covering `mask`.
    let mut best = vec![usize::MAX; 1 << n];
    best[0] = 0;
    for mask in 1..=full {
        // The lowest uncovered vertex must lie on some path; enumerate the
        // sub-mask that forms that path.
        let low = mask & mask.wrapping_neg();
        let mut sub = mask;
        let mut value = usize::MAX;
        while sub > 0 {
            if sub & low != 0 && single[sub] && best[mask ^ sub] != usize::MAX {
                value = value.min(1 + best[mask ^ sub]);
            }
            sub = (sub - 1) & mask;
        }
        best[mask] = value;
    }
    best[full]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn path_basics() {
        let p = Path::new(vec![3, 1, 2]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.first(), Some(3));
        assert_eq!(p.last(), Some(2));
        assert!(!p.is_empty());
        let s = Path::singleton(7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), s.last());
    }

    #[test]
    fn path_validity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(Path::new(vec![0, 1, 2, 3]).is_valid_in(&g));
        assert!(!Path::new(vec![0, 2]).is_valid_in(&g));
        assert!(!Path::new(vec![0, 1, 0]).is_valid_in(&g));
        assert!(!Path::new(vec![]).is_valid_in(&g));
        assert!(!Path::new(vec![9]).is_valid_in(&g));
    }

    #[test]
    fn valid_cover_verifies() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let cover = PathCover::from_paths(vec![Path::new(vec![0, 1, 2]), Path::new(vec![3, 4])]);
        let report = verify_path_cover(&g, &cover);
        assert!(report.is_valid(), "{report:?}");
        assert_eq!(report.num_paths, 2);
        assert_eq!(report.covered, 5);
        assert!(check_path_cover(&g, &cover).is_ok());
    }

    #[test]
    fn missing_vertex_detected() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let cover = PathCover::from_paths(vec![Path::new(vec![0, 1])]);
        let report = verify_path_cover(&g, &cover);
        assert!(!report.is_valid());
        assert_eq!(report.missing, vec![2]);
        assert!(check_path_cover(&g, &cover).is_err());
    }

    #[test]
    fn duplicate_vertex_detected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let cover = PathCover::from_paths(vec![Path::new(vec![0, 1]), Path::new(vec![1, 2])]);
        let report = verify_path_cover(&g, &cover);
        assert!(!report.is_valid());
        assert_eq!(report.duplicated, vec![1]);
    }

    #[test]
    fn non_edge_detected() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let cover = PathCover::from_paths(vec![Path::new(vec![0, 1, 2])]);
        let report = verify_path_cover(&g, &cover);
        assert!(!report.is_valid());
        assert_eq!(report.non_edges, vec![(1, 2)]);
    }

    #[test]
    fn out_of_range_detected() {
        let g = Graph::new(2);
        let cover = PathCover::from_paths(vec![
            Path::new(vec![0]),
            Path::new(vec![1]),
            Path::new(vec![5]),
        ]);
        let report = verify_path_cover(&g, &cover);
        assert!(!report.is_valid());
        assert_eq!(report.out_of_range, vec![5]);
    }

    #[test]
    fn empty_cover_of_empty_graph_is_valid() {
        let g = Graph::new(0);
        let report = verify_path_cover(&g, &PathCover::new());
        assert!(report.is_valid());
        assert_eq!(report.covered, 0);
    }

    #[test]
    fn cover_metadata() {
        let cover = PathCover::from_paths(vec![Path::new(vec![0, 1, 2])]);
        assert!(cover.is_hamiltonian_path());
        assert_eq!(cover.total_vertices(), 3);
        let vs: Vec<_> = cover.vertices().collect();
        assert_eq!(vs, vec![0, 1, 2]);
    }

    #[test]
    fn brute_force_on_path_graph() {
        // A path graph has a Hamiltonian path: minimum cover is 1.
        let g = generators::path_graph(6);
        assert_eq!(brute_force_min_path_cover(&g), 1);
    }

    #[test]
    fn brute_force_on_edgeless_graph() {
        let g = Graph::new(4);
        assert_eq!(brute_force_min_path_cover(&g), 4);
    }

    #[test]
    fn brute_force_on_star() {
        // Star K_{1,4}: centre can join two leaves into one path; remaining
        // 2 leaves are singletons -> 3 paths.
        let g = generators::star_graph(4);
        assert_eq!(brute_force_min_path_cover(&g), 3);
    }

    #[test]
    fn brute_force_on_complete_graph() {
        let g = generators::complete_graph(5);
        assert_eq!(brute_force_min_path_cover(&g), 1);
    }

    #[test]
    fn from_iterator_collects_paths() {
        let cover: PathCover = vec![Path::singleton(0), Path::singleton(1)]
            .into_iter()
            .collect();
        assert_eq!(cover.len(), 2);
    }
}
