//! Deterministic workload generators.
//!
//! All random generators take an explicit RNG so experiments are reproducible
//! from a seed; the benchmark harness uses `rand_chacha::ChaCha8Rng` seeds
//! recorded in `EXPERIMENTS.md`.

use crate::graph::{Graph, VertexId};
use rand::Rng;

/// The path graph `P_n`: vertices `0..n`, edges `{i, i+1}`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge((i - 1) as VertexId, i as VertexId)
            .expect("path edges are simple");
    }
    g.finalize();
    g
}

/// The cycle graph `C_n` (requires `n >= 3` to be simple; smaller `n` yields
/// the path graph instead).
pub fn cycle_graph(n: usize) -> Graph {
    let mut g = path_graph(n);
    if n >= 3 {
        g.add_edge(0, (n - 1) as VertexId)
            .expect("closing edge is fresh");
        g.finalize();
    }
    g
}

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u as VertexId, v as VertexId)
                .expect("complete edges are simple");
        }
    }
    g.finalize();
    g
}

/// The star `K_{1,k}`: vertex `0` is the centre, vertices `1..=k` are leaves.
pub fn star_graph(k: usize) -> Graph {
    let mut g = Graph::new(k + 1);
    for leaf in 1..=k {
        g.add_edge(0, leaf as VertexId)
            .expect("star edges are simple");
    }
    g.finalize();
    g
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u as VertexId, (a + v) as VertexId)
                .expect("bipartite edges are simple");
        }
    }
    g.finalize();
    g
}

/// An Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u as VertexId, v as VertexId)
                    .expect("ER edges are simple");
            }
        }
    }
    g.finalize();
    g
}

/// A disjoint union of `k` cliques whose sizes are drawn uniformly from
/// `1..=max_size`. Cluster graphs are cographs, which makes this a convenient
/// positive workload for the recognition tests.
pub fn random_cluster_graph<R: Rng>(k: usize, max_size: usize, rng: &mut R) -> Graph {
    let sizes: Vec<usize> = (0..k).map(|_| rng.gen_range(1..=max_size.max(1))).collect();
    let mut g = Graph::new(sizes.iter().sum());
    let mut offset = 0usize;
    for s in sizes {
        for u in 0..s {
            for v in (u + 1)..s {
                g.add_edge((offset + u) as VertexId, (offset + v) as VertexId)
                    .expect("cluster edges are simple");
            }
        }
        offset += s;
    }
    g.finalize();
    g
}

/// The path graph `P_4` — the canonical *non*-cograph (cographs are exactly
/// the `P_4`-free graphs), used as a negative workload by recognition tests.
pub fn p4() -> Graph {
    path_graph(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn path_graph_degenerate_cases() {
        assert_eq!(path_graph(0).num_vertices(), 0);
        assert_eq!(path_graph(1).num_edges(), 0);
        assert_eq!(path_graph(2).num_edges(), 1);
    }

    #[test]
    fn cycle_graph_shape() {
        let g = cycle_graph(5);
        assert_eq!(g.num_edges(), 5);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
        // degenerate sizes fall back to paths
        assert_eq!(cycle_graph(2).num_edges(), 1);
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn star_graph_shape() {
        let g = star_graph(5);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(0), 5);
        assert!((1..=5).all(|v| g.degree(v as u32) == 1));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g0 = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_is_deterministic_for_a_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(42);
        let mut r2 = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(erdos_renyi(20, 0.3, &mut r1), erdos_renyi(20, 0.3, &mut r2));
    }

    #[test]
    fn cluster_graph_is_disjoint_cliques() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = random_cluster_graph(4, 5, &mut rng);
        // Every connected component must be a clique.
        let (comp, count) = g.connected_components();
        assert!(count <= 4 + 1);
        for c in 0..count {
            let members: Vec<u32> = g.vertices().filter(|&v| comp[v as usize] == c).collect();
            for &u in &members {
                for &v in &members {
                    if u != v {
                        assert!(g.has_edge(u, v), "component {c} is not a clique");
                    }
                }
            }
        }
    }

    #[test]
    fn p4_is_the_four_vertex_path() {
        let g = p4();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
    }
}
