//! Error types shared by the graph substrate.

use std::fmt;

/// Errors produced by graph construction and validation routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced an index outside of the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self loop was supplied; simple graphs do not allow them.
    SelfLoop {
        /// The vertex carrying the loop.
        vertex: u32,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// A path cover failed verification; the report carries the details.
    InvalidCover(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop on vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::InvalidCover(msg) => write!(f, "invalid path cover: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 3 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
        let e = GraphError::SelfLoop { vertex: 2 };
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate"));
        let e = GraphError::InvalidCover("missing vertex".into());
        assert!(e.to_string().contains("missing vertex"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&GraphError::SelfLoop { vertex: 0 });
    }
}
