//! Immutable compressed-sparse-row (CSR) graph view.
//!
//! The benchmark harness walks millions of adjacencies; the CSR layout keeps
//! all neighbour lists in one contiguous allocation which is both smaller and
//! far friendlier to the cache than a `Vec<Vec<_>>` (see the heap-allocation
//! chapter of the Rust performance book).

use crate::graph::{Graph, VertexId};

/// An immutable CSR snapshot of a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` with the neighbours of `v`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted neighbour lists.
    targets: Vec<VertexId>,
    /// Number of undirected edges.
    m: usize,
}

impl CsrGraph {
    /// Builds the CSR view of `g`. The neighbour lists are sorted per vertex.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for v in 0..n as VertexId {
            let mut nbrs: Vec<VertexId> = g.neighbors(v).to_vec();
            nbrs.sort_unstable();
            targets.extend_from_slice(&nbrs);
            offsets.push(targets.len());
        }
        CsrGraph {
            offsets,
            targets,
            m: g.num_edges(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Neighbours of `v`, sorted.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Binary-search adjacency query.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Total length of the neighbour array (2m for a simple graph).
    pub fn arity_sum(&self) -> usize {
        self.targets.len()
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn csr_matches_adjacency_list() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.arity_sum(), 8);
        for u in 0..5u32 {
            assert_eq!(csr.degree(u), g.degree(u));
            for v in 0..5u32 {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, &[(3, 0), (2, 0), (1, 0)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn out_of_range_edge_query_is_false() {
        let csr = CsrGraph::from_graph(&sample());
        assert!(!csr.has_edge(0, 77));
        assert!(!csr.has_edge(77, 0));
    }

    #[test]
    fn from_trait() {
        let g = sample();
        let csr: CsrGraph = (&g).into();
        assert_eq!(csr.num_vertices(), g.num_vertices());
    }
}
