//! # pc-bench — benchmark harness and experiment driver
//!
//! This crate hosts two things:
//!
//! * the Criterion benches under `benches/` (one per experiment of
//!   `EXPERIMENTS.md`), and
//! * the `experiments` binary (`src/bin/experiments.rs`), which runs every
//!   parameter sweep on the PRAM simulator and prints the tables recorded in
//!   `EXPERIMENTS.md`.
//!
//! The library part contains the shared workload definitions and table
//! formatting helpers so that benches and the experiment driver measure
//! exactly the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod workloads;

pub use report::Table;
pub use workloads::{CotreeFamily, Workload};
