//! Experiment driver: regenerates every table of `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release -p pc-bench --bin experiments [-- --quick]`

use cograph::BinaryCotree;
use pathcover::prelude::*;
use pc_bench::workloads::{CotreeFamily, Workload, DEFAULT_SEED};
use pc_bench::Table;
use pram::Mode;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![1 << 8, 1 << 10]
    } else {
        vec![1 << 8, 1 << 10, 1 << 12, 1 << 14]
    };
    e1_lower_bound(&sizes);
    e2_sequential(&sizes, quick);
    e3_path_counts(&sizes);
    e4_full_pipeline(&sizes);
    e5_baselines(&sizes, quick);
    e6_processor_sweep(if quick { 1 << 10 } else { 1 << 12 });
    e7_hamiltonian(&sizes);
    e8_primitives(&sizes);
}

fn print_table(title: &str, table: &Table) {
    println!("\n## {title}\n");
    println!("{}", table.render());
}

/// E1 — Theorem 2.2: the OR reduction and the matching Theta(log n) upper bound.
fn e1_lower_bound(sizes: &[usize]) {
    let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED);
    let mut t = Table::new(vec![
        "n (bits)",
        "cover size",
        "OR",
        "pipeline steps",
        "steps/log2(n)",
    ]);
    for &n in sizes {
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.25)).collect();
        let cotree = or_instance_cotree(&bits);
        let outcome = pram_path_cover(&cotree, PramConfig::default());
        let or = outcome.cover.len() < n + 2;
        assert_eq!(or, bits.iter().any(|&b| b));
        t.add_row(vec![
            n.to_string(),
            outcome.cover.len().to_string(),
            or.to_string(),
            outcome
                .metrics
                .as_ref()
                .expect("sim metrics")
                .steps
                .to_string(),
            format!(
                "{:.1}",
                outcome
                    .metrics
                    .as_ref()
                    .expect("sim metrics")
                    .steps_per_log(n)
            ),
        ]);
    }
    print_table("E1 - lower-bound reduction (Theorem 2.2)", &t);
}

/// E2 — Lemma 2.3: the sequential algorithm is (near-)linear time.
fn e2_sequential(sizes: &[usize], quick: bool) {
    let mut t = Table::new(vec![
        "family",
        "n",
        "paths",
        "wall time (ms)",
        "us per vertex",
    ]);
    let extra = if quick {
        vec![]
    } else {
        vec![1 << 16, 1 << 18, 1 << 20]
    };
    for family in CotreeFamily::ALL {
        for &n in sizes.iter().chain(extra.iter()) {
            let cotree = Workload::new(family, n, DEFAULT_SEED).cotree();
            let start = Instant::now();
            let cover = sequential_path_cover(&cotree);
            let elapsed = start.elapsed();
            t.add_row(vec![
                family.name().to_string(),
                n.to_string(),
                cover.len().to_string(),
                format!("{:.2}", elapsed.as_secs_f64() * 1e3),
                format!("{:.3}", elapsed.as_secs_f64() * 1e6 / n as f64),
            ]);
        }
    }
    print_table("E2 - sequential algorithm (Lemma 2.3)", &t);
}

/// E3 — Lemma 2.4: path counts in O(log n) steps and O(n) work, EREW-clean.
fn e3_path_counts(sizes: &[usize]) {
    let mut t = Table::new(vec![
        "family",
        "n",
        "steps",
        "steps/log2(n)",
        "work",
        "work/n",
        "violations",
    ]);
    for family in CotreeFamily::ALL {
        for &n in sizes {
            let cotree = Workload::new(family, n, DEFAULT_SEED).cotree();
            let (tree, leaf_counts) = BinaryCotree::leftist_from_cotree(&cotree);
            let mut machine = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
            let _ = cograph::path_counts_pram(&mut machine, &tree, &leaf_counts);
            let m = machine.metrics();
            t.add_row(vec![
                family.name().to_string(),
                n.to_string(),
                m.steps.to_string(),
                format!("{:.1}", m.steps_per_log(n)),
                m.work.to_string(),
                format!("{:.1}", m.work_per_item(n)),
                m.violations.len().to_string(),
            ]);
        }
    }
    print_table("E3 - number of paths via tree contraction (Lemma 2.4)", &t);
}

/// E4 — Theorem 5.3: the full pipeline.
fn e4_full_pipeline(sizes: &[usize]) {
    let mut t = Table::new(vec![
        "family",
        "n",
        "paths",
        "steps",
        "steps/log2(n)",
        "work",
        "work/n",
        "EREW read conflicts",
        "write conflicts",
    ]);
    for family in CotreeFamily::ALL {
        for &n in sizes {
            let cotree = Workload::new(family, n, DEFAULT_SEED).cotree();
            let outcome = pram_path_cover(&cotree, PramConfig::default());
            let reads = outcome
                .metrics
                .as_ref()
                .expect("sim metrics")
                .violations
                .iter()
                .filter(|v| v.kind == pram::ViolationKind::ConcurrentRead)
                .count();
            let writes = outcome
                .metrics
                .as_ref()
                .expect("sim metrics")
                .violations
                .len()
                - reads;
            t.add_row(vec![
                family.name().to_string(),
                n.to_string(),
                outcome.cover.len().to_string(),
                outcome
                    .metrics
                    .as_ref()
                    .expect("sim metrics")
                    .steps
                    .to_string(),
                format!(
                    "{:.1}",
                    outcome
                        .metrics
                        .as_ref()
                        .expect("sim metrics")
                        .steps_per_log(n)
                ),
                outcome
                    .metrics
                    .as_ref()
                    .expect("sim metrics")
                    .work
                    .to_string(),
                format!(
                    "{:.1}",
                    outcome
                        .metrics
                        .as_ref()
                        .expect("sim metrics")
                        .work_per_item(n)
                ),
                reads.to_string(),
                writes.to_string(),
            ]);
        }
    }
    print_table("E4 - full minimum path cover pipeline (Theorem 5.3)", &t);
}

/// E5 — comparison against the prior algorithms.
fn e5_baselines(sizes: &[usize], quick: bool) {
    let mut t = Table::new(vec![
        "family",
        "n",
        "algorithm",
        "steps",
        "work",
        "processors",
    ]);
    for family in [CotreeFamily::Balanced, CotreeFamily::Skewed] {
        for &n in sizes {
            let cotree = Workload::new(family, n, DEFAULT_SEED).cotree();
            let ours = pram_path_cover(&cotree, PramConfig::default());
            let mut rows = vec![(
                "this paper (optimal)",
                ours.metrics.as_ref().expect("sim metrics").steps,
                ours.metrics.as_ref().expect("sim metrics").work,
                ours.processors,
            )];
            let naive = naive_parallel_cover(&cotree);
            rows.push((
                "naive bottom-up",
                naive.metrics.as_ref().expect("sim metrics").steps,
                naive.metrics.as_ref().expect("sim metrics").work,
                naive.processors,
            ));
            let lin = lin_etal_cover(&cotree);
            rows.push((
                "Lin et al. [18]",
                lin.metrics.as_ref().expect("sim metrics").steps,
                lin.metrics.as_ref().expect("sim metrics").work,
                lin.processors,
            ));
            if n <= if quick { 1 << 10 } else { 1 << 12 } {
                let ap = adhar_peng_like_cover(&cotree);
                rows.push((
                    "Adhar-Peng-like [2]",
                    ap.metrics.as_ref().expect("sim metrics").steps,
                    ap.metrics.as_ref().expect("sim metrics").work,
                    ap.processors,
                ));
            }
            for (name, steps, work, procs) in rows {
                t.add_row(vec![
                    family.name().to_string(),
                    n.to_string(),
                    name.to_string(),
                    steps.to_string(),
                    work.to_string(),
                    procs.to_string(),
                ]);
            }
        }
    }
    print_table("E5 - comparison against prior algorithms", &t);
}

/// E6 — Brent speedup / work optimality across processor counts.
fn e6_processor_sweep(n: usize) {
    let cotree = Workload::new(CotreeFamily::Balanced, n, DEFAULT_SEED).cotree();
    let mut t = Table::new(vec![
        "processors",
        "steps",
        "speedup vs p=1",
        "p x steps / work",
    ]);
    let base = pram_path_cover(
        &cotree,
        PramConfig {
            processors: Some(1),
            ..PramConfig::default()
        },
    );
    let mut p = 1usize;
    while p <= n {
        let outcome = pram_path_cover(
            &cotree,
            PramConfig {
                processors: Some(p),
                ..PramConfig::default()
            },
        );
        t.add_row(vec![
            p.to_string(),
            outcome
                .metrics
                .as_ref()
                .expect("sim metrics")
                .steps
                .to_string(),
            format!(
                "{:.2}",
                base.metrics.as_ref().expect("sim metrics").steps as f64
                    / outcome.metrics.as_ref().expect("sim metrics").steps as f64
            ),
            format!(
                "{:.2}",
                (p as u64 * outcome.metrics.as_ref().expect("sim metrics").steps) as f64
                    / outcome.metrics.as_ref().expect("sim metrics").work as f64
            ),
        ]);
        p *= 4;
    }
    print_table(
        &format!("E6 - processor sweep (Brent speedup), balanced n={n}"),
        &t,
    );
}

/// E7 — Hamiltonian path / cycle decisions.
fn e7_hamiltonian(sizes: &[usize]) {
    let mut t = Table::new(vec![
        "n",
        "ham. path",
        "ham. cycle",
        "steps",
        "steps/log2(n)",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED);
    for &n in sizes {
        let cotree = cograph::generators::random_connected_cotree(n, CotreeFamily::Mixed, &mut rng);
        let outcome = pram_path_cover(&cotree, PramConfig::default());
        t.add_row(vec![
            n.to_string(),
            (outcome.cover.len() == 1).to_string(),
            has_hamiltonian_cycle(&cotree).to_string(),
            outcome
                .metrics
                .as_ref()
                .expect("sim metrics")
                .steps
                .to_string(),
            format!(
                "{:.1}",
                outcome
                    .metrics
                    .as_ref()
                    .expect("sim metrics")
                    .steps_per_log(n)
            ),
        ]);
    }
    print_table("E7 - Hamiltonian path / cycle decisions", &t);
}

/// E8 — the primitive toolbox of Lemmas 5.1 / 5.2.
fn e8_primitives(sizes: &[usize]) {
    use parprims::brackets::BracketKind;
    use parprims::scan::ScanOp;
    let mut t = Table::new(vec![
        "primitive",
        "n",
        "steps",
        "steps/log2(n)",
        "work/n",
        "violations",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED);
    for &n in sizes {
        // prefix sums
        let data: Vec<i64> = (0..n as i64).collect();
        let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
        let h = m.alloc_from(&data);
        let _ = parprims::scan::prefix_sums_pram(&mut m, h, ScanOp::Sum, 0);
        t.add_row(vec![
            "prefix sums".into(),
            n.to_string(),
            m.metrics().steps.to_string(),
            format!("{:.1}", m.metrics().steps_per_log(n)),
            format!("{:.1}", m.metrics().work_per_item(n)),
            m.metrics().violations.len().to_string(),
        ]);
        // list ranking
        let mut order: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        let mut succ = vec![-1i64; n];
        for w in order.windows(2) {
            succ[w[0]] = w[1] as i64;
        }
        let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
        let h = m.alloc_from(&succ);
        let _ = parprims::ranking::list_rank_blocked(&mut m, h, 0);
        t.add_row(vec![
            "list ranking (blocked)".into(),
            n.to_string(),
            m.metrics().steps.to_string(),
            format!("{:.1}", m.metrics().steps_per_log(n)),
            format!("{:.1}", m.metrics().work_per_item(n)),
            m.metrics().violations.len().to_string(),
        ]);
        // bracket matching
        let kinds: Vec<i64> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    BracketKind::Open
                } else {
                    BracketKind::Close
                }
                .to_word()
            })
            .collect();
        let mut m = pram::Pram::new(Mode::Crew, pram::optimal_processors(n));
        let h = m.alloc_from(&kinds);
        let _ = parprims::brackets::match_brackets_pram(&mut m, h);
        t.add_row(vec![
            "bracket matching (CREW)".into(),
            n.to_string(),
            m.metrics().steps.to_string(),
            format!("{:.1}", m.metrics().steps_per_log(n)),
            format!("{:.1}", m.metrics().work_per_item(n)),
            m.metrics().violations.len().to_string(),
        ]);
        // euler tour numberings
        let cotree = Workload::new(CotreeFamily::Balanced, n, DEFAULT_SEED).cotree();
        let (tree, _) = BinaryCotree::leftist_from_cotree(&cotree);
        let rooted = tree.to_rooted_tree();
        let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
        let _ = parprims::euler::euler_tour_numbers(&mut m, &rooted, None);
        t.add_row(vec![
            "euler tour numberings".into(),
            n.to_string(),
            m.metrics().steps.to_string(),
            format!("{:.1}", m.metrics().steps_per_log(n)),
            format!("{:.1}", m.metrics().work_per_item(n)),
            m.metrics().violations.len().to_string(),
        ]);
    }
    print_table("E8 - primitive toolbox (Lemmas 5.1 / 5.2)", &t);
}
