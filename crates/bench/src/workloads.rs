//! Shared workload definitions used by the Criterion benches and by the
//! `experiments` binary, so both measure exactly the same inputs.

pub use cograph::CotreeShape as CotreeFamily;
use cograph::{random_cotree, Cotree};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A named workload: a cotree family, a vertex count and an RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Shape family.
    pub family: CotreeFamily,
    /// Number of cograph vertices.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Workload {
    /// Creates the workload descriptor.
    pub fn new(family: CotreeFamily, n: usize, seed: u64) -> Self {
        Workload { family, n, seed }
    }

    /// Materialises the cotree of this workload (deterministic per seed).
    pub fn cotree(&self) -> Cotree {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        random_cotree(self.n, self.family, &mut rng)
    }

    /// Label used in benchmark ids and experiment tables.
    pub fn label(&self) -> String {
        format!("{}-{}", self.family.name(), self.n)
    }
}

/// The default seed used throughout the experiments (recorded in
/// `EXPERIMENTS.md`).
pub const DEFAULT_SEED: u64 = 20_260_614;

/// Standard size sweep for the experiments.
pub fn size_sweep() -> Vec<usize> {
    vec![1 << 8, 1 << 10, 1 << 12, 1 << 14]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_deterministic() {
        let w = Workload::new(CotreeFamily::Mixed, 50, 7);
        assert_eq!(w.cotree(), w.cotree());
        assert_eq!(w.cotree().num_vertices(), 50);
        assert_eq!(w.label(), "mixed-50");
    }

    #[test]
    fn sweep_is_increasing() {
        let s = size_sweep();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
