//! Plain-text table formatting for the experiment driver.

/// A simple fixed-width text table accumulated row by row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row is padded or truncated to the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", cell, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["n", "steps"]);
        t.add_row(vec!["16", "40"]);
        t.add_row(vec!["1024", "110"]);
        let s = t.render();
        assert!(s.contains("n"));
        assert!(s.contains("1024"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        assert!(t.render().lines().count() >= 3);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }
}
