//! E5 — prior-work comparison: ours vs naive vs Lin et al. vs Adhar-Peng.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcover::prelude::*;
use pc_bench::workloads::{CotreeFamily, Workload, DEFAULT_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_baselines");
    group.sample_size(10);
    for n in [1usize << 8, 1 << 10] {
        let cotree = Workload::new(CotreeFamily::Skewed, n, DEFAULT_SEED).cotree();
        group.bench_with_input(BenchmarkId::new("ours", n), &cotree, |b, t| {
            b.iter(|| pram_path_cover(t, PramConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &cotree, |b, t| {
            b.iter(|| naive_parallel_cover(t))
        });
        group.bench_with_input(BenchmarkId::new("lin_etal", n), &cotree, |b, t| {
            b.iter(|| lin_etal_cover(t))
        });
        group.bench_with_input(BenchmarkId::new("adhar_peng", n), &cotree, |b, t| {
            b.iter(|| adhar_peng_like_cover(t))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
