//! `parallel_speedup` — wall-clock speedup-vs-cores curves for the pool
//! backend, plus the PRAM-simulator reference points.
//!
//! Every kernel (scan, list ranking, Euler tour) and the end-to-end solve run
//! on the pool backend at t ∈ {1, 2, 4, 8} worker threads for n = 2^16 and
//! n = 2^20; the simulator reference runs the same workload at n = 2^16 so
//! the pool-vs-sim wall-clock ratio can be read straight out of
//! `BENCH_parallel.json` (`CRITERION_JSON=BENCH_parallel.json cargo bench
//! -p pc-bench --bench parallel_speedup`). On a single-core host the curves
//! are flat — the JSON carries a caveat note for that case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parpool::Pool;
use parprims::exec::Exec;
use parprims::scan::{prefix_sums_exec, ScanOp};
use parprims::tree::{RootedTree, NONE};
use parprims::{euler_tour_numbers_exec, list_rank_exec};
use pathcover::{pool_path_cover, pram_path_cover, PramConfig};
use pc_bench::workloads::{CotreeFamily, Workload, DEFAULT_SEED};
use pram::{Mode, Pram};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const POOL_THREADS: [usize; 4] = [1, 2, 4, 8];
const POOL_SIZES: [usize; 2] = [1 << 16, 1 << 20];
const SIM_SIZE: usize = 1 << 16;

fn scan_input(n: usize) -> Vec<i64> {
    let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED);
    (0..n).map(|_| rng.gen_range(-100..100)).collect()
}

/// Single list over a random permutation: `succ[order[i]] = order[i + 1]`.
fn list_input(n: usize) -> Vec<i64> {
    let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED + 1);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    let mut succ = vec![-1i64; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1] as i64;
    }
    succ
}

/// Random tree on `n` nodes given by parent pointers (node 0 is the root).
fn tree_input(n: usize) -> RootedTree {
    let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED + 2);
    let mut parent = vec![NONE; n];
    for (v, slot) in parent.iter_mut().enumerate().skip(1) {
        *slot = rng.gen_range(0..v);
    }
    RootedTree::from_parents(parent)
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup/scan");
    group.sample_size(10);
    for n in POOL_SIZES {
        let input = scan_input(n);
        for t in POOL_THREADS {
            let mut pool = Pool::new(t);
            group.bench_with_input(
                BenchmarkId::new(format!("pool/n={n}/threads"), t),
                &input,
                |b, input| {
                    b.iter(|| {
                        let mut exec = Exec::pool(&mut pool);
                        let xs = exec.alloc_from(input);
                        let out = prefix_sums_exec(&mut exec, xs, ScanOp::Sum, 0);
                        exec.peek(out, input.len() - 1)
                    })
                },
            );
        }
    }
    let input = scan_input(SIM_SIZE);
    group.bench_with_input(BenchmarkId::new("sim/n", SIM_SIZE), &input, |b, input| {
        b.iter(|| {
            let mut pram = Pram::new(Mode::Erew, pram::optimal_processors(input.len()));
            let mut exec = Exec::sim(&mut pram);
            let xs = exec.alloc_from(input);
            let out = prefix_sums_exec(&mut exec, xs, ScanOp::Sum, 0);
            exec.peek(out, input.len() - 1)
        })
    });
    group.finish();
}

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup/ranking");
    group.sample_size(10);
    for n in POOL_SIZES {
        let succ = list_input(n);
        for t in POOL_THREADS {
            let mut pool = Pool::new(t);
            group.bench_with_input(
                BenchmarkId::new(format!("pool/n={n}/threads"), t),
                &succ,
                |b, succ| {
                    b.iter(|| {
                        let mut exec = Exec::pool(&mut pool);
                        let xs = exec.alloc_from(succ);
                        let rank = list_rank_exec(&mut exec, xs, 0);
                        exec.peek(rank, 0)
                    })
                },
            );
        }
    }
    let succ = list_input(SIM_SIZE);
    group.bench_with_input(BenchmarkId::new("sim/n", SIM_SIZE), &succ, |b, succ| {
        b.iter(|| {
            let mut pram = Pram::new(Mode::Erew, pram::optimal_processors(succ.len()));
            let mut exec = Exec::sim(&mut pram);
            let xs = exec.alloc_from(succ);
            let rank = list_rank_exec(&mut exec, xs, 0);
            exec.peek(rank, 0)
        })
    });
    group.finish();
}

fn bench_euler(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup/euler");
    group.sample_size(10);
    for n in POOL_SIZES {
        let tree = tree_input(n);
        for t in POOL_THREADS {
            let mut pool = Pool::new(t);
            group.bench_with_input(
                BenchmarkId::new(format!("pool/n={n}/threads"), t),
                &tree,
                |b, tree| {
                    b.iter(|| {
                        let mut exec = Exec::pool(&mut pool);
                        euler_tour_numbers_exec(&mut exec, tree, None).preorder[0]
                    })
                },
            );
        }
    }
    let tree = tree_input(SIM_SIZE);
    group.bench_with_input(BenchmarkId::new("sim/n", SIM_SIZE), &tree, |b, tree| {
        b.iter(|| {
            let mut pram = Pram::new(Mode::Erew, pram::optimal_processors(tree.len()));
            let mut exec = Exec::sim(&mut pram);
            euler_tour_numbers_exec(&mut exec, tree, None).preorder[0]
        })
    });
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup/solve");
    group.sample_size(5);
    for n in POOL_SIZES {
        let cotree = Workload::new(CotreeFamily::Balanced, n, DEFAULT_SEED).cotree();
        for t in POOL_THREADS {
            let mut pool = Pool::new(t);
            group.bench_with_input(
                BenchmarkId::new(format!("pool/n={n}/threads"), t),
                &cotree,
                |b, cotree| b.iter(|| pool_path_cover(cotree, &mut pool).len()),
            );
        }
    }
    let cotree = Workload::new(CotreeFamily::Balanced, SIM_SIZE, DEFAULT_SEED).cotree();
    group.bench_with_input(BenchmarkId::new("sim/n", SIM_SIZE), &cotree, |b, cotree| {
        b.iter(|| pram_path_cover(cotree, PramConfig::default()).cover.len())
    });
    group.finish();
}

criterion_group!(benches, bench_scan, bench_ranking, bench_euler, bench_solve);
criterion_main!(benches);
