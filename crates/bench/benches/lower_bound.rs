//! E1 — the OR reduction of Theorem 2.2.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcover::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_lower_bound");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for n in [1usize << 8, 1 << 12] {
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.2)).collect();
        group.bench_with_input(BenchmarkId::new("or_via_cover", n), &bits, |b, bits| {
            b.iter(|| or_via_path_cover(bits, min_path_cover_size))
        });
        group.bench_with_input(
            BenchmarkId::new("or_via_pram_pipeline", n),
            &bits,
            |b, bits| {
                b.iter(|| {
                    or_via_path_cover(bits, |t| {
                        pram_path_cover(t, PramConfig::default()).cover.len()
                    })
                })
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
