//! E7 — Hamiltonian path / cycle decisions.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcover::prelude::*;
use pc_bench::workloads::DEFAULT_SEED;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_hamiltonian");
    group.sample_size(10);
    for n in [1usize << 10, 1 << 14] {
        let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED);
        let cotree =
            cograph::generators::random_connected_cotree(n, cograph::CotreeShape::Mixed, &mut rng);
        group.bench_with_input(BenchmarkId::new("path_decision", n), &cotree, |b, t| {
            b.iter(|| has_hamiltonian_path(t))
        });
        group.bench_with_input(BenchmarkId::new("cycle_decision", n), &cotree, |b, t| {
            b.iter(|| has_hamiltonian_cycle(t))
        });
        group.bench_with_input(BenchmarkId::new("construct_path", n), &cotree, |b, t| {
            b.iter(|| hamiltonian_path(t))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
