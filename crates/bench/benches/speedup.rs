//! E6 — Brent speedup: simulated steps as a function of the processor count.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcover::prelude::*;
use pc_bench::workloads::{CotreeFamily, Workload, DEFAULT_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_speedup");
    group.sample_size(10);
    let n = 1usize << 10;
    let cotree = Workload::new(CotreeFamily::Balanced, n, DEFAULT_SEED).cotree();
    for p in [1usize, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::new("processors", p), &cotree, |b, t| {
            b.iter(|| {
                pram_path_cover(
                    t,
                    PramConfig {
                        processors: Some(p),
                        ..PramConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
