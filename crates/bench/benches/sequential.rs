//! E2 — wall-clock scaling of the sequential algorithm (Lemma 2.3).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcover::prelude::*;
use pc_bench::workloads::{CotreeFamily, Workload, DEFAULT_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_sequential");
    group.sample_size(10);
    for family in CotreeFamily::ALL {
        for n in [1usize << 10, 1 << 13, 1 << 16] {
            let cotree = Workload::new(family, n, DEFAULT_SEED).cotree();
            group.bench_with_input(BenchmarkId::new(family.name(), n), &cotree, |b, t| {
                b.iter(|| sequential_path_cover(t))
            });
        }
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
