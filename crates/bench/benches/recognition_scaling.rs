//! Recognition scaling: the linear-time incremental recogniser
//! (`cograph::recognition::fast`) against the textbook decomposition
//! (`cograph::recognition::reference`) at n ∈ {64, 256, 1024, 4096}.
//!
//! Workloads per size, drawn from the workspace's standard cotree shape
//! families:
//!
//! * `*/mixed_n{n}` — a random mixed-shape cotree materialised to a graph
//!   (the same family `batch_throughput` serves); both recognisers accept,
//!   measuring the full build-the-cotree path. Mixed cographs are dense
//!   (`m = Θ(n²)`), so both sides do `Ω(n²)` work and the gap is a constant
//!   factor.
//! * `*/skewed_n{n}` — the deep caterpillar family, the decomposition's
//!   worst case: it peels `O(1)` vertices per level, paying `Θ(k)`-to-
//!   `Θ(k²)` per level over `Θ(n)` levels, while the incremental recogniser
//!   stays `O(n + m)`. This is where removing the ingestion bottleneck
//!   actually shows up at scale.
//! * `*_near/n{n}` — a mixed cograph on n−4 vertices with a disjoint `P_4`
//!   appended as the last four vertices, so the incremental recogniser pays
//!   for almost the whole graph before rejecting on the tail and extracting
//!   a certificate.
//!
//! The `reference/skewed` series stops at n = 1024 inside the main group;
//! the n = 4096 point takes minutes per execution, so it lives in the
//! single-sample `recognition_scaling_worstcase` group and is skipped in
//! `--test` smoke mode (loudly, not silently).
//!
//! Recording a baseline: `CRITERION_JSON=BENCH_recognition.json cargo bench
//! -p pc-bench --bench recognition_scaling` appends one JSON line per
//! measurement. Note single-core containers in the baseline file, matching
//! the `BENCH_service.json` convention.

use cograph::recognition::{fast, reference};
use cograph::CotreeShape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcgraph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SIZES: [usize; 4] = [64, 256, 1024, 4096];

/// The decomposition's per-level cost makes skewed trees at n = 4096 a
/// minutes-long single execution; keep it out of the sampled group and out
/// of CI smoke runs.
const REFERENCE_SKEWED_CAP: usize = 1024;

fn random_cograph(n: usize, shape: CotreeShape, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    cograph::random_cotree(n, shape, &mut rng).to_graph()
}

/// A cograph on `n - 4` vertices with a disjoint `P_4` tail occupying the
/// last four ids, so rejection strikes at the very end of the insertion
/// order.
fn near_cograph(n: usize, seed: u64) -> Graph {
    assert!(n > 4);
    let base = random_cograph(n - 4, CotreeShape::Mixed, seed);
    let mut edges: Vec<(u32, u32)> = base.edges().collect();
    let t = (n - 4) as u32;
    edges.extend([(t, t + 1), (t + 1, t + 2), (t + 2, t + 3)]);
    Graph::from_edges(n, &edges).expect("tail edges are fresh")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("recognition_scaling");
    group.sample_size(10);
    for n in SIZES {
        for shape in [CotreeShape::Mixed, CotreeShape::Skewed] {
            let g = random_cograph(n, shape, n as u64);
            let label = format!("{}_n{n}", shape.name());
            group.bench_with_input(BenchmarkId::new("fast", &label), &g, |b, g| {
                b.iter(|| fast::recognize(g).expect("cograph").num_vertices())
            });
            if shape == CotreeShape::Skewed && n > REFERENCE_SKEWED_CAP {
                continue; // measured once in recognition_scaling_worstcase
            }
            group.bench_with_input(BenchmarkId::new("reference", &label), &g, |b, g| {
                b.iter(|| reference::recognize(g).expect("cograph").num_vertices())
            });
        }
        let bad = near_cograph(n, n as u64 + 1);
        group.bench_with_input(
            BenchmarkId::new("fast_near", format!("n{n}")),
            &bad,
            |b, g| {
                b.iter(|| {
                    let err = fast::recognize(g).expect_err("P4 tail");
                    matches!(err, cograph::RecognitionError::InducedP4(_))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference_near", format!("n{n}")),
            &bad,
            |b, g| b.iter(|| reference::recognize(g).is_none()),
        );
    }
    group.finish();
}

/// The headline asymptotic gap, measured rather than extrapolated: one
/// sample of the reference decomposition on the skewed family at n = 4096
/// (minutes per execution). Skipped in `--test` smoke mode.
fn bench_worstcase(c: &mut Criterion) {
    if std::env::args().any(|arg| arg == "--test") {
        println!(
            "recognition_scaling_worstcase: skipped under --test \
             (reference/skewed_n4096 takes minutes per execution)"
        );
        return;
    }
    let mut group = c.benchmark_group("recognition_scaling_worstcase");
    group.sample_size(1);
    let n = 4096usize;
    let g = random_cograph(n, CotreeShape::Skewed, n as u64);
    group.bench_with_input(
        BenchmarkId::new("reference", format!("skewed_n{n}")),
        &g,
        |b, g| b.iter(|| reference::recognize(g).expect("cograph").num_vertices()),
    );
    group.finish();
}

criterion_group!(benches, bench, bench_worstcase);
criterion_main!(benches);
