//! E4 — the full PRAM pipeline (Theorem 5.3): wall time of the simulation
//! plus the native execution of the same algorithm.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcover::prelude::*;
use pc_bench::workloads::{CotreeFamily, Workload, DEFAULT_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_optimal_cover");
    group.sample_size(10);
    for family in CotreeFamily::ALL {
        for n in [1usize << 8, 1 << 10, 1 << 12] {
            let cotree = Workload::new(family, n, DEFAULT_SEED).cotree();
            group.bench_with_input(
                BenchmarkId::new(format!("native-{}", family.name()), n),
                &cotree,
                |b, t| b.iter(|| path_cover(t)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("pram-{}", family.name()), n),
                &cotree,
                |b, t| b.iter(|| pram_path_cover(t, PramConfig::default())),
            );
        }
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
