//! E3 — path counting via tree contraction (Lemma 2.4).
use cograph::BinaryCotree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_bench::workloads::{CotreeFamily, Workload, DEFAULT_SEED};
use pram::Mode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_path_count");
    group.sample_size(10);
    for n in [1usize << 10, 1 << 12, 1 << 14] {
        let cotree = Workload::new(CotreeFamily::Mixed, n, DEFAULT_SEED).cotree();
        let (tree, l) = BinaryCotree::leftist_from_cotree(&cotree);
        group.bench_with_input(BenchmarkId::new("seq", n), &(&tree, &l), |b, (t, l)| {
            b.iter(|| cograph::path_counts_seq(t, l))
        });
        group.bench_with_input(BenchmarkId::new("pram", n), &(&tree, &l), |b, (t, l)| {
            b.iter(|| {
                let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
                cograph::path_counts_pram(&mut m, t, l)
            })
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
