//! E8 — the primitive toolbox (Lemmas 5.1 / 5.2), including the ablation of
//! work-optimal blocked scans / rankings against their textbook variants.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parprims::scan::{prefix_sums_pram, tree_scan_pram, ScanOp};
use pram::Mode;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_primitives");
    group.sample_size(10);
    for n in [1usize << 12, 1 << 14] {
        let data: Vec<i64> = (0..n as i64).collect();
        group.bench_with_input(BenchmarkId::new("scan_blocked", n), &data, |b, d| {
            b.iter(|| {
                let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
                let h = m.alloc_from(d);
                prefix_sums_pram(&mut m, h, ScanOp::Sum, 0)
            })
        });
        group.bench_with_input(BenchmarkId::new("scan_tree_ablation", n), &data, |b, d| {
            b.iter(|| {
                let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
                let h = m.alloc_from(d);
                tree_scan_pram(&mut m, h, ScanOp::Sum)
            })
        });
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(3));
        let mut succ = vec![-1i64; n];
        for w in order.windows(2) {
            succ[w[0]] = w[1] as i64;
        }
        group.bench_with_input(BenchmarkId::new("list_rank_blocked", n), &succ, |b, s| {
            b.iter(|| {
                let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
                let h = m.alloc_from(s);
                parprims::ranking::list_rank_blocked(&mut m, h, 0)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("list_rank_wyllie_ablation", n),
            &succ,
            |b, s| {
                b.iter(|| {
                    let mut m = pram::Pram::new(Mode::Erew, pram::optimal_processors(n));
                    let h = m.alloc_from(s);
                    parprims::ranking::list_rank_wyllie(&mut m, h)
                })
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
