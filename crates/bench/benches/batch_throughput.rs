//! Service-layer throughput: queries/sec through `pcservice`'s batch
//! executor at batch sizes {1, 64, 4096} and 1–8 worker threads.
//!
//! The workload models steady-state serving: a pool of 32 distinct cographs
//! (n = 64, mixed shape), queries cycling through all five kinds, and a
//! warmed cotree cache — so the numbers measure the engine (dispatch, cache,
//! solve, verify), not recognition of brand-new graphs.
//!
//! A second group, `service_cache_contention`, models the worst case for
//! the sharded cotree cache: many worker threads hammering a *tiny* pool of
//! distinct graphs, so nearly every query is a cache hit and the lock
//! traffic itself is what is measured. Each configuration runs with a
//! single-shard cache (the old design: one global mutex) and the default
//! shard count, and reports the cache hit rate observed per configuration
//! on stderr.
//!
//! Recording a baseline: `CRITERION_JSON=BENCH_service.json cargo bench
//! -p pc-bench --bench batch_throughput` appends one JSON line per
//! measurement. Single-core containers cannot show contention relief
//! (threads time-slice one core); label such runs in the baseline notes.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcservice::{EngineConfig, GraphSpec, QueryEngine, QueryKind, QueryRequest};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const POOL: usize = 32;
const GRAPH_N: usize = 64;

fn request_pool() -> Vec<GraphSpec> {
    (0..POOL)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
            let tree = cograph::random_cotree(GRAPH_N, cograph::CotreeShape::Mixed, &mut rng);
            GraphSpec::Graph(tree.to_graph())
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_batch_throughput");
    group.sample_size(10);
    let pool = request_pool();
    for batch in [1usize, 64, 4096] {
        let requests: Vec<QueryRequest> = (0..batch)
            .map(|i| {
                let kind = QueryKind::ALL[i % QueryKind::ALL.len()];
                QueryRequest::new(kind, pool[i % POOL].clone())
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let engine = QueryEngine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            engine.execute_batch(None, &requests); // warm the cotree cache
            group.bench_with_input(
                BenchmarkId::new(format!("batch{batch}"), format!("t{threads}")),
                &requests,
                |b, reqs| {
                    b.iter(|| {
                        let responses = engine.execute_batch(None, reqs);
                        assert!(responses.iter().all(|r| r.outcome.is_ok()));
                        responses.len()
                    })
                },
            );
        }
    }
    group.finish();
}

/// Cache-contention workload: few distinct graphs, every thread fighting
/// for the same cache entries.
fn bench_contention(c: &mut Criterion) {
    const HOT_POOL: usize = 4;
    const BATCH: usize = 4096;
    let mut group = c.benchmark_group("service_cache_contention");
    group.sample_size(10);
    let pool: Vec<GraphSpec> = request_pool().into_iter().take(HOT_POOL).collect();
    let requests: Vec<QueryRequest> = (0..BATCH)
        .map(|i| {
            // Scalar kinds only: the point is cache/lock traffic, not the
            // O(n) cover reconstruction.
            let kinds = [
                QueryKind::MinCoverSize,
                QueryKind::HamiltonianPath,
                QueryKind::HamiltonianCycle,
            ];
            QueryRequest::new(kinds[i % kinds.len()], pool[i % HOT_POOL].clone())
        })
        .collect();
    for threads in [1usize, 2, 4, 8] {
        for shards in [1usize, 0] {
            let engine = QueryEngine::new(EngineConfig {
                threads,
                cache_shards: shards,
                ..EngineConfig::default()
            });
            engine.execute_batch(None, &requests); // warm the cotree cache
            let shard_label = if shards == 0 {
                "shards-default"
            } else {
                "shards1"
            };
            group.bench_with_input(
                BenchmarkId::new(format!("hot{HOT_POOL}_t{threads}"), shard_label),
                &requests,
                |b, reqs| {
                    b.iter(|| {
                        let responses = engine.execute_batch(None, reqs);
                        assert!(responses.iter().all(|r| r.outcome.is_ok()));
                        responses.len()
                    })
                },
            );
            let stats = engine.cache_stats();
            let per_shard: Vec<String> = engine
                .cache_shard_stats()
                .iter()
                .map(|s| format!("{}/{}", s.hits, s.hits + s.misses))
                .collect();
            eprintln!(
                "contention t{threads} {shard_label}: hit rate {:.3} ({} shards; per-shard hits/lookups: {})",
                stats.hit_rate(),
                stats.shards,
                per_shard.join(" ")
            );
        }
    }
    group.finish();
}

/// Telemetry overhead: the same warmed batch workload with the telemetry
/// registry and the flight recorder on and off, so the cost of the
/// per-stage clock marks, histogram recording and span capture is measured
/// directly. The `on/trace-off` configuration is the contract point: it
/// must sit within noise of the pre-flight-recorder telemetry-on baseline
/// (tracing disabled attaches no span collector, so requests never touch
/// the recorder). The fully-disabled configuration skips every
/// `Instant::now` the registry would take, so the delta against it is the
/// whole observability bill.
fn bench_telemetry_overhead(c: &mut Criterion) {
    const BATCH: usize = 4096;
    let mut group = c.benchmark_group("service_telemetry_overhead");
    group.sample_size(10);
    let pool = request_pool();
    let requests: Vec<QueryRequest> = (0..BATCH)
        .map(|i| {
            let kind = QueryKind::ALL[i % QueryKind::ALL.len()];
            QueryRequest::new(kind, pool[i % POOL].clone())
        })
        .collect();
    for (label, telemetry, trace) in [
        ("on", true, pcservice::TraceConfig::default()),
        ("on-trace-off", true, pcservice::TraceConfig::off()),
        ("off", false, pcservice::TraceConfig::off()),
    ] {
        let engine = QueryEngine::new(EngineConfig {
            threads: 1,
            telemetry,
            trace,
            ..EngineConfig::default()
        });
        engine.execute_batch(None, &requests); // warm the cotree cache
        group.bench_with_input(
            BenchmarkId::new(format!("batch{BATCH}_t1"), label),
            &requests,
            |b, reqs| {
                b.iter(|| {
                    let responses = engine.execute_batch(None, reqs);
                    assert!(responses.iter().all(|r| r.outcome.is_ok()));
                    responses.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench, bench_contention, bench_telemetry_overhead);
criterion_main!(benches);
