//! Service-layer throughput: queries/sec through `pcservice`'s batch
//! executor at batch sizes {1, 64, 4096} and 1–8 worker threads.
//!
//! The workload models steady-state serving: a pool of 32 distinct cographs
//! (n = 64, mixed shape), queries cycling through all five kinds, and a
//! warmed cotree cache — so the numbers measure the engine (dispatch, cache,
//! solve, verify), not recognition of brand-new graphs.
//!
//! Recording a baseline: `CRITERION_JSON=BENCH_service.json cargo bench
//! -p pc-bench --bench batch_throughput` appends one JSON line per
//! measurement.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcservice::{EngineConfig, GraphSpec, QueryEngine, QueryKind, QueryRequest};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const POOL: usize = 32;
const GRAPH_N: usize = 64;

fn request_pool() -> Vec<GraphSpec> {
    (0..POOL)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
            let tree = cograph::random_cotree(GRAPH_N, cograph::CotreeShape::Mixed, &mut rng);
            GraphSpec::Graph(tree.to_graph())
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_batch_throughput");
    group.sample_size(10);
    let pool = request_pool();
    for batch in [1usize, 64, 4096] {
        let requests: Vec<QueryRequest> = (0..batch)
            .map(|i| {
                let kind = QueryKind::ALL[i % QueryKind::ALL.len()];
                QueryRequest::new(kind, pool[i % POOL].clone())
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let engine = QueryEngine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            engine.execute_batch(None, &requests); // warm the cotree cache
            group.bench_with_input(
                BenchmarkId::new(format!("batch{batch}"), format!("t{threads}")),
                &requests,
                |b, reqs| {
                    b.iter(|| {
                        let responses = engine.execute_batch(None, reqs);
                        assert!(responses.iter().all(|r| r.outcome.is_ok()));
                        responses.len()
                    })
                },
            );
        }
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
