//! # parpool — a round-synchronous work-stealing thread pool
//!
//! The PRAM kernels in `parprims` execute as a sequence of *rounds*: every
//! round applies the same body to `0..m` items, all reads observe the memory
//! state from before the round, and all writes become visible together when
//! the round ends. The simulator backend realises those semantics one item at
//! a time; this crate realises them across real cores.
//!
//! A [`Pool`] owns `threads - 1` persistent worker threads (the caller's
//! thread acts as worker 0). [`Pool::round`] splits the item range into
//! contiguous chunks, deals them into per-worker deques, and lets every
//! participant drain its own deque from the front while stealing from the
//! back of other deques when idle. Two reusable barriers separate the round
//! into a *compute* phase and a *finish* phase: the finish callback runs once
//! per participant after all compute chunks are done, which is where the
//! caller commits its buffered writes (the double-buffering that preserves
//! read-before-write semantics lives in the caller; the pool only guarantees
//! the phase ordering).
//!
//! Design constraints inherited from the workspace:
//!
//! * **No dependencies, no unsafe.** Everything is `std`: mutexes, condvars,
//!   atomics, `catch_unwind`.
//! * **Panic propagation.** A panicking chunk poisons the round but every
//!   participant still reaches both barriers, so the pool never deadlocks;
//!   the first payload is re-raised on the calling thread by
//!   [`Pool::round`], and the pool remains usable afterwards.
//! * **Observability.** The pool counts rounds, executed chunks and steals,
//!   and buckets barrier-wait times into a power-of-two-microsecond
//!   histogram; [`Pool::stats`] exposes them for the service telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Number of chunks each worker's share of a round is split into, so that
/// stealing has something to take without making chunks too fine.
const CHUNKS_PER_WORKER: usize = 8;

/// Smallest chunk worth dispatching; below this the per-chunk bookkeeping
/// dominates the body.
const MIN_CHUNK: usize = 256;

/// Number of power-of-two buckets in the barrier-wait histogram
/// (bucket `i` counts waits in `[2^(i-1), 2^i)` microseconds).
const WAIT_BUCKETS: usize = 32;

type Body = Arc<dyn Fn(usize, Range<usize>) + Send + Sync>;
type Finish = Arc<dyn Fn(usize) + Send + Sync>;

/// The job published to workers for one round.
#[derive(Clone)]
struct Job {
    body: Body,
    finish: Finish,
}

/// Epoch-stamped job slot workers sleep on between rounds.
struct Coord {
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

/// Reusable generation-counting barrier state.
struct BarrierState {
    arrived: usize,
    generation: u64,
}

struct Shared {
    threads: usize,
    coord: Mutex<Coord>,
    work_cv: Condvar,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    queues: Vec<Mutex<VecDeque<Range<usize>>>>,
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    rounds: AtomicU64,
    chunks: AtomicU64,
    steals: AtomicU64,
    wait_count: AtomicU64,
    wait_total_us: AtomicU64,
    wait_buckets: Vec<AtomicU64>,
}

impl Shared {
    fn new(threads: usize) -> Self {
        Shared {
            threads,
            coord: Mutex::new(Coord {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            barrier: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            barrier_cv: Condvar::new(),
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            rounds: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            wait_count: AtomicU64::new(0),
            wait_total_us: AtomicU64::new(0),
            wait_buckets: (0..WAIT_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Pops the next chunk: own deque from the front, then a steal from the
    /// back of the fullest-looking victim.
    fn next_chunk(&self, me: usize) -> Option<Range<usize>> {
        if let Some(chunk) = self.lock(&self.queues[me]).pop_front() {
            return Some(chunk);
        }
        for offset in 1..self.threads {
            let victim = (me + offset) % self.threads;
            if let Some(chunk) = self.lock(&self.queues[victim]).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(chunk);
            }
        }
        None
    }

    /// Runs the compute phase for one participant: drain and steal chunks,
    /// capturing any panic so the barrier is always reached.
    fn work(&self, me: usize, body: &Body) {
        while let Some(chunk) = self.next_chunk(me) {
            if self.poisoned.load(Ordering::Relaxed) {
                continue; // drain the queues but stop doing work
            }
            self.chunks.fetch_add(1, Ordering::Relaxed);
            let result = catch_unwind(AssertUnwindSafe(|| body(me, chunk)));
            if let Err(payload) = result {
                self.record_panic(payload);
            }
        }
    }

    /// Runs the finish phase for one participant (skipped when poisoned).
    fn finish(&self, me: usize, finish: &Finish) {
        if self.poisoned.load(Ordering::Relaxed) {
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| finish(me))) {
            self.record_panic(payload);
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.poisoned.store(true, Ordering::Relaxed);
        let mut slot = self.lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Generation-based reusable barrier across all `threads` participants;
    /// the wait time of every participant feeds the histogram.
    fn barrier_wait(&self) {
        let start = Instant::now();
        let mut state = self.lock(&self.barrier);
        state.arrived += 1;
        if state.arrived == self.threads {
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            self.barrier_cv.notify_all();
        } else {
            let generation = state.generation;
            while state.generation == generation {
                state = self
                    .barrier_cv
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        drop(state);
        self.record_wait(start.elapsed().as_micros() as u64);
    }

    fn record_wait(&self, micros: u64) {
        let bucket = if micros == 0 {
            0
        } else {
            ((64 - micros.leading_zeros()) as usize).min(WAIT_BUCKETS - 1)
        };
        self.wait_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.wait_count.fetch_add(1, Ordering::Relaxed);
        self.wait_total_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Locks a mutex, ignoring poisoning: every critical section here leaves
    /// plain-old-data in a consistent state even when a holder panicked.
    fn lock<'a, T>(&self, mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// One full round as seen by a participant thread.
    fn participate(&self, me: usize, job: &Job) {
        self.work(me, &job.body);
        self.barrier_wait();
        self.finish(me, &job.finish);
        self.barrier_wait();
    }

    fn worker_loop(&self, me: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut coord = self.lock(&self.coord);
                loop {
                    if coord.shutdown {
                        return;
                    }
                    if coord.epoch != seen {
                        seen = coord.epoch;
                        break coord.job.clone().expect("epoch bumped without a job");
                    }
                    coord = self
                        .work_cv
                        .wait(coord)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            self.participate(me, &job);
        }
    }
}

/// Cumulative pool counters, plus barrier-wait quantiles derived from the
/// internal power-of-two-microsecond histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of participating threads (workers plus the calling thread).
    pub workers: usize,
    /// Rounds executed since the pool was created.
    pub rounds: u64,
    /// Chunks executed across all rounds.
    pub chunks: u64,
    /// Chunks taken from another worker's deque.
    pub steals: u64,
    /// Barrier waits recorded (two per participant per round).
    pub barrier_waits: u64,
    /// Median barrier wait, as the upper bound of its histogram bucket.
    pub barrier_wait_p50_micros: u64,
    /// 99th-percentile barrier wait, as the upper bound of its bucket.
    pub barrier_wait_p99_micros: u64,
}

/// Cap on buffered [`RoundRecord`]s while recording is enabled; one solve
/// of the PRAM path-cover kernel runs O(log n) rounds, so 256 covers any
/// realistic solve with room to spare while bounding memory if a caller
/// forgets to drain.
pub const MAX_ROUND_RECORDS: usize = 256;

/// Observability record of one [`Pool::round`], captured on the calling
/// thread when recording is enabled (see [`Pool::enable_round_records`]).
///
/// `steals` and `barrier_wait_us` are deltas of the pool's cumulative
/// counters across the round. Workers record their barrier waits *after*
/// the barrier releases them, so a record read immediately at round end
/// may attribute a late-arriving wait to the next round — the totals stay
/// exact, per-round attribution is approximate by one wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// Lifetime round index of the pool (0-based).
    pub round: u64,
    /// Start offset of this round, microseconds since recording was
    /// enabled.
    pub start_us: u64,
    /// Wall-clock duration of the round as seen by the calling thread.
    pub dur_us: u64,
    /// Chunks executed during this round.
    pub chunks: u64,
    /// Chunks stolen between workers during this round.
    pub steals: u64,
    /// Total microseconds participants spent in barrier waits this round.
    pub barrier_wait_us: u64,
}

/// Recording state between [`Pool::enable_round_records`] and
/// [`Pool::take_round_records`].
struct RoundRecording {
    epoch: Instant,
    records: Vec<RoundRecord>,
}

/// Pre-round counter snapshot, diffed into a [`RoundRecord`] at round end.
struct RoundObservation {
    start_us: u64,
    started: Instant,
    chunks: u64,
    steals: u64,
    wait_us: u64,
}

/// A round-synchronous work-stealing pool; see the crate docs for the
/// execution model.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    recording: Option<RoundRecording>,
}

impl Pool {
    /// Creates a pool with `threads` participants. The calling thread is one
    /// of them, so `threads - 1` OS threads are spawned; `threads` below 1 is
    /// clamped to 1, which makes every round run inline with no
    /// synchronisation at all.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::new(threads));
        let workers = (1..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parpool-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            recording: None,
        }
    }

    /// Number of participating threads (including the caller).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Starts buffering one [`RoundRecord`] per subsequent [`Pool::round`]
    /// (capped at [`MAX_ROUND_RECORDS`]), with offsets measured from this
    /// call. Re-enabling resets the buffer and the epoch. Recording costs
    /// two `Instant::now()` reads and four relaxed loads per round on the
    /// calling thread — nothing on the workers — and is entirely off when
    /// not enabled.
    pub fn enable_round_records(&mut self) {
        self.recording = Some(RoundRecording {
            epoch: Instant::now(),
            records: Vec::new(),
        });
    }

    /// Stops recording and drains the buffered records (empty when
    /// recording was never enabled).
    pub fn take_round_records(&mut self) -> Vec<RoundRecord> {
        self.recording
            .take()
            .map(|recording| recording.records)
            .unwrap_or_default()
    }

    /// Runs one round: `body(worker, chunk)` over disjoint chunks covering
    /// `0..items`, a barrier, then `finish(worker)` once per participant,
    /// then a final barrier. Returns after the finish phase is globally done.
    ///
    /// # Panics
    /// Re-raises the first panic captured from `body` or `finish` on the
    /// calling thread. The pool itself stays consistent and reusable.
    pub fn round<B, F>(&mut self, items: usize, body: B, finish: F)
    where
        B: Fn(usize, Range<usize>) + Send + Sync + 'static,
        F: Fn(usize) + Send + Sync + 'static,
    {
        let observe = self.observe_round();
        let shared = &self.shared;
        shared.poisoned.store(false, Ordering::Relaxed);
        *shared.lock(&shared.panic) = None;

        if self.workers.is_empty() {
            // Single-threaded fast path: no publication, no barriers.
            if items > 0 {
                shared.chunks.fetch_add(1, Ordering::Relaxed);
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                if items > 0 {
                    body(0, 0..items);
                }
                finish(0);
            }));
            let round = shared.rounds.fetch_add(1, Ordering::Relaxed);
            self.commit_round_record(observe, round);
            if let Err(payload) = result {
                resume_unwind(payload);
            }
            return;
        }

        self.deal_chunks(items);
        let job = Job {
            body: Arc::new(body),
            finish: Arc::new(finish),
        };
        {
            let mut coord = shared.lock(&shared.coord);
            coord.epoch = coord.epoch.wrapping_add(1);
            coord.job = Some(job.clone());
            shared.work_cv.notify_all();
        }
        shared.participate(0, &job);
        let round = shared.rounds.fetch_add(1, Ordering::Relaxed);
        shared.lock(&shared.coord).job = None;
        let payload = shared.lock(&shared.panic).take();
        self.commit_round_record(observe, round);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Snapshots the cumulative counters before a round begins, when
    /// recording is enabled.
    fn observe_round(&self) -> Option<RoundObservation> {
        let recording = self.recording.as_ref()?;
        if recording.records.len() >= MAX_ROUND_RECORDS {
            return None;
        }
        Some(RoundObservation {
            start_us: recording.epoch.elapsed().as_micros() as u64,
            started: Instant::now(),
            chunks: self.shared.chunks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            wait_us: self.shared.wait_total_us.load(Ordering::Relaxed),
        })
    }

    /// Turns a pre-round snapshot into a buffered [`RoundRecord`] after the
    /// round completed (panicking rounds included — those are exactly the
    /// ones worth seeing in a trace).
    fn commit_round_record(&mut self, observe: Option<RoundObservation>, round: u64) {
        let Some(observe) = observe else { return };
        let shared = &self.shared;
        let record = RoundRecord {
            round,
            start_us: observe.start_us,
            dur_us: observe.started.elapsed().as_micros() as u64,
            chunks: shared
                .chunks
                .load(Ordering::Relaxed)
                .saturating_sub(observe.chunks),
            steals: shared
                .steals
                .load(Ordering::Relaxed)
                .saturating_sub(observe.steals),
            barrier_wait_us: shared
                .wait_total_us
                .load(Ordering::Relaxed)
                .saturating_sub(observe.wait_us),
        };
        if let Some(recording) = self.recording.as_mut() {
            recording.records.push(record);
        }
    }

    /// Splits `0..items` into contiguous per-worker shares, each share into
    /// [`CHUNKS_PER_WORKER`] chunks of at least [`MIN_CHUNK`] items.
    fn deal_chunks(&self, items: usize) {
        let threads = self.shared.threads;
        let chunk = (items.div_ceil(threads * CHUNKS_PER_WORKER)).max(MIN_CHUNK);
        let share = items.div_ceil(threads);
        for (me, queue) in self.shared.queues.iter().enumerate() {
            let lo = (me * share).min(items);
            let hi = ((me + 1) * share).min(items);
            let mut queue = self.shared.lock(queue);
            debug_assert!(queue.is_empty(), "deque not drained by previous round");
            let mut start = lo;
            while start < hi {
                let end = (start + chunk).min(hi);
                queue.push_back(start..end);
                start = end;
            }
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        let shared = &self.shared;
        let counts: Vec<u64> = shared
            .wait_buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((total as f64) * q).ceil() as u64;
            let mut seen = 0u64;
            for (i, &count) in counts.iter().enumerate() {
                seen += count;
                if seen >= rank {
                    // Bucket i covers [2^(i-1), 2^i) microseconds.
                    return if i == 0 { 1 } else { 1u64 << i };
                }
            }
            1u64 << (WAIT_BUCKETS - 1)
        };
        PoolStats {
            workers: shared.threads,
            rounds: shared.rounds.load(Ordering::Relaxed),
            chunks: shared.chunks.load(Ordering::Relaxed),
            steals: shared.steals.load(Ordering::Relaxed),
            barrier_waits: shared.wait_count.load(Ordering::Relaxed),
            barrier_wait_p50_micros: quantile(0.50),
            barrier_wait_p99_micros: quantile(0.99),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut coord = self.shared.lock(&self.shared.coord);
            coord.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Resolves a requested thread count: `None` or `Some(0)` means "use
/// [`std::thread::available_parallelism`]", clamped to `1..=64` so a typo or
/// an exotic machine cannot oversubscribe the round barrier into oblivion.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    let resolved = match requested {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    resolved.clamp(1, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    fn sum_round(pool: &mut Pool, n: usize) -> i64 {
        let acc = Arc::new(AtomicI64::new(0));
        let body_acc = Arc::clone(&acc);
        pool.round(
            n,
            move |_, range| {
                let local: i64 = range.map(|i| i as i64).sum();
                body_acc.fetch_add(local, Ordering::Relaxed);
            },
            |_| {},
        );
        acc.load(Ordering::Relaxed)
    }

    #[test]
    fn single_thread_round_covers_all_items() {
        let mut pool = Pool::new(1);
        assert_eq!(sum_round(&mut pool, 10_000), (0..10_000i64).sum());
        assert_eq!(pool.stats().rounds, 1);
    }

    #[test]
    fn multi_thread_round_covers_all_items_exactly_once() {
        let mut pool = Pool::new(4);
        for _ in 0..10 {
            let n = 100_000;
            let hits: Arc<Vec<AtomicI64>> = Arc::new((0..n).map(|_| AtomicI64::new(0)).collect());
            let body_hits = Arc::clone(&hits);
            pool.round(
                n,
                move |_, range| {
                    for i in range {
                        body_hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                },
                |_| {},
            );
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        assert_eq!(pool.stats().rounds, 10);
    }

    #[test]
    fn finish_runs_after_all_compute() {
        // The finish phase must observe every compute write: compute bumps a
        // counter, finish (on one designated worker) snapshots it.
        let mut pool = Pool::new(4);
        let count = Arc::new(AtomicI64::new(0));
        let seen = Arc::new(AtomicI64::new(-1));
        let body_count = Arc::clone(&count);
        let fin_count = Arc::clone(&count);
        let fin_seen = Arc::clone(&seen);
        let n = 50_000;
        pool.round(
            n,
            move |_, range| {
                for _ in range {
                    body_count.fetch_add(1, Ordering::Relaxed);
                }
            },
            move |me| {
                if me == 0 {
                    fin_seen.store(fin_count.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), n as i64);
    }

    #[test]
    fn uneven_work_triggers_steals() {
        let mut pool = Pool::new(4);
        // Worker 0 owns the expensive low indices; everyone else finishes
        // fast and must steal to keep busy.
        for _ in 0..20 {
            pool.round(
                100_000,
                |_, range| {
                    for i in range {
                        if i < 25_000 {
                            std::hint::black_box((0..200).sum::<u64>());
                        }
                    }
                },
                |_| {},
            );
        }
        // Stealing is probabilistic scheduling, but 20 skewed rounds on 4
        // threads virtually always produce at least one steal.
        assert!(pool.stats().steals > 0, "stats: {:?}", pool.stats());
    }

    #[test]
    fn panic_in_body_propagates_and_pool_survives() {
        let mut pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.round(
                10_000,
                |_, range| {
                    for i in range {
                        assert!(i != 7_777, "injected failure");
                    }
                },
                |_| {},
            );
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The barrier must not be wedged: the pool still runs rounds.
        assert_eq!(sum_round(&mut pool, 1_000), (0..1_000i64).sum());
    }

    #[test]
    fn panic_in_finish_propagates() {
        let mut pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.round(100, |_, _| {}, |_| panic!("finish failure"));
        }));
        assert!(result.is_err());
        assert_eq!(sum_round(&mut pool, 100), (0..100i64).sum());
    }

    #[test]
    fn zero_items_still_runs_finish() {
        let mut pool = Pool::new(2);
        let ran = Arc::new(AtomicI64::new(0));
        let fin = Arc::clone(&ran);
        pool.round(
            0,
            |_, _| {},
            move |_| {
                fin.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(
            ran.load(Ordering::Relaxed),
            2,
            "finish runs per participant"
        );
    }

    #[test]
    fn round_records_capture_each_round_when_enabled() {
        let mut pool = Pool::new(2);
        // Nothing is buffered before recording is enabled.
        sum_round(&mut pool, 10_000);
        assert!(pool.take_round_records().is_empty());

        pool.enable_round_records();
        sum_round(&mut pool, 10_000);
        sum_round(&mut pool, 10_000);
        let records = pool.take_round_records();
        assert_eq!(records.len(), 2);
        // Round indices are the pool's lifetime indices, consecutive here.
        assert_eq!(records[1].round, records[0].round + 1);
        assert!(records[0].chunks > 0, "records: {records:?}");
        assert!(
            records[0].start_us <= records[1].start_us,
            "offsets are monotone from the recording epoch"
        );
        // Draining disables recording again.
        sum_round(&mut pool, 1_000);
        assert!(pool.take_round_records().is_empty());
    }

    #[test]
    fn round_record_buffer_is_capped() {
        let mut pool = Pool::new(1);
        pool.enable_round_records();
        for _ in 0..(MAX_ROUND_RECORDS + 10) {
            sum_round(&mut pool, 16);
        }
        assert_eq!(pool.take_round_records().len(), MAX_ROUND_RECORDS);
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(1_000)), 64);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn stats_track_waits() {
        let mut pool = Pool::new(2);
        sum_round(&mut pool, 10_000);
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        // Two barriers per participant per round — but a worker records its
        // wait *after* the barrier releases, so it can lag behind this
        // thread's return from round(); poll briefly instead of asserting a
        // racy instantaneous value.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let waits = loop {
            let waits = pool.stats().barrier_waits;
            if waits == 4 || std::time::Instant::now() > deadline {
                break waits;
            }
            std::thread::yield_now();
        };
        assert_eq!(waits, 4);
        let stats = pool.stats();
        assert!(stats.barrier_wait_p50_micros <= stats.barrier_wait_p99_micros);
    }
}
