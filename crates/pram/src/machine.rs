//! The simulated machine: shared memory, synchronous steps, conflict checks.

use crate::handle::ArrayHandle;
use crate::metrics::{Metrics, Violation, ViolationKind};
use crate::mode::{Mode, WritePolicy};

/// Word type of the simulated shared memory.
///
/// PRAM algorithms in the literature operate on machine words; every quantity
/// the path-cover pipeline stores (indices, counters, labels, encoded
/// brackets) fits comfortably in a signed 64-bit word.
pub type Word = i64;

/// Builder for a [`Pram`], allowing the rarely-changed knobs to be set
/// explicitly.
#[derive(Debug, Clone)]
pub struct PramBuilder {
    mode: Mode,
    processors: usize,
    strict: bool,
}

impl PramBuilder {
    /// Starts a builder for the given model variant and physical processor
    /// count.
    pub fn new(mode: Mode, processors: usize) -> Self {
        PramBuilder {
            mode,
            processors: processors.max(1),
            strict: false,
        }
    }

    /// In strict mode an access-discipline violation panics instead of being
    /// recorded. The test suite uses this to prove algorithms are EREW-clean.
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Pram {
        Pram {
            mode: self.mode,
            processors: self.processors,
            strict: self.strict,
            memory: Vec::new(),
            arrays: 0,
            metrics: Metrics::default(),
            scratch_reads: Vec::new(),
            scratch_writes: Vec::new(),
        }
    }
}

/// One buffered write: (absolute address, value, virtual processor id).
#[derive(Debug, Clone, Copy)]
struct WriteOp {
    addr: usize,
    value: Word,
    proc: usize,
}

/// One logged read: (absolute address, virtual processor id).
#[derive(Debug, Clone, Copy)]
struct ReadOp {
    addr: usize,
    proc: usize,
}

/// The simulated machine. See the crate-level documentation for the model.
#[derive(Debug)]
pub struct Pram {
    mode: Mode,
    processors: usize,
    strict: bool,
    memory: Vec<Word>,
    arrays: u32,
    metrics: Metrics,
    // Reused between steps to avoid reallocating the logs on every call.
    scratch_reads: Vec<ReadOp>,
    scratch_writes: Vec<WriteOp>,
}

impl Pram {
    /// Creates a machine with default (permissive) violation handling.
    pub fn new(mode: Mode, processors: usize) -> Self {
        PramBuilder::new(mode, processors).build()
    }

    /// Creates a machine that panics on the first access violation.
    pub fn strict(mode: Mode, processors: usize) -> Self {
        PramBuilder::new(mode, processors).strict(true).build()
    }

    /// The simulated model variant.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The physical processor count used for Brent scheduling.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Accumulated counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the machine and returns its counters.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Records a named phase boundary; [`Metrics::phase_report`] later splits
    /// the step/work counters at these marks.
    pub fn phase(&mut self, name: &str) {
        self.metrics
            .phase_marks
            .push((name.to_string(), self.metrics.steps, self.metrics.work));
    }

    /// Allocates a zero-initialised region of `len` cells.
    ///
    /// Allocation is host-side bookkeeping (building the input/output layout)
    /// and is not charged as PRAM time.
    pub fn alloc(&mut self, len: usize) -> ArrayHandle {
        let offset = self.memory.len();
        self.memory.resize(offset + len, 0);
        let id = self.arrays;
        self.arrays += 1;
        self.metrics.cells_allocated = self.memory.len();
        self.metrics.peak_cells = self.metrics.peak_cells.max(self.memory.len());
        ArrayHandle { id, offset, len }
    }

    /// Allocates a region initialised with `data` (host-side input loading).
    pub fn alloc_from(&mut self, data: &[Word]) -> ArrayHandle {
        let h = self.alloc(data.len());
        self.memory[h.offset..h.offset + data.len()].copy_from_slice(data);
        h
    }

    /// Allocates a region initialised from any iterator of words.
    pub fn alloc_from_iter<I: IntoIterator<Item = Word>>(&mut self, iter: I) -> ArrayHandle {
        let data: Vec<Word> = iter.into_iter().collect();
        self.alloc_from(&data)
    }

    /// Host-side readback of a whole region (free; used to extract results).
    pub fn snapshot(&self, h: ArrayHandle) -> Vec<Word> {
        self.memory[h.offset..h.offset + h.len].to_vec()
    }

    /// Host-side readback of a single cell (free; used to extract results).
    pub fn peek(&self, h: ArrayHandle, idx: usize) -> Word {
        self.memory[h.address(idx)]
    }

    /// Host-side write of a single cell (free; used to load inputs).
    pub fn poke(&mut self, h: ArrayHandle, idx: usize, value: Word) {
        let addr = h.address(idx);
        self.memory[addr] = value;
    }

    /// Executes one synchronous PRAM instruction on `m` virtual processors.
    ///
    /// The closure is invoked once per virtual processor with a [`ProcCtx`]
    /// through which all shared-memory accesses must go. Reads observe the
    /// memory contents from before the step; writes are committed after every
    /// virtual processor has run. Time charged: `ceil(m / p) * c`, work
    /// charged: `m * c`, where `c` is the maximum number of accesses (plus
    /// explicit [`ProcCtx::charge`]s) any single virtual processor performed,
    /// never less than one.
    pub fn parallel_for<F>(&mut self, m: usize, mut body: F)
    where
        F: FnMut(&mut ProcCtx<'_>, usize),
    {
        if m == 0 {
            return;
        }
        let mut reads = std::mem::take(&mut self.scratch_reads);
        let mut writes = std::mem::take(&mut self.scratch_writes);
        reads.clear();
        writes.clear();

        let mut max_ops: u64 = 1;
        let mut total_ops: u64 = 0;
        for proc in 0..m {
            let mut ctx = ProcCtx {
                memory: &self.memory,
                reads: &mut reads,
                writes: &mut writes,
                proc,
                ops: 0,
            };
            body(&mut ctx, proc);
            let ops = ctx.ops.max(1);
            max_ops = max_ops.max(ops);
            total_ops += ops;
        }

        // Accounting: time follows Brent's principle (the slowest virtual
        // processor bounds every round), work counts the instructions that
        // were actually executed.
        let rounds = (m as u64).div_ceil(self.processors as u64);
        self.metrics.steps += rounds * max_ops;
        self.metrics.work += total_ops;
        self.metrics.instructions += 1;
        self.metrics.reads += reads.len() as u64;
        self.metrics.writes += writes.len() as u64;

        // Conflict detection.
        let step_index = self.metrics.instructions - 1;
        self.detect_conflicts(step_index, &mut reads, &mut writes);

        // Commit writes. For exclusive-write models every address appears at
        // most once (otherwise a violation was recorded and the first write
        // in processor order wins deterministically). For CRCW the policy
        // decides.
        writes.sort_by_key(|w| (w.addr, w.proc));
        let mut i = 0;
        while i < writes.len() {
            let mut j = i + 1;
            while j < writes.len() && writes[j].addr == writes[i].addr {
                j += 1;
            }
            let winner = match self.mode {
                Mode::Crcw(WritePolicy::Arbitrary) => writes[j - 1],
                // Priority: the lowest-numbered processor wins. Exclusive
                // write models also take the first in processor order, which
                // only matters after a violation was already flagged.
                _ => writes[i],
            };
            self.memory[winner.addr] = winner.value;
            i = j;
        }

        self.scratch_reads = reads;
        self.scratch_writes = writes;
    }

    fn detect_conflicts(&mut self, step_index: u64, reads: &mut [ReadOp], writes: &mut [WriteOp]) {
        let mut violations: Vec<Violation> = Vec::new();

        // Write/write conflicts.
        writes.sort_by_key(|w| (w.addr, w.proc));
        for pair in writes.windows(2) {
            if pair[0].addr == pair[1].addr && pair[0].proc != pair[1].proc {
                match self.mode {
                    Mode::Erew | Mode::Crew => violations.push(Violation {
                        kind: ViolationKind::ConcurrentWrite,
                        step_index,
                        address: pair[0].addr,
                        processors: (pair[0].proc, pair[1].proc),
                    }),
                    Mode::Crcw(WritePolicy::Common) => {
                        if pair[0].value != pair[1].value {
                            violations.push(Violation {
                                kind: ViolationKind::CommonValueMismatch,
                                step_index,
                                address: pair[0].addr,
                                processors: (pair[0].proc, pair[1].proc),
                            });
                        }
                    }
                    Mode::Crcw(_) => {}
                }
            }
        }

        // Read/read conflicts (EREW only).
        if !self.mode.allows_concurrent_reads() {
            reads.sort_by_key(|r| (r.addr, r.proc));
            for pair in reads.windows(2) {
                if pair[0].addr == pair[1].addr && pair[0].proc != pair[1].proc {
                    violations.push(Violation {
                        kind: ViolationKind::ConcurrentRead,
                        step_index,
                        address: pair[0].addr,
                        processors: (pair[0].proc, pair[1].proc),
                    });
                }
            }
            // Read/write clashes between distinct processors (EREW only):
            // JaJa's formulation forbids any simultaneous access to a cell.
            let mut wi = 0usize;
            for r in reads.iter() {
                while wi < writes.len() && writes[wi].addr < r.addr {
                    wi += 1;
                }
                let mut k = wi;
                while k < writes.len() && writes[k].addr == r.addr {
                    if writes[k].proc != r.proc {
                        violations.push(Violation {
                            kind: ViolationKind::ReadWriteClash,
                            step_index,
                            address: r.addr,
                            processors: (r.proc, writes[k].proc),
                        });
                        break;
                    }
                    k += 1;
                }
            }
        }

        if self.strict {
            if let Some(v) = violations.first() {
                panic!(
                    "PRAM access violation in {} mode at instruction {}: {:?} at address {} by processors {:?}",
                    self.mode, v.step_index, v.kind, v.address, v.processors
                );
            }
        }
        // Cap the retained violations so a massively faulty run does not
        // exhaust memory; the count is what the experiments report.
        const KEEP: usize = 1024;
        for v in violations {
            if self.metrics.violations.len() < KEEP {
                self.metrics.violations.push(v);
            }
        }
    }
}

/// Per-virtual-processor access context handed to the body of
/// [`Pram::parallel_for`].
#[derive(Debug)]
pub struct ProcCtx<'a> {
    memory: &'a [Word],
    reads: &'a mut Vec<ReadOp>,
    writes: &'a mut Vec<WriteOp>,
    proc: usize,
    ops: u64,
}

impl ProcCtx<'_> {
    /// The virtual processor index (`0..m`).
    pub fn processor(&self) -> usize {
        self.proc
    }

    /// Reads one cell; observes the pre-step snapshot.
    pub fn read(&mut self, h: ArrayHandle, idx: usize) -> Word {
        let addr = h.address(idx);
        self.reads.push(ReadOp {
            addr,
            proc: self.proc,
        });
        self.ops += 1;
        self.memory[addr]
    }

    /// Buffers a write to one cell; committed when the step ends.
    pub fn write(&mut self, h: ArrayHandle, idx: usize, value: Word) {
        let addr = h.address(idx);
        self.writes.push(WriteOp {
            addr,
            value,
            proc: self.proc,
        });
        self.ops += 1;
    }

    /// Charges `ops` extra units of local computation to this processor for
    /// honest accounting of non-trivial constant factors.
    pub fn charge(&mut self, ops: u64) {
        self.ops += ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_step() {
        let mut pram = Pram::new(Mode::Erew, 4);
        let xs = pram.alloc_from(&[1, 2, 3, 4]);
        let ys = pram.alloc(4);
        pram.parallel_for(4, |ctx, i| {
            let v = ctx.read(xs, i);
            ctx.write(ys, i, v * 10);
        });
        assert_eq!(pram.snapshot(ys), vec![10, 20, 30, 40]);
        assert_eq!(pram.metrics().instructions, 1);
        assert_eq!(pram.metrics().reads, 4);
        assert_eq!(pram.metrics().writes, 4);
        // 4 virtual on 4 physical, 2 accesses each -> 2 steps, 8 work.
        assert_eq!(pram.metrics().steps, 2);
        assert_eq!(pram.metrics().work, 8);
        assert!(pram.metrics().is_clean());
    }

    #[test]
    fn reads_see_pre_step_values() {
        // Classic synchronous swap: every processor reads its neighbour's
        // value and writes it to its own slot; the result must be the
        // pre-step values, not a sequential in-place propagation.
        let mut pram = Pram::new(Mode::Erew, 8);
        let xs = pram.alloc_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
        pram.parallel_for(8, |ctx, i| {
            let v = ctx.read(xs, (i + 1) % 8);
            ctx.write(xs, i, v);
        });
        assert_eq!(pram.snapshot(xs), vec![2, 3, 4, 5, 6, 7, 8, 1]);
        // Shift is EREW-clean: every cell is read once and written once, by
        // different processors but in different phases... no wait: cell i+1 is
        // read by processor i and written by processor i+1 -> a read/write
        // clash under the strict JaJa EREW rule.
        assert!(!pram.metrics().is_clean());
        assert!(pram
            .metrics()
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::ReadWriteClash));
    }

    #[test]
    fn brent_scheduling_charges_rounds() {
        let mut pram = Pram::new(Mode::Erew, 2);
        let xs = pram.alloc(10);
        pram.parallel_for(10, |ctx, i| {
            ctx.write(xs, i, i as Word);
        });
        // 10 virtual processors on 2 physical: 5 rounds, 1 access each.
        assert_eq!(pram.metrics().steps, 5);
        assert_eq!(pram.metrics().work, 10);
    }

    #[test]
    fn max_ops_scales_charge() {
        let mut pram = Pram::new(Mode::Erew, 4);
        let xs = pram.alloc(4);
        pram.parallel_for(4, |ctx, i| {
            // Processor 3 performs 3 accesses; the whole step is charged for
            // the slowest processor.
            ctx.write(xs, i, 1);
            if i == 3 {
                ctx.charge(2);
            }
        });
        assert_eq!(pram.metrics().steps, 3);
        assert_eq!(pram.metrics().work, 6);
    }

    #[test]
    fn erew_detects_concurrent_reads() {
        let mut pram = Pram::new(Mode::Erew, 4);
        let xs = pram.alloc_from(&[7]);
        let ys = pram.alloc(4);
        pram.parallel_for(4, |ctx, i| {
            let v = ctx.read(xs, 0);
            ctx.write(ys, i, v);
        });
        assert!(!pram.metrics().is_clean());
        assert!(pram
            .metrics()
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::ConcurrentRead));
    }

    #[test]
    fn crew_allows_concurrent_reads_but_not_writes() {
        let mut pram = Pram::new(Mode::Crew, 4);
        let xs = pram.alloc_from(&[7]);
        let ys = pram.alloc(4);
        pram.parallel_for(4, |ctx, i| {
            let v = ctx.read(xs, 0);
            ctx.write(ys, i, v);
        });
        assert!(pram.metrics().is_clean());

        let zs = pram.alloc(1);
        pram.parallel_for(4, |ctx, i| {
            ctx.write(zs, 0, i as Word);
        });
        assert!(!pram.metrics().is_clean());
        assert!(pram
            .metrics()
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::ConcurrentWrite));
    }

    #[test]
    fn crcw_common_checks_values() {
        let mut pram = Pram::new(Mode::Crcw(WritePolicy::Common), 4);
        let xs = pram.alloc(1);
        pram.parallel_for(4, |ctx, _| {
            ctx.write(xs, 0, 1);
        });
        assert!(pram.metrics().is_clean());
        pram.parallel_for(4, |ctx, i| {
            ctx.write(xs, 0, i as Word);
        });
        assert!(!pram.metrics().is_clean());
    }

    #[test]
    fn crcw_priority_lowest_processor_wins() {
        let mut pram = Pram::new(Mode::Crcw(WritePolicy::Priority), 4);
        let xs = pram.alloc(1);
        pram.parallel_for(4, |ctx, i| {
            ctx.write(xs, 0, (i + 10) as Word);
        });
        assert_eq!(pram.peek(xs, 0), 10);
        assert!(pram.metrics().is_clean());
    }

    #[test]
    fn crcw_arbitrary_is_deterministic() {
        let run = || {
            let mut pram = Pram::new(Mode::Crcw(WritePolicy::Arbitrary), 4);
            let xs = pram.alloc(1);
            pram.parallel_for(4, |ctx, i| {
                ctx.write(xs, 0, i as Word);
            });
            pram.peek(xs, 0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "PRAM access violation")]
    fn strict_mode_panics_on_violation() {
        let mut pram = Pram::strict(Mode::Erew, 4);
        let xs = pram.alloc_from(&[7]);
        let ys = pram.alloc(4);
        pram.parallel_for(4, |ctx, i| {
            let v = ctx.read(xs, 0);
            ctx.write(ys, i, v);
        });
    }

    #[test]
    fn same_processor_may_touch_a_cell_twice() {
        let mut pram = Pram::strict(Mode::Erew, 1);
        let xs = pram.alloc(1);
        pram.parallel_for(1, |ctx, _| {
            let v = ctx.read(xs, 0);
            ctx.write(xs, 0, v + 1);
        });
        assert_eq!(pram.peek(xs, 0), 1);
        assert!(pram.metrics().is_clean());
    }

    #[test]
    fn alloc_accounting() {
        let mut pram = Pram::new(Mode::Erew, 1);
        let a = pram.alloc(10);
        let b = pram.alloc(6);
        assert_eq!(pram.metrics().cells_allocated, 16);
        assert_eq!(pram.metrics().peak_cells, 16);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn poke_and_peek_roundtrip() {
        let mut pram = Pram::new(Mode::Erew, 1);
        let a = pram.alloc(3);
        pram.poke(a, 2, 99);
        assert_eq!(pram.peek(a, 2), 99);
        assert_eq!(pram.snapshot(a), vec![0, 0, 99]);
    }

    #[test]
    fn alloc_from_iter_collects() {
        let mut pram = Pram::new(Mode::Erew, 1);
        let a = pram.alloc_from_iter((0..5).map(|x| x * x));
        assert_eq!(pram.snapshot(a), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn empty_parallel_for_is_free() {
        let mut pram = Pram::new(Mode::Erew, 4);
        pram.parallel_for(0, |_ctx, _i| unreachable!("no processors"));
        assert_eq!(pram.metrics().steps, 0);
        assert_eq!(pram.metrics().instructions, 0);
    }

    #[test]
    fn phases_split_counters() {
        let mut pram = Pram::new(Mode::Erew, 4);
        let a = pram.alloc(8);
        pram.phase("fill");
        pram.parallel_for(8, |ctx, i| ctx.write(a, i, 1));
        pram.phase("half");
        pram.parallel_for(4, |ctx, i| ctx.write(a, i, 2));
        let report = pram.metrics().phase_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].name, "fill");
        assert!(report[0].steps > 0);
        assert_eq!(report[1].name, "half");
        assert!(report[1].steps > 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let mut pram = Pram::new(Mode::Erew, 1);
        let a = pram.alloc(2);
        pram.parallel_for(1, |ctx, _| {
            ctx.read(a, 5);
        });
    }
}
