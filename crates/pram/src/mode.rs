//! PRAM model variants and write-conflict policies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Resolution policy for concurrent writes on a CRCW PRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WritePolicy {
    /// All processors writing the same cell in the same step must write the
    /// same value; anything else is a violation.
    Common,
    /// An arbitrary (but, in this simulator, deterministic) processor wins.
    Arbitrary,
    /// The processor with the smallest index wins.
    Priority,
}

/// The PRAM variant being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Exclusive read, exclusive write.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read, concurrent write, resolved by the given policy.
    Crcw(WritePolicy),
}

impl Mode {
    /// `true` when concurrent reads of a cell are allowed in one step.
    pub fn allows_concurrent_reads(&self) -> bool {
        !matches!(self, Mode::Erew)
    }

    /// `true` when concurrent writes of a cell are allowed in one step.
    pub fn allows_concurrent_writes(&self) -> bool {
        matches!(self, Mode::Crcw(_))
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Erew => write!(f, "EREW"),
            Mode::Crew => write!(f, "CREW"),
            Mode::Crcw(WritePolicy::Common) => write!(f, "CRCW(common)"),
            Mode::Crcw(WritePolicy::Arbitrary) => write!(f, "CRCW(arbitrary)"),
            Mode::Crcw(WritePolicy::Priority) => write!(f, "CRCW(priority)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_permissions() {
        assert!(!Mode::Erew.allows_concurrent_reads());
        assert!(Mode::Crew.allows_concurrent_reads());
        assert!(Mode::Crcw(WritePolicy::Common).allows_concurrent_reads());
    }

    #[test]
    fn write_permissions() {
        assert!(!Mode::Erew.allows_concurrent_writes());
        assert!(!Mode::Crew.allows_concurrent_writes());
        assert!(Mode::Crcw(WritePolicy::Arbitrary).allows_concurrent_writes());
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Erew.to_string(), "EREW");
        assert_eq!(Mode::Crew.to_string(), "CREW");
        assert_eq!(
            Mode::Crcw(WritePolicy::Priority).to_string(),
            "CRCW(priority)"
        );
    }
}
