//! Handles to shared-memory arrays.

use serde::{Deserialize, Serialize};

/// A handle to a contiguous region of the simulated shared memory.
///
/// Handles are cheap `Copy` tokens; the actual storage lives inside
/// [`crate::Pram`]. All indices passed to reads/writes are bounds-checked
/// against the region length, so an algorithm can never silently scribble
/// over a neighbouring array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayHandle {
    pub(crate) id: u32,
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl ArrayHandle {
    /// Length of the region.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for an empty region.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Identifier of the region (unique within one [`crate::Pram`]).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Absolute address of `idx` within the flat shared memory.
    pub(crate) fn address(&self, idx: usize) -> usize {
        assert!(
            idx < self.len,
            "index {idx} out of bounds for PRAM array #{} of length {}",
            self.id,
            self.len
        );
        self.offset + idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_computation() {
        let h = ArrayHandle {
            id: 3,
            offset: 100,
            len: 8,
        };
        assert_eq!(h.address(0), 100);
        assert_eq!(h.address(7), 107);
        assert_eq!(h.len(), 8);
        assert!(!h.is_empty());
        assert_eq!(h.id(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn address_out_of_bounds_panics() {
        let h = ArrayHandle {
            id: 0,
            offset: 0,
            len: 4,
        };
        h.address(4);
    }

    #[test]
    fn empty_handle() {
        let h = ArrayHandle {
            id: 1,
            offset: 0,
            len: 0,
        };
        assert!(h.is_empty());
    }
}
