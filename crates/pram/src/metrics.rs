//! Time, work and conflict accounting.

use crate::mode::Mode;
use serde::{Deserialize, Serialize};

/// The kind of access-discipline violation that was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Two distinct processors read the same cell in one step on an EREW PRAM.
    ConcurrentRead,
    /// Two distinct processors wrote the same cell in one step on an EREW or
    /// CREW PRAM.
    ConcurrentWrite,
    /// One processor read a cell another processor wrote in the same step on
    /// an EREW PRAM.
    ReadWriteClash,
    /// CRCW-Common processors wrote different values to the same cell.
    CommonValueMismatch,
}

/// A recorded access-discipline violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The index of the offending `parallel_for` call (0-based).
    pub step_index: u64,
    /// The absolute shared-memory address involved.
    pub address: usize,
    /// Two of the virtual processors involved.
    pub processors: (usize, usize),
}

/// Per-phase accounting snapshot produced by [`Metrics::phase_report`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase label given to [`crate::Pram::phase`].
    pub name: String,
    /// Parallel time steps spent in the phase.
    pub steps: u64,
    /// Work (processor-instructions) spent in the phase.
    pub work: u64,
}

/// Aggregate counters for one simulated execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Parallel time: sum over `parallel_for` calls of
    /// `ceil(m / p) * max_accesses_per_processor`.
    pub steps: u64,
    /// Work: total shared-memory accesses plus explicit charges actually
    /// executed across all virtual processors (the work-time framework's
    /// notion of work; `processors * steps` is an upper bound on it by
    /// Brent's principle).
    pub work: u64,
    /// Total shared-memory reads issued.
    pub reads: u64,
    /// Total shared-memory writes issued.
    pub writes: u64,
    /// Number of `parallel_for` invocations (logical PRAM instructions).
    pub instructions: u64,
    /// Cells currently allocated.
    pub cells_allocated: usize,
    /// High-water mark of allocated cells.
    pub peak_cells: usize,
    /// Every detected violation of the access discipline.
    pub violations: Vec<Violation>,
    /// Phase boundaries: (label, steps at boundary, work at boundary).
    pub(crate) phase_marks: Vec<(String, u64, u64)>,
}

impl Metrics {
    /// `true` when no access-discipline violation was recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Work divided by input size — the quantity that must stay bounded for a
    /// work-optimal algorithm.
    pub fn work_per_item(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.work as f64 / n as f64
        }
    }

    /// Steps divided by `log2(n)` — the quantity that must stay bounded for a
    /// time-optimal `O(log n)` algorithm.
    pub fn steps_per_log(&self, n: usize) -> f64 {
        if n < 2 {
            self.steps as f64
        } else {
            self.steps as f64 / (n as f64).log2()
        }
    }

    /// Splits the counters at the recorded phase marks. A mark labels the
    /// segment that *follows* it (up to the next mark or the end of the
    /// execution); anything before the first mark is reported as
    /// `(preamble)`.
    pub fn phase_report(&self) -> Vec<PhaseReport> {
        let mut out = Vec::new();
        let first = self.phase_marks.first();
        if let Some((_, steps, work)) = first {
            if *steps > 0 || *work > 0 {
                out.push(PhaseReport {
                    name: "(preamble)".to_string(),
                    steps: *steps,
                    work: *work,
                });
            }
        } else if self.steps > 0 || self.work > 0 {
            out.push(PhaseReport {
                name: "(preamble)".to_string(),
                steps: self.steps,
                work: self.work,
            });
        }
        for (i, (name, steps, work)) in self.phase_marks.iter().enumerate() {
            let (end_steps, end_work) = self
                .phase_marks
                .get(i + 1)
                .map(|(_, s, w)| (*s, *w))
                .unwrap_or((self.steps, self.work));
            out.push(PhaseReport {
                name: name.clone(),
                steps: end_steps - steps,
                work: end_work - work,
            });
        }
        out
    }

    /// Human-readable one-line summary, used by the experiment driver.
    pub fn summary(&self, mode: Mode, processors: usize) -> String {
        format!(
            "{mode} p={processors}: steps={} work={} reads={} writes={} violations={}",
            self.steps,
            self.work,
            self.reads,
            self.writes,
            self.violations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let m = Metrics {
            steps: 30,
            work: 4000,
            ..Default::default()
        };
        assert!((m.work_per_item(1000) - 4.0).abs() < 1e-9);
        assert!((m.steps_per_log(1024) - 3.0).abs() < 1e-9);
        assert_eq!(m.work_per_item(0), 0.0);
        assert_eq!(m.steps_per_log(1), 30.0);
    }

    #[test]
    fn phase_report_deltas() {
        let m = Metrics {
            steps: 10,
            work: 100,
            phase_marks: vec![("a".into(), 4, 40), ("b".into(), 9, 90)],
            ..Default::default()
        };
        let report = m.phase_report();
        assert_eq!(report.len(), 3);
        assert_eq!(
            report[0],
            PhaseReport {
                name: "(preamble)".into(),
                steps: 4,
                work: 40
            }
        );
        assert_eq!(
            report[1],
            PhaseReport {
                name: "a".into(),
                steps: 5,
                work: 50
            }
        );
        assert_eq!(
            report[2],
            PhaseReport {
                name: "b".into(),
                steps: 1,
                work: 10
            }
        );
    }

    #[test]
    fn phase_report_without_marks() {
        let m = Metrics {
            steps: 3,
            work: 9,
            ..Default::default()
        };
        let report = m.phase_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "(preamble)");
    }

    #[test]
    fn clean_and_summary() {
        let m = Metrics::default();
        assert!(m.is_clean());
        let s = m.summary(Mode::Erew, 4);
        assert!(s.contains("EREW"));
        assert!(s.contains("p=4"));
    }
}
