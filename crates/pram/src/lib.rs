//! # pram — a step-synchronous PRAM simulator
//!
//! The Parallel Random Access Machine (PRAM) is the machine model the paper's
//! results are stated in: `p` synchronous processors share a common memory;
//! in each step every (non-masked) processor executes one instruction, with
//! reads observing the memory contents from before the step and writes taking
//! effect at the end of the step. The model family differs only in how
//! concurrent accesses to a single cell are treated:
//!
//! * **EREW** — exclusive read, exclusive write: no cell may be touched by two
//!   processors in the same step.
//! * **CREW** — concurrent read, exclusive write.
//! * **CRCW** — concurrent read, concurrent write, with a conflict-resolution
//!   policy (`Common`, `Arbitrary` or `Priority`).
//!
//! Because the paper's claims are about *counted* synchronous steps and work
//! (`steps x processors`), not about wall-clock time, this crate reproduces
//! the model as an instrumented simulator:
//!
//! * [`Pram::parallel_for`] models one PRAM instruction issued by `m` virtual
//!   processors. It charges `ceil(m / p) * c` time steps, where `c` is the
//!   largest number of shared-memory accesses any single virtual processor
//!   performed (Brent's scheduling principle), and one unit of work per
//!   access actually executed.
//! * All reads see the pre-step snapshot; writes are buffered and committed at
//!   the end of the step, exactly like the synchronous model.
//! * Every access is logged, and the access sets are checked against the
//!   EREW/CREW/CRCW contract. In *strict* mode a violation panics (the test
//!   suite uses this to prove the path-cover algorithm is EREW-clean); in
//!   permissive mode violations are recorded in the [`Metrics`].
//!
//! ```
//! use pram::{Mode, Pram};
//!
//! let mut pram = Pram::new(Mode::Erew, 4);
//! let xs = pram.alloc_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
//! let ys = pram.alloc(8);
//! pram.parallel_for(8, |ctx, i| {
//!     let x = ctx.read(xs, i);
//!     ctx.write(ys, i, 2 * x);
//! });
//! assert_eq!(pram.snapshot(ys), vec![2, 4, 6, 8, 10, 12, 14, 16]);
//! // 8 virtual processors on 4 physical ones, 2 accesses per processor
//! // -> ceil(8/4) * 2 = 4 time steps and 8 * 2 = 16 work for this phase.
//! assert_eq!(pram.metrics().steps, 4);
//! assert_eq!(pram.metrics().work, 16);
//! assert!(pram.metrics().violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod handle;
pub mod machine;
pub mod metrics;
pub mod mode;

pub use handle::ArrayHandle;
pub use machine::{Pram, PramBuilder, ProcCtx};
pub use metrics::{Metrics, PhaseReport, Violation, ViolationKind};
pub use mode::{Mode, WritePolicy};

/// The processor count the paper's Theorem 5.3 uses: `n / log2(n)`, never
/// less than one.
pub fn optimal_processors(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    let log = (usize::BITS - (n - 1).leading_zeros()) as usize; // ceil(log2 n)
    (n / log.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_processors_small_values() {
        assert_eq!(optimal_processors(0), 1);
        assert_eq!(optimal_processors(1), 1);
        assert_eq!(optimal_processors(2), 1);
        assert_eq!(optimal_processors(8), 8 / 3);
        assert_eq!(optimal_processors(1024), 1024 / 10);
    }

    #[test]
    fn optimal_processors_grows_sublinearly() {
        let p1 = optimal_processors(1 << 10);
        let p2 = optimal_processors(1 << 20);
        assert!(p2 > p1);
        assert!(p2 < (1 << 20));
    }
}
