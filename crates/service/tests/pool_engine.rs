//! Engine-level tests for the real-cores pool backend: large full-cover
//! solves must route through the pool, answer identically to the sequential
//! engine, and publish pool telemetry through both export formats.

use cograph::{random_cotree, CotreeShape};
use pcservice::{Answer, EngineConfig, GraphSpec, QueryEngine, QueryKind, QueryRequest};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cover_of(engine: &QueryEngine, tree: &cograph::Cotree) -> pcgraph::PathCover {
    let response = engine.execute(&QueryRequest::new(
        QueryKind::FullCover,
        GraphSpec::Cotree(tree.clone()),
    ));
    match response.outcome {
        Ok(Answer::FullCover {
            ref cover,
            verified,
        }) => {
            assert!(verified, "cover must be re-verified");
            cover.clone()
        }
        ref other => panic!("expected a full cover, got {other:?}"),
    }
}

#[test]
fn pool_engine_matches_sequential_engine_and_exports_telemetry() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    // Large enough to clear a low threshold; small enough to stay fast.
    let trees: Vec<_> = CotreeShape::ALL
        .iter()
        .map(|&shape| random_cotree(600, shape, &mut rng))
        .collect();

    let sequential = QueryEngine::new(EngineConfig {
        parallel_min_vertices: 0, // pool disabled
        ..EngineConfig::default()
    });
    let pooled = QueryEngine::new(EngineConfig {
        parallel_min_vertices: 1, // every full cover through the pool
        pool_threads: 2,
        ..EngineConfig::default()
    });

    for tree in &trees {
        assert_eq!(
            cover_of(&pooled, tree),
            cover_of(&sequential, tree),
            "pool-backed engine diverges from sequential engine"
        );
    }

    // The pool solves were recorded in telemetry...
    let report = pooled.metrics_report();
    assert_eq!(report.pool_solves, trees.len() as u64);
    assert_eq!(report.pool.workers, 2);
    assert!(
        report.pool.rounds > 0,
        "pool executed no rounds: {report:?}"
    );

    // ...and both export formats carry the pool block.
    let json = report.to_json().to_string();
    assert!(json.contains("\"pool\""), "JSON export lacks pool: {json}");
    assert!(json.contains("\"workers\":2"), "JSON pool workers: {json}");
    let prom = report.to_prometheus();
    assert!(prom.contains("pc_pool_solves_total 3"), "{prom}");
    assert!(prom.contains("pc_pool_workers 2"), "{prom}");
    assert!(prom.contains("pc_pool_rounds_total"), "{prom}");

    // The sequential engine never touched a pool.
    assert_eq!(sequential.metrics_report().pool_solves, 0);
}

#[test]
fn small_graphs_bypass_the_pool_under_the_default_threshold() {
    let mut rng = ChaCha8Rng::seed_from_u64(78);
    let tree = random_cotree(50, CotreeShape::Mixed, &mut rng);
    let engine = QueryEngine::new(EngineConfig::default());
    cover_of(&engine, &tree);
    assert_eq!(
        engine.metrics_report().pool_solves,
        0,
        "a 50-vertex solve must not engage the pool"
    );
}
