//! Chaos suite: the daemon under injected faults and induced overload.
//!
//! Each test drives a real daemon (unix socket and/or HTTP) with a
//! [`pcservice::FaultSpec`] and asserts the resilience contract: every
//! reply a client sees is either byte-identical to the fault-free run
//! (after stripping timing fields) or a *typed*, retryable `overloaded` /
//! `deadline_exceeded` error; handler panics stay contained to their
//! connection; shutdown always drains to a clean exit with the socket
//! file removed.
#![cfg(unix)]

use pcservice::daemon::{connect, Daemon, DaemonConfig};
use pcservice::proto::RetryPolicy;
use pcservice::{EngineConfig, FaultSpec, GraphSpec, Json, ProtoError, QueryKind, QueryRequest};
use std::path::PathBuf;
use std::time::Duration;

/// A deterministic mixed workload: distinct cotrees (so the hit/miss
/// sequence is non-trivial), one repeat (a guaranteed hit) and one
/// deliberate per-job failure (an induced `P_4`), to prove error payloads
/// survive chaos byte-for-byte too.
fn workload() -> Vec<QueryRequest> {
    let mut requests: Vec<QueryRequest> = (0..8)
        .map(|i| {
            let leaves: Vec<String> = (0..3 + i).map(|v| format!("v{v}")).collect();
            let term = format!("(j {} (u a b))", leaves.join(" "));
            QueryRequest::new(QueryKind::FullCover, GraphSpec::CotreeTerm(term))
                .with_id(format!("cover-{i}"))
        })
        .collect();
    requests.push(
        QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j v0 v1 v2 (u a b))".to_string()),
        )
        .with_id("repeat-hit"),
    );
    requests.push(
        QueryRequest::new(
            QueryKind::Recognize,
            GraphSpec::EdgeList("0 1\n1 2\n2 3\n".to_string()),
        )
        .with_id("p4-error"),
    );
    requests
}

/// Strips per-run volatility (timing, trace IDs); everything else must
/// match the fault-free run exactly.
fn strip_volatile(value: &Json) -> Json {
    match value {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "solve_us" && k != "total_us" && k != "trace_id")
                .map(|(k, v)| (k.clone(), strip_volatile(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

/// Single-threaded engine so the cache hit/miss sequence (part of every
/// response) is deterministic across the faulted and fault-free runs.
fn engine_config() -> EngineConfig {
    EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }
}

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pcservice-chaos-{tag}-{}.sock", std::process::id()))
}

/// A fast retry policy for tests: enough attempts that a 30% shed rate
/// failing every one of them is out of the question, tiny backoffs so the
/// suite stays quick.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 20,
        base_backoff_ms: 1,
        max_backoff_ms: 5,
    }
}

/// Connects to a faulted daemon, absorbing handshake sheds and
/// connections killed by injected panics (both are connection-scoped by
/// contract, so a fresh connect must eventually succeed).
fn connect_retrying(socket: &PathBuf) -> pcservice::proto::Client<std::os::unix::net::UnixStream> {
    for _ in 0..200 {
        match connect(socket) {
            Ok(client) => return client.with_retry(test_retry()),
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    panic!("daemon never accepted a clean connection");
}

/// Shuts a faulted daemon down, absorbing sheds and injected panics on
/// the shutdown frame itself.
fn shutdown_retrying(socket: &PathBuf) {
    for _ in 0..200 {
        let Ok(mut client) = connect(socket) else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        loop {
            match client.shutdown() {
                Ok(()) => return,
                // Shed: the connection survives, try again on it.
                Err(ProtoError::Remote { code, .. }) if code == "overloaded" => continue,
                // Injected panic killed the connection: reconnect.
                Err(_) => break,
            }
        }
    }
    panic!("daemon never acknowledged shutdown");
}

#[test]
fn retrying_clients_ride_out_random_sheds_byte_identically() {
    let requests = workload();

    // Fault-free baseline over the framed transport.
    let socket = temp_socket("baseline");
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    let daemon = Daemon::bind(config).expect("bind baseline daemon");
    let server = std::thread::spawn(move || daemon.run());
    let mut client = connect(&socket).expect("baseline connect");
    // Two passes: the faulted daemon below serves the workload twice (once
    // per transport), so its cache warms between passes — the baseline
    // must replay the same progression for the hit/miss metadata to match.
    let baseline_cold: Vec<String> = requests
        .iter()
        .map(|r| strip_volatile(&client.solve(r).expect("baseline solve")).to_string())
        .collect();
    let baseline_warm: Vec<String> = requests
        .iter()
        .map(|r| strip_volatile(&client.solve(r).expect("baseline solve")).to_string())
        .collect();
    client.shutdown().expect("baseline shutdown");
    server
        .join()
        .unwrap()
        .expect("baseline daemon exits cleanly");

    // The same workload against a daemon shedding ~30% of frames and
    // stalling 1ms before each one, on both transports at once. Retrying
    // clients must converge on byte-identical answers.
    let socket = temp_socket("faulted");
    let mut config = DaemonConfig::new(&socket);
    config.http_addr = Some("127.0.0.1:0".to_string());
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    config.faults = FaultSpec::parse("frame_stall_ms=1,overload_rate=0.3,seed=11").unwrap();
    let daemon = Daemon::bind(config).expect("bind faulted daemon");
    let addr = daemon.http_addr().expect("http bound").to_string();
    let server = std::thread::spawn(move || daemon.run());

    let mut framed = connect_retrying(&socket);
    for (i, request) in requests.iter().enumerate() {
        let reply = framed.solve(request).expect("retries exhaust the sheds");
        assert_eq!(
            strip_volatile(&reply).to_string(),
            baseline_cold[i],
            "framed reply {i} ({:?}) diverges from the fault-free run",
            request.id
        );
    }
    let mut http = pcservice::http::Client::connect(&addr)
        .expect("http connect")
        .with_retry(test_retry());
    for (i, request) in requests.iter().enumerate() {
        let reply = http.solve(request).expect("retries exhaust the sheds");
        assert_eq!(
            strip_volatile(&reply).to_string(),
            baseline_warm[i],
            "http reply {i} ({:?}) diverges from the fault-free run",
            request.id
        );
    }

    // The sheds actually happened and were counted.
    let metrics = framed.metrics().expect("metrics");
    let resilience = metrics.get("resilience").expect("resilience block");
    let shed = resilience
        .get("rejected_overload")
        .and_then(Json::as_u64)
        .expect("rejected_overload counter");
    assert!(shed > 0, "a 30% shed rate must reject something");

    shutdown_retrying(&socket);
    server
        .join()
        .unwrap()
        .expect("faulted daemon exits cleanly");
    assert!(!socket.exists(), "drain shutdown must remove the socket");
}

#[test]
fn per_connection_budgets_shed_deterministically() {
    let socket = temp_socket("budget");
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    // Two frames per connection: the hello handshake plus one request.
    config.max_requests_per_conn = 2;
    let daemon = Daemon::bind(config).expect("bind daemon");
    let server = std::thread::spawn(move || daemon.run());

    // The first request fits the budget; the next frame is shed with a
    // typed, retryable error and the connection closes.
    let mut client = connect(&socket).expect("hello fits the budget");
    let request = QueryRequest::new(
        QueryKind::MinCoverSize,
        GraphSpec::CotreeTerm("(j a b)".to_string()),
    );
    let reply = client.solve(&request).expect("first request fits");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    match client.metrics() {
        Err(ProtoError::Remote {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, "overloaded");
            assert!(retry_after_ms.is_some(), "shed must carry a backoff hint");
        }
        other => panic!("expected a typed overloaded shed, got {other:?}"),
    }

    // A fresh connection gets a fresh budget — the shed was recoverable.
    let mut fresh = connect(&socket).expect("fresh connection");
    let reply = fresh.solve(&request).expect("fresh budget");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    drop(fresh);

    // Shutdown fits a fresh connection's budget (hello + shutdown).
    let mut last = connect(&socket).expect("shutdown connection");
    last.shutdown().expect("shutdown");
    server.join().unwrap().expect("daemon exits cleanly");
    assert!(!socket.exists());
}

#[test]
fn connection_cap_rejects_excess_connects_with_overloaded() {
    let socket = temp_socket("conncap");
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    config.max_connections = 1;
    let daemon = Daemon::bind(config).expect("bind daemon");
    let server = std::thread::spawn(move || daemon.run());

    let mut first = connect(&socket).expect("first connection admitted");
    // The second connect is rejected at accept time: the daemon answers
    // the cap breach with one overloaded frame instead of a handshake.
    match connect(&socket) {
        Err(ProtoError::Remote {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, "overloaded");
            assert!(retry_after_ms.is_some());
        }
        Err(other) => panic!("expected an overloaded rejection, got {other:?}"),
        Ok(_) => panic!("the connection cap admitted a second connection"),
    }
    // The admitted connection is unaffected by the rejection next door.
    let request = QueryRequest::new(
        QueryKind::HamiltonianPath,
        GraphSpec::CotreeTerm("(j a b c)".to_string()),
    );
    let reply = first.solve(&request).expect("admitted connection works");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // Once it hangs up, the slot frees and a new connect is admitted.
    drop(first);
    let mut readmitted = connect_retrying(&socket);
    readmitted.shutdown().expect("shutdown");
    server.join().unwrap().expect("daemon exits cleanly");
    assert!(!socket.exists());
}

#[test]
fn expired_deadlines_fail_typed_on_the_v2_envelope() {
    let socket = temp_socket("deadline");
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    let daemon = Daemon::bind(config).expect("bind daemon");
    let server = std::thread::spawn(move || daemon.run());
    let mut client = connect(&socket).expect("connect");

    let envelope = Json::parse(
        r#"{"api_version":2,"op":"solve","target":{"cotree":"(j a b c)"},
            "params":{"kind":"min_cover_size"},"deadline_ms":0}"#,
    )
    .unwrap();
    let reply = client.query_v2(&envelope).expect("v2 round trip");
    // The envelope succeeds (the op ran); the job inside it failed typed —
    // deadline errors are per-job, like every other solve failure.
    let result = reply.get("result").expect("result payload");
    assert_eq!(result.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        result
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );

    // The same envelope with room to breathe succeeds on the very same
    // connection: deadline failures are per-request, not per-connection.
    let envelope = Json::parse(
        r#"{"api_version":2,"op":"solve","target":{"cotree":"(j a b c)"},
            "params":{"kind":"min_cover_size"},"deadline_ms":60000}"#,
    )
    .unwrap();
    let reply = client.query_v2(&envelope).expect("v2 round trip");
    let result = reply.get("result").expect("result payload");
    assert_eq!(result.get("ok").and_then(Json::as_bool), Some(true));

    let metrics = client.metrics().expect("metrics");
    let cut_short = metrics
        .get("resilience")
        .and_then(|r| r.get("deadline_exceeded"))
        .and_then(Json::as_u64);
    assert_eq!(cut_short, Some(1));

    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("daemon exits cleanly");
}

#[test]
fn handler_panics_stay_contained_to_their_connection() {
    let socket = temp_socket("panic");
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    // Every other frame panics its handler (deterministic in the seed).
    config.faults = FaultSpec::parse("panic_rate=0.5,seed=1").unwrap();
    let daemon = Daemon::bind(config).expect("bind daemon");
    let server = std::thread::spawn(move || daemon.run());

    // Connections die mid-frame whenever the injected panic fires, but the
    // daemon itself must keep accepting and answering: across repeated
    // fresh connections we must see both real answers and killed
    // connections, and the accept loop must never wedge.
    let request = QueryRequest::new(
        QueryKind::MinCoverSize,
        GraphSpec::CotreeTerm("(u (j a b) c)".to_string()),
    );
    let mut answered = 0u32;
    let mut killed = 0u32;
    for _ in 0..60 {
        match connect(&socket) {
            Ok(mut client) => match client.solve(&request) {
                Ok(reply) => {
                    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
                    answered += 1;
                }
                Err(_) => killed += 1,
            },
            Err(_) => killed += 1,
        }
        if answered >= 3 && killed >= 3 {
            break;
        }
    }
    assert!(answered >= 3, "daemon stopped answering under panics");
    assert!(killed >= 3, "panic_rate=0.5 must kill some connections");

    shutdown_retrying(&socket);
    server
        .join()
        .unwrap()
        .expect("daemon exits cleanly after panics");
    assert!(!socket.exists(), "socket must be cleaned up despite panics");
}

#[test]
fn in_flight_requests_drain_before_shutdown_completes() {
    let socket = temp_socket("drain");
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    // Every frame stalls 80ms: a request sent just before shutdown is
    // still in flight when the trigger lands, and must complete anyway.
    config.faults = FaultSpec::parse("frame_stall_ms=80").unwrap();
    config.drain_timeout = Duration::from_secs(5);
    let daemon = Daemon::bind(config).expect("bind daemon");
    let server = std::thread::spawn(move || daemon.run());

    // Both connections are admitted before shutdown stops the accept
    // loop. The trigger's shutdown frame stalls 80ms before dispatch; the
    // worker's solve, sent 20ms later, stalls until after the shutdown has
    // fired — so when the daemon starts draining, the solve is genuinely
    // in flight and must still complete with a real answer.
    let mut worker = connect(&socket).expect("worker connect");
    let mut trigger = connect(&socket).expect("trigger connect");
    let trigger_thread = std::thread::spawn(move || trigger.shutdown());
    std::thread::sleep(Duration::from_millis(20));
    let request = QueryRequest::new(
        QueryKind::FullCover,
        GraphSpec::CotreeTerm("(j a b c d)".to_string()),
    );
    let reply = worker
        .solve(&request)
        .expect("in-flight request completes during drain");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    drop(worker);
    trigger_thread
        .join()
        .unwrap()
        .expect("shutdown acknowledged");
    server.join().unwrap().expect("daemon exits cleanly");
    assert!(!socket.exists());
}
