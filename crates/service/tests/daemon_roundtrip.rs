//! Daemon round-trip: a unix-socket daemon must answer the same 100-cotree
//! workload as direct `QueryEngine` calls byte-for-byte (modulo timing
//! metadata), its cache must show cross-connection hits, and a second
//! client connecting later must observe a warm cache on its very first
//! request.
#![cfg(unix)]

use cograph::{random_cotree, CotreeShape};
use pcservice::daemon::{connect, Daemon, DaemonConfig};
use pcservice::{
    EngineConfig, GraphSpec, Json, QueryEngine, QueryKind, QueryRequest, QueryResponse,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::time::Duration;

fn hundred_cotrees() -> Vec<cograph::Cotree> {
    let mut rng = ChaCha8Rng::seed_from_u64(555);
    let shapes = CotreeShape::ALL;
    (0..100)
        .map(|i| {
            let n = 2 + (i * 7) % 60;
            random_cotree(n, shapes[i % shapes.len()], &mut rng)
        })
        .collect()
}

/// The workload: three query kinds per cotree, graphs shipped as edge-list
/// text (the lowering `--remote` clients use), ids marking the origin.
fn workload() -> Vec<QueryRequest> {
    hundred_cotrees()
        .iter()
        .enumerate()
        .flat_map(|(i, tree)| {
            let graph = GraphSpec::Graph(tree.to_graph());
            [
                QueryRequest::new(QueryKind::MinCoverSize, graph.clone())
                    .with_id(format!("size-{i}")),
                QueryRequest::new(QueryKind::FullCover, graph.clone())
                    .with_id(format!("cover-{i}")),
                QueryRequest::new(QueryKind::HamiltonianPath, graph).with_id(format!("ham-{i}")),
            ]
        })
        .collect()
}

/// Strips the timing fields (`solve_us`, `total_us`) and the per-request
/// `trace_id` every response carries; everything else — answers, witnesses,
/// cache disposition, canonical keys — must match exactly.
fn strip_timing(value: &Json) -> Json {
    match value {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "solve_us" && k != "total_us" && k != "trace_id")
                .map(|(k, v)| (k.clone(), strip_timing(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

fn temp_socket() -> PathBuf {
    std::env::temp_dir().join(format!("pcservice-roundtrip-{}.sock", std::process::id()))
}

/// Single-threaded engines on both sides so the hit/miss sequence (part of
/// every response's metadata) is deterministic and must agree exactly.
fn engine_config() -> EngineConfig {
    EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }
}

#[test]
fn daemon_matches_direct_engine_and_cache_survives_across_connections() {
    let socket = temp_socket();
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    let daemon = Daemon::bind(config).expect("bind daemon socket");
    let server = std::thread::spawn(move || daemon.run());

    let requests = workload();

    // Direct, in-process baseline with the identical engine configuration.
    let direct_engine = QueryEngine::new(engine_config());
    let direct: Vec<Json> = direct_engine
        .execute_batch(None, &requests)
        .iter()
        .map(QueryResponse::to_json)
        .collect();

    // First client: the same workload through the socket.
    let mut first = connect(&socket).expect("first client connects");
    let remote = first
        .batch(None, requests.clone())
        .expect("remote batch succeeds");
    assert_eq!(remote.len(), direct.len());
    for (i, (remote_resp, direct_resp)) in remote.iter().zip(&direct).enumerate() {
        assert_eq!(
            strip_timing(remote_resp).to_string(),
            strip_timing(direct_resp).to_string(),
            "response {i} ({:?}) diverges between daemon and direct engine",
            requests[i].id
        );
    }

    // The workload queries each graph three times: the daemon's cache must
    // have served the repeats.
    let stats_after_first = first.stats().expect("stats");
    let hits = |s: &Json| s.get("hits").and_then(Json::as_u64).unwrap_or(0);
    assert!(
        hits(&stats_after_first) >= 200,
        "three queries per graph must produce at least two hits each, stats: {stats_after_first}"
    );
    drop(first);

    // Second client, connecting later: its very first request must land in
    // the cache another connection warmed.
    let mut second = connect(&socket).expect("second client connects");
    let response = second.solve(&requests[0]).expect("warm solve");
    assert_eq!(
        response
            .get("meta")
            .and_then(|m| m.get("cache"))
            .and_then(Json::as_str),
        Some("hit"),
        "second connection's first request missed the warm cache: {response}"
    );
    let stats_after_second = second.stats().expect("stats");
    assert!(
        hits(&stats_after_second) > hits(&stats_after_first),
        "cross-connection hit not visible in stats"
    );
    let rate = stats_after_second
        .get("hit_rate")
        .map(|r| match r {
            Json::Num(x) => *x,
            _ => 0.0,
        })
        .unwrap_or(0.0);
    assert!(
        rate > 0.0,
        "hit rate must be positive: {stats_after_second}"
    );

    second.shutdown().expect("graceful shutdown");
    server
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    assert!(!socket.exists(), "socket file cleaned up");
}
