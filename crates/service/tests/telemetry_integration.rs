//! End-to-end telemetry: one daemon serving both transports, verifying
//! that trace IDs round-trip (client-supplied over HTTP `X-Request-Id`,
//! synthesized over the framed protocol), that the `metrics` frame and
//! `GET /v1/metrics` expose the same registry, and that the Prometheus
//! text flavour is line-parseable with the request counters booked.

#![cfg(unix)]

use pcservice::{Daemon, DaemonConfig, GraphSpec, Json, QueryKind, QueryRequest};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn temp_socket() -> PathBuf {
    std::env::temp_dir().join(format!("pcservice-telemetry-{}.sock", std::process::id()))
}

/// One raw HTTP/1.1 round trip: returns (status line, headers, body).
fn raw_http(addr: &str, request: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("tcp connect");
    stream.write_all(request.as_bytes()).expect("send");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    // `Connection: close` requests let EOF delimit the response.
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    let reply = String::from_utf8(reply).expect("utf-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

#[test]
fn telemetry_round_trips_across_both_transports() {
    let path = temp_socket();
    let mut config = DaemonConfig::new(&path);
    config.http_addr = Some("127.0.0.1:0".to_string());
    config.idle_timeout = Duration::from_secs(5);
    config.engine.threads = 1;
    let daemon = Daemon::bind(config).expect("bind");
    let http_addr = daemon.http_addr().expect("http bound").to_string();
    let handle = std::thread::spawn(move || daemon.run());

    // Framed transport: a solve gets a synthesized trace in its metadata.
    let mut unix_client = pcservice::daemon::connect(&path).expect("unix connect");
    let request = QueryRequest::new(
        QueryKind::MinCoverSize,
        GraphSpec::CotreeTerm("(j a b c)".to_string()),
    );
    let response = unix_client.solve(&request).expect("framed solve");
    let framed_trace = response
        .get("meta")
        .and_then(|m| m.get("trace_id"))
        .and_then(Json::as_str)
        .map(str::to_string);
    assert!(
        framed_trace.is_some_and(|t| t.starts_with("pc-")),
        "framed responses carry a synthesized trace: {response}"
    );

    // HTTP transport: the X-Request-Id header is echoed top-level and in
    // the response metadata.
    let body = r#"{"kind":"min_cover_size","cotree":"(j a b c)"}"#;
    let (status, _, reply) = raw_http(
        &http_addr,
        &format!(
            "POST /v1/solve HTTP/1.1\r\nHost: t\r\nX-Request-Id: itest-1\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(status.contains("200"), "{status}");
    let reply = Json::parse(reply.trim_end()).expect("json reply");
    assert_eq!(
        reply.get("trace_id").and_then(Json::as_str),
        Some("itest-1"),
        "top-level echo: {reply}"
    );
    assert_eq!(
        reply
            .get("response")
            .and_then(|r| r.get("meta"))
            .and_then(|m| m.get("trace_id"))
            .and_then(Json::as_str),
        Some("itest-1"),
        "metadata echo: {reply}"
    );

    // The framed `metrics` verb sees both requests, the stage histograms
    // and the connection gauges.
    let metrics = unix_client.metrics().expect("metrics frame");
    assert_eq!(
        metrics.get("requests_total").and_then(Json::as_u64),
        Some(2),
        "one solve per transport: {metrics}"
    );
    let solve_count = metrics
        .get("stages")
        .and_then(|s| s.get("solve"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(solve_count >= 1, "solve stage sampled: {metrics}");
    let framed_accepted = metrics
        .get("connections")
        .and_then(|c| c.get("framed"))
        .and_then(|f| f.get("accepted"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(framed_accepted >= 1, "framed connection booked: {metrics}");

    // Prometheus flavour: correct content type, every line parseable,
    // request counter sums to the same total.
    let (status, headers, exposition) = raw_http(
        &http_addr,
        "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("200"), "{status}");
    assert!(
        headers.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{headers}"
    );
    let mut requests_total = 0u64;
    let mut bucket_count: Option<u64> = None;
    let mut last_bucket: Option<f64> = None;
    let mut build_info: Option<f64> = None;
    for line in exposition.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Exposition grammar: `name{labels} value` or `name value`.
        let (name_part, value) = line.rsplit_once(' ').expect("metric line has a value");
        assert!(!name_part.is_empty(), "unnamed metric: {line}");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("metric value must be numeric: {line}");
        });
        if name_part.starts_with("pc_requests_total{") {
            requests_total += value as u64;
        }
        if let Some(labels) = name_part.strip_prefix("pc_request_duration_bucket{") {
            bucket_count = Some(bucket_count.unwrap_or(0) + 1);
            // Cumulative histogram: each bucket's count never shrinks as
            // `le` grows (the exposition emits them in ascending order).
            let le = labels
                .split(',')
                .find_map(|part| part.trim().strip_prefix("le=\""))
                .map(|rest| rest.trim_end_matches(['"', '}']))
                .expect("bucket line carries an le label");
            if le == "+Inf" {
                assert_eq!(value as u64, 2, "+Inf bucket counts every request: {line}");
            }
            if let Some(previous) = last_bucket {
                assert!(value >= previous, "buckets must be cumulative: {line}");
            }
            last_bucket = Some(value);
        }
        if name_part.starts_with("pc_build_info{") {
            assert!(
                name_part.contains("version=\"") && name_part.contains("profile=\""),
                "build info labels: {line}"
            );
            build_info = Some(value);
        }
    }
    assert_eq!(requests_total, 2, "scrape agrees with the metrics frame");
    assert!(
        bucket_count.is_some_and(|count| count >= 2),
        "real _bucket series exported: {exposition}"
    );
    assert_eq!(build_info, Some(1.0), "pc_build_info gauge is 1");

    unix_client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
}
