//! Cross-transport equivalence: the same batch run through the in-process
//! engine, the unix-socket framed protocol and the HTTP/1.1 front-end must
//! produce byte-identical response objects once the timing fields are
//! stripped — answers, witnesses, canonical keys *and* cache dispositions
//! included (each transport gets a fresh single-threaded engine, so the
//! hit/miss sequence is deterministic and must agree exactly).
#![cfg(unix)]

use cograph::{random_cotree, CotreeShape};
use pcservice::daemon::{connect, Daemon, DaemonConfig};
use pcservice::{
    EngineConfig, GraphSpec, Json, QueryEngine, QueryKind, QueryRequest, QueryResponse,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// The workload: three query kinds over thirty random cotrees, graphs
/// shipped as edge-list text (the lowering remote clients use), with one
/// deliberate per-job failure (a P4) to prove error payloads agree too.
fn workload() -> Vec<QueryRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let shapes = CotreeShape::ALL;
    let mut requests: Vec<QueryRequest> = (0..30)
        .flat_map(|i| {
            let n = 2 + (i * 5) % 40;
            let tree = random_cotree(n, shapes[i % shapes.len()], &mut rng);
            let graph = GraphSpec::Graph(tree.to_graph());
            [
                QueryRequest::new(QueryKind::MinCoverSize, graph.clone())
                    .with_id(format!("size-{i}")),
                QueryRequest::new(QueryKind::FullCover, graph.clone())
                    .with_id(format!("cover-{i}")),
                QueryRequest::new(QueryKind::HamiltonianCycle, graph).with_id(format!("cyc-{i}")),
            ]
        })
        .collect();
    requests.push(
        QueryRequest::new(
            QueryKind::Recognize,
            GraphSpec::EdgeList("0 1\n1 2\n2 3\n".to_string()),
        )
        .with_id("p4-error"),
    );
    requests
}

/// Strips the timing fields (`solve_us`, `total_us`) and the per-request
/// `trace_id` every response carries; everything else must match exactly.
fn strip_timing(value: &Json) -> Json {
    match value {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "solve_us" && k != "total_us" && k != "trace_id")
                .map(|(k, v)| (k.clone(), strip_timing(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

/// Single-threaded engines on every side so the hit/miss sequence (part of
/// every response's metadata) is deterministic and must agree exactly.
fn engine_config() -> EngineConfig {
    EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }
}

#[test]
fn all_three_transports_answer_identically() {
    let requests = workload();

    // In-process baseline.
    let direct_engine = QueryEngine::new(engine_config());
    let direct: Vec<Json> = direct_engine
        .execute_batch(None, &requests)
        .iter()
        .map(QueryResponse::to_json)
        .collect();

    // Unix-socket daemon (fresh engine, framed protocol).
    let socket =
        std::env::temp_dir().join(format!("pcservice-equivalence-{}.sock", std::process::id()));
    let mut config = DaemonConfig::new(&socket);
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    let daemon = Daemon::bind(config).expect("bind unix daemon");
    let unix_server = std::thread::spawn(move || daemon.run());
    let mut unix_client = connect(&socket).expect("unix connect");
    let over_unix = unix_client
        .batch(None, requests.clone())
        .expect("unix batch");

    // HTTP daemon (fresh engine, ephemeral port).
    let mut config = DaemonConfig::http("127.0.0.1:0");
    config.idle_timeout = Duration::from_secs(10);
    config.engine = engine_config();
    let daemon = Daemon::bind(config).expect("bind http daemon");
    let addr = daemon.http_addr().expect("http bound").to_string();
    let http_server = std::thread::spawn(move || daemon.run());
    let mut http_client = pcservice::http::Client::connect(&addr).expect("http connect");
    let over_http = http_client
        .batch(None, requests.clone())
        .expect("http batch");

    assert_eq!(direct.len(), over_unix.len());
    assert_eq!(direct.len(), over_http.len());
    for (i, request) in requests.iter().enumerate() {
        let baseline = strip_timing(&direct[i]).to_string();
        assert_eq!(
            strip_timing(&over_unix[i]).to_string(),
            baseline,
            "response {i} ({:?}) diverges between unix socket and direct engine",
            request.id
        );
        assert_eq!(
            strip_timing(&over_http[i]).to_string(),
            baseline,
            "response {i} ({:?}) diverges between http and direct engine",
            request.id
        );
    }

    // The deliberate non-cograph failed identically everywhere (spot-check
    // the shared baseline actually contains it), and the induced-P4
    // certificate made it through the wire as a structured field.
    let last = strip_timing(direct.last().unwrap());
    assert_eq!(last.get("ok").and_then(Json::as_bool), Some(false));
    let error = last.get("error").expect("error object");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("not_a_cograph")
    );
    let Some(Json::Arr(p4)) = error.get("p4") else {
        panic!("missing p4 witness in error body: {last}");
    };
    let witness: Vec<u64> = p4.iter().filter_map(Json::as_u64).collect();
    // The input was the path 0-1-2-3; its only induced P4 is itself.
    assert!(
        witness == [0, 1, 2, 3] || witness == [3, 2, 1, 0],
        "unexpected witness {witness:?}"
    );

    unix_client.shutdown().expect("unix shutdown");
    unix_server
        .join()
        .expect("unix daemon thread")
        .expect("unix daemon exits cleanly");
    http_client.shutdown().expect("http shutdown");
    http_server
        .join()
        .expect("http daemon thread")
        .expect("http daemon exits cleanly");
}
