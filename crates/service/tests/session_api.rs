//! Daemon-resident session handles over the v2 envelope, end to end:
//! concurrent handles from parallel connections, mutate/query interleaving
//! on one handle, idle-TTL garbage collection observed through the
//! telemetry gauges, and the headline acceptance property — a growing
//! session never re-runs full recognition, only the incremental path.
#![cfg(unix)]

use pcservice::daemon::{connect, Daemon, DaemonConfig};
use pcservice::{EngineConfig, Json};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Builds one v2 request envelope.
fn envelope(op: &str, target: Option<Json>, params: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![("api_version", Json::num(2)), ("op", Json::str(op))];
    if let Some(target) = target {
        fields.push(("target", target));
    }
    if !params.is_empty() {
        fields.push(("params", Json::obj(params)));
    }
    Json::obj(fields)
}

fn session_target(handle: &str) -> Json {
    Json::obj(vec![("session", Json::str(handle))])
}

/// Asserts the envelope acknowledged (`ok: true`) and unwraps its result.
fn ok_result(reply: Json) -> Json {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "envelope rejected: {reply}"
    );
    assert_eq!(reply.get("api_version").and_then(Json::as_u64), Some(2));
    reply
        .get("result")
        .cloned()
        .expect("ok reply carries a result")
}

/// `session_add_vertex` params wiring the new vertex to `neighbors`.
fn add_vertex_params(neighbors: &[u64]) -> Vec<(&'static str, Json)> {
    vec![(
        "neighbors",
        Json::Arr(neighbors.iter().map(|&v| Json::num(v)).collect()),
    )]
}

fn single_threaded(mut config: DaemonConfig) -> DaemonConfig {
    config.idle_timeout = Duration::from_secs(10);
    config.engine = EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    };
    config
}

#[test]
fn parallel_connections_grow_distinct_handles() {
    let socket =
        std::env::temp_dir().join(format!("pcservice-session-par-{}.sock", std::process::id()));
    let daemon = Daemon::bind(single_threaded(DaemonConfig::new(&socket))).expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    let handles: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            let handles = Arc::clone(&handles);
            std::thread::spawn(move || {
                let mut client = connect(&socket).expect("connect");
                let created = ok_result(
                    client
                        .query_v2(&envelope("session_create", None, vec![]))
                        .unwrap(),
                );
                let handle = created
                    .get("handle")
                    .and_then(Json::as_str)
                    .expect("handle")
                    .to_string();
                // Grow a clique one vertex at a time: every insertion wires
                // the newcomer to all residents, which the incremental
                // recogniser absorbs without a rebuild.
                for i in 0..10u64 {
                    let state = ok_result(
                        client
                            .query_v2(&envelope(
                                "session_add_vertex",
                                Some(session_target(&handle)),
                                add_vertex_params(&(0..i).collect::<Vec<_>>()),
                            ))
                            .unwrap(),
                    );
                    assert_eq!(state.get("vertices").and_then(Json::as_u64), Some(i + 1));
                }
                let response = ok_result(
                    client
                        .query_v2(&envelope(
                            "session_query",
                            Some(session_target(&handle)),
                            vec![("kind", Json::str("min_cover_size"))],
                        ))
                        .unwrap(),
                );
                assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
                // A 10-clique is covered by a single hamiltonian path.
                let size = response
                    .get("answer")
                    .and_then(|a| a.get("size"))
                    .and_then(Json::as_u64);
                assert_eq!(size, Some(1), "unexpected answer: {response}");
                handles.lock().unwrap().push(handle);
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker");
    }

    // Four connections got four distinct live handles.
    let mut handles = handles.lock().unwrap().clone();
    handles.sort();
    handles.dedup();
    assert_eq!(handles.len(), 4);

    let mut client = connect(&socket).expect("connect");
    let stats = client.stats().expect("stats");
    let sessions = stats.get("sessions").expect("stats carry sessions");
    assert_eq!(sessions.get("live").and_then(Json::as_u64), Some(4));

    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean exit");
}

#[test]
fn mutations_and_queries_interleave_on_one_handle() {
    let socket = std::env::temp_dir().join(format!(
        "pcservice-session-interleave-{}.sock",
        std::process::id()
    ));
    let daemon = Daemon::bind(single_threaded(DaemonConfig::new(&socket))).expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    let mut client = connect(&socket).expect("connect");
    let created = ok_result(
        client
            .query_v2(&envelope("session_create", None, vec![]))
            .unwrap(),
    );
    let handle = created
        .get("handle")
        .and_then(Json::as_str)
        .expect("handle")
        .to_string();
    ok_result(
        client
            .query_v2(&envelope(
                "session_add_vertex",
                Some(session_target(&handle)),
                add_vertex_params(&[]),
            ))
            .unwrap(),
    );

    // One writer keeps growing the clique while a second connection
    // queries the same handle; the per-handle lock makes every query see
    // some consistent prefix, where a clique's cover is always one path.
    let writer = {
        let socket = socket.clone();
        let handle = handle.clone();
        std::thread::spawn(move || {
            let mut client = connect(&socket).expect("connect");
            for i in 1..16u64 {
                ok_result(
                    client
                        .query_v2(&envelope(
                            "session_add_vertex",
                            Some(session_target(&handle)),
                            add_vertex_params(&(0..i).collect::<Vec<_>>()),
                        ))
                        .unwrap(),
                );
            }
        })
    };
    let reader = {
        let socket = socket.clone();
        let handle = handle.clone();
        std::thread::spawn(move || {
            let mut client = connect(&socket).expect("connect");
            for _ in 0..15 {
                let response = ok_result(
                    client
                        .query_v2(&envelope(
                            "session_query",
                            Some(session_target(&handle)),
                            vec![("kind", Json::str("min_cover_size"))],
                        ))
                        .unwrap(),
                );
                assert_eq!(
                    response.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "query failed mid-interleave: {response}"
                );
                let n = response
                    .get("meta")
                    .and_then(|m| m.get("n"))
                    .and_then(Json::as_u64)
                    .expect("meta.n");
                assert!((1..=16).contains(&n), "saw impossible vertex count {n}");
                let size = response
                    .get("answer")
                    .and_then(|a| a.get("size"))
                    .and_then(Json::as_u64);
                assert_eq!(size, Some(1), "clique cover must stay a single path");
            }
        })
    };
    writer.join().expect("writer");
    reader.join().expect("reader");

    let state = ok_result(
        client
            .query_v2(&envelope(
                "session_query",
                Some(session_target(&handle)),
                vec![("kind", Json::str("recognize"))],
            ))
            .unwrap(),
    );
    assert_eq!(
        state
            .get("meta")
            .and_then(|m| m.get("n"))
            .and_then(Json::as_u64),
        Some(16)
    );

    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean exit");
}

#[test]
fn idle_sessions_are_reclaimed_by_the_ttl_sweep() {
    let socket =
        std::env::temp_dir().join(format!("pcservice-session-ttl-{}.sock", std::process::id()));
    let mut config = single_threaded(DaemonConfig::new(&socket));
    config.engine.session_idle_ttl = Duration::from_millis(150);
    let daemon = Daemon::bind(config).expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    let mut client = connect(&socket).expect("connect");
    for _ in 0..2 {
        ok_result(
            client
                .query_v2(&envelope("session_create", None, vec![]))
                .unwrap(),
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats
            .get("sessions")
            .and_then(|s| s.get("live"))
            .and_then(Json::as_u64),
        Some(2)
    );

    std::thread::sleep(Duration::from_millis(400));

    // Any session-registry touch sweeps; stats does, so the idle handles
    // are gone by the time its payload is built.
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats
            .get("sessions")
            .and_then(|s| s.get("live"))
            .and_then(Json::as_u64),
        Some(0)
    );
    let metrics = client.metrics().expect("metrics");
    let sessions = metrics.get("sessions").expect("metrics carry sessions");
    assert_eq!(sessions.get("expired").and_then(Json::as_u64), Some(2));
    assert_eq!(sessions.get("live").and_then(Json::as_u64), Some(0));
    assert_eq!(sessions.get("created").and_then(Json::as_u64), Some(2));

    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean exit");
}

#[test]
fn incremental_sessions_never_rerun_full_recognition() {
    let socket = std::env::temp_dir().join(format!(
        "pcservice-session-incr-{}.sock",
        std::process::id()
    ));
    let mut config = single_threaded(DaemonConfig::new(&socket));
    config.http_addr = Some("127.0.0.1:0".to_string());
    let daemon = Daemon::bind(config).expect("bind");
    let addr = daemon.http_addr().expect("http bound").to_string();
    let server = std::thread::spawn(move || daemon.run());

    let mut unix = connect(&socket).expect("unix connect");
    let mut http = pcservice::http::Client::connect(&addr).expect("http connect");

    let recognize_count = |metrics: &Json| {
        metrics
            .get("stages")
            .and_then(|s| s.get("recognize"))
            .and_then(|r| r.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let before = unix.metrics().expect("metrics");

    // Grow a session edge-by-edge over the unix socket...
    let created = ok_result(
        unix.query_v2(&envelope("session_create", None, vec![]))
            .unwrap(),
    );
    let handle = created
        .get("handle")
        .and_then(Json::as_str)
        .expect("handle")
        .to_string();
    const K: u64 = 12;
    for i in 0..K {
        let state = ok_result(
            unix.query_v2(&envelope(
                "session_add_vertex",
                Some(session_target(&handle)),
                add_vertex_params(&(0..i).collect::<Vec<_>>()),
            ))
            .unwrap(),
        );
        assert_eq!(
            state.get("maintenance").and_then(Json::as_str),
            Some("incremental"),
            "insertion {i} fell off the incremental path: {state}"
        );
        // ...and answer against the resident cotree over HTTP: the handle
        // is daemon-resident, so both transports address the same session.
        let response = ok_result(
            http.query_v2(&envelope(
                "session_query",
                Some(session_target(&handle)),
                vec![("kind", Json::str("min_cover_size"))],
            ))
            .unwrap(),
        );
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    }

    // The headline property: k insertions and k queries later, the full
    // recogniser has not run once more — only the incremental counter
    // moved.
    let after = unix.metrics().expect("metrics");
    assert_eq!(
        recognize_count(&after),
        recognize_count(&before),
        "session traffic re-ran full recognition"
    );
    let sessions = after.get("sessions").expect("metrics carry sessions");
    assert_eq!(
        sessions.get("recognize_incremental").and_then(Json::as_u64),
        Some(K)
    );
    assert_eq!(
        sessions.get("recognize_rebuild").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(sessions.get("mutations").and_then(Json::as_u64), Some(K));

    // Dropping over HTTP releases the handle for the unix side too.
    ok_result(
        http.query_v2(&envelope(
            "session_drop",
            Some(session_target(&handle)),
            vec![],
        ))
        .unwrap(),
    );
    let reply = unix
        .query_v2(&envelope(
            "session_query",
            Some(session_target(&handle)),
            vec![("kind", Json::str("min_cover_size"))],
        ))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("session_not_found")
    );

    unix.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean exit");
}
