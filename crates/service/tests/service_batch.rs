//! Service-layer integration tests: batch answers must agree with direct
//! library calls on a hundred seeded random cotrees, cache hits must return
//! exactly what cold solves return, and per-job isolation must hold under
//! the threaded executor.

use cograph::{random_cotree, CotreeShape};
use pathcover::prelude::*;
use pcservice::{
    Answer, CacheStatus, EngineConfig, GraphSpec, QueryEngine, QueryKind, QueryRequest,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn hundred_cotrees() -> Vec<Cotree> {
    let mut rng = ChaCha8Rng::seed_from_u64(555);
    let shapes = CotreeShape::ALL;
    (0..100)
        .map(|i| {
            let n = 2 + (i * 7) % 60;
            random_cotree(n, shapes[i % shapes.len()], &mut rng)
        })
        .collect()
}

#[test]
fn batch_agrees_with_direct_calls_on_100_cotrees() {
    let cotrees = hundred_cotrees();
    let engine = QueryEngine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });

    // One MinCoverSize and one FullCover query per cotree, all in one batch.
    let mut requests = Vec::new();
    for (i, tree) in cotrees.iter().enumerate() {
        requests.push(
            QueryRequest::new(QueryKind::MinCoverSize, GraphSpec::Cotree(tree.clone()))
                .with_id(format!("size-{i}")),
        );
        requests.push(
            QueryRequest::new(QueryKind::FullCover, GraphSpec::Cotree(tree.clone()))
                .with_id(format!("cover-{i}")),
        );
    }
    let responses = engine.execute_batch(None, &requests);
    assert_eq!(responses.len(), 200);

    for (i, tree) in cotrees.iter().enumerate() {
        // Direct library answers: the parallel pipeline and the sequential
        // baseline (Lin–Olariu–Pruesse) agree on the minimum size.
        let direct_parallel = path_cover(tree).len();
        let direct_sequential = sequential_path_cover(tree).len();
        assert_eq!(
            direct_parallel, direct_sequential,
            "library baselines disagree at {i}"
        );

        match &responses[2 * i].outcome {
            Ok(Answer::MinCoverSize { size }) => {
                assert_eq!(*size, direct_parallel, "service size diverges at {i}")
            }
            other => panic!("request size-{i} failed: {other:?}"),
        }
        match &responses[2 * i + 1].outcome {
            Ok(Answer::FullCover { cover, verified }) => {
                assert!(*verified, "cover-{i} not verified");
                assert_eq!(
                    cover.len(),
                    direct_parallel,
                    "service cover size diverges at {i}"
                );
                let report = verify_path_cover(&tree.to_graph(), cover);
                assert!(report.is_valid(), "cover-{i} invalid: {report:?}");
            }
            other => panic!("request cover-{i} failed: {other:?}"),
        }
    }
}

#[test]
fn cache_hits_return_identical_answers_to_cold_solves() {
    let cotrees = hundred_cotrees();
    // Cold engine: every answer is a miss (cache starts empty).
    let cold = QueryEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    // Warm engine: solve everything once, then ask again and compare.
    let warm = QueryEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });

    let requests: Vec<QueryRequest> = cotrees
        .iter()
        .flat_map(|tree| {
            QueryKind::ALL
                .into_iter()
                .filter(|k| *k != QueryKind::Recognize) // recognize needs a Graph source
                .map(|kind| QueryRequest::new(kind, GraphSpec::Cotree(tree.clone())))
        })
        .collect();

    let cold_responses = cold.execute_batch(None, &requests);
    warm.execute_batch(None, &requests); // fill the warm cache
    let warm_responses = warm.execute_batch(None, &requests);

    assert!(
        warm.cache_stats().hits > 0,
        "second pass must hit the cache"
    );
    for ((req, cold_resp), warm_resp) in requests.iter().zip(&cold_responses).zip(&warm_responses) {
        assert_eq!(
            warm_resp.meta.cache,
            CacheStatus::Hit,
            "expected hit for {:?}",
            req.kind
        );
        let cold_answer = cold_resp.outcome.as_ref().expect("cold solve succeeds");
        let warm_answer = warm_resp.outcome.as_ref().expect("warm solve succeeds");
        assert_eq!(
            warm_answer, cold_answer,
            "cache changed the answer for {:?}",
            req.kind
        );
        assert_eq!(warm_resp.meta.canonical_key, cold_resp.meta.canonical_key);
    }
}

#[test]
fn graph_ingested_queries_match_cotree_ingested_queries() {
    // The same graph submitted as raw edges and as its cotree must produce
    // the same minimum size (exercising recognition inside the service).
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let engine = QueryEngine::default();
    for _ in 0..20 {
        let tree = random_cotree(24, CotreeShape::Mixed, &mut rng);
        let graph = tree.to_graph();
        let via_graph = engine
            .execute(&QueryRequest::new(
                QueryKind::MinCoverSize,
                GraphSpec::Graph(graph),
            ))
            .outcome
            .expect("graph path");
        let via_cotree = engine
            .execute(&QueryRequest::new(
                QueryKind::MinCoverSize,
                GraphSpec::Cotree(tree),
            ))
            .outcome
            .expect("cotree path");
        assert_eq!(via_graph, via_cotree);
    }
}

#[test]
fn hamiltonian_batch_answers_match_library_decisions() {
    let cotrees = hundred_cotrees();
    let engine = QueryEngine::new(EngineConfig {
        threads: 8,
        ..EngineConfig::default()
    });
    let requests: Vec<QueryRequest> = cotrees
        .iter()
        .flat_map(|tree| {
            [
                QueryRequest::new(QueryKind::HamiltonianPath, GraphSpec::Cotree(tree.clone())),
                QueryRequest::new(QueryKind::HamiltonianCycle, GraphSpec::Cotree(tree.clone())),
            ]
        })
        .collect();
    let responses = engine.execute_batch(None, &requests);
    for (i, tree) in cotrees.iter().enumerate() {
        match &responses[2 * i].outcome {
            Ok(Answer::HamiltonianPath { exists, path }) => {
                assert_eq!(
                    *exists,
                    has_hamiltonian_path(tree),
                    "ham-path diverges at {i}"
                );
                assert_eq!(path.is_some(), *exists, "witness presence mismatch at {i}");
            }
            other => panic!("ham-path {i} failed: {other:?}"),
        }
        match &responses[2 * i + 1].outcome {
            Ok(Answer::HamiltonianCycle { exists }) => {
                assert_eq!(
                    *exists,
                    has_hamiltonian_cycle(tree),
                    "ham-cycle diverges at {i}"
                )
            }
            other => panic!("ham-cycle {i} failed: {other:?}"),
        }
    }
}

#[test]
fn malformed_jobs_do_not_poison_a_large_threaded_batch() {
    let engine = QueryEngine::new(EngineConfig {
        threads: 8,
        ..EngineConfig::default()
    });
    let requests: Vec<QueryRequest> = (0..200)
        .map(|i| {
            if i % 5 == 0 {
                // Bad: P4 inline — typed per-job failure.
                QueryRequest::new(
                    QueryKind::MinCoverSize,
                    GraphSpec::EdgeList("0 1\n1 2\n2 3".to_string()),
                )
            } else {
                QueryRequest::new(
                    QueryKind::MinCoverSize,
                    GraphSpec::CotreeTerm(format!(
                        "(j {})",
                        (0..2 + i % 6)
                            .map(|k| format!("v{k}"))
                            .collect::<Vec<_>>()
                            .join(" ")
                    )),
                )
            }
        })
        .collect();
    let responses = engine.execute_batch(None, &requests);
    for (i, resp) in responses.iter().enumerate() {
        if i % 5 == 0 {
            assert!(resp.outcome.is_err(), "job {i} should fail");
        } else {
            assert_eq!(
                resp.outcome,
                Ok(Answer::MinCoverSize { size: 1 }),
                "healthy job {i} was poisoned"
            );
        }
    }
}
