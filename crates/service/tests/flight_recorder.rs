//! End-to-end flight recorder: one daemon serving both transports under
//! fault injection, verifying that a stalled (slow) request is captured
//! with its pipeline stage spans, that the Chrome trace-event export is
//! well-formed, and that accept-time overload rejections carry a trace id
//! in both transport dialects.

#![cfg(unix)]

use pcservice::{Daemon, DaemonConfig, FaultSpec, Json, QueryKind, QueryRequest};
use pcservice::{GraphSpec, ProtoError};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pcservice-flightrec-{tag}-{}.sock",
        std::process::id()
    ))
}

/// One raw HTTP/1.1 round trip: returns (status line, headers, body).
fn raw_http(addr: &str, request: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("tcp connect");
    stream.write_all(request.as_bytes()).expect("send");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    let reply = String::from_utf8(reply).expect("utf-8 reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Connects until the daemon has a free slot again (used after dropping a
/// held connection, whose handler needs a moment to deregister).
fn connect_retrying(socket: &Path) -> pcservice::proto::Client<std::os::unix::net::UnixStream> {
    for _ in 0..100 {
        if let Ok(client) = pcservice::daemon::connect(socket) {
            return client;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon never freed a connection slot");
}

/// The spans of a trace object, as (name, json) pairs.
fn span_names(trace: &Json) -> Vec<String> {
    match trace.get("spans") {
        Some(Json::Arr(spans)) => spans
            .iter()
            .filter_map(|span| span.get("name").and_then(Json::as_str))
            .map(str::to_string)
            .collect(),
        _ => Vec::new(),
    }
}

#[test]
fn stalled_requests_are_captured_with_stage_spans_on_both_transports() {
    let socket = temp_socket("spans");
    let mut config = DaemonConfig::new(&socket);
    config.http_addr = Some("127.0.0.1:0".to_string());
    config.idle_timeout = Duration::from_secs(10);
    config.engine.threads = 1;
    // Every frame stalls 20 ms before dispatch — the PC_FAULTS harness's
    // frame_stall hook — so each request is unambiguously "slow" relative
    // to the sub-millisecond solve itself.
    config.faults = FaultSpec::parse("frame_stall_ms=20,seed=7").unwrap();
    let daemon = Daemon::bind(config).expect("bind");
    let http_addr = daemon.http_addr().expect("http bound").to_string();
    let handle = std::thread::spawn(move || daemon.run());

    // Framed transport: solve, then fetch the trace the solve left behind
    // with the `trace` verb.
    let mut unix_client = pcservice::daemon::connect(&socket).expect("unix connect");
    let request = QueryRequest::new(
        QueryKind::FullCover,
        GraphSpec::CotreeTerm("(j (u a b) (u c d))".to_string()),
    );
    let response = unix_client.solve(&request).expect("framed solve");
    let framed_trace_id = response
        .get("meta")
        .and_then(|m| m.get("trace_id"))
        .and_then(Json::as_str)
        .expect("framed solve carries a trace id")
        .to_string();
    let trace = unix_client
        .trace(Some(&framed_trace_id), false)
        .expect("framed trace fetch");
    assert_eq!(
        trace.get("trace_id").and_then(Json::as_str),
        Some(framed_trace_id.as_str())
    );
    let names = span_names(&trace);
    assert!(
        names.iter().any(|name| name == "stage:solve"),
        "stage spans recorded: {names:?}"
    );
    assert!(
        names.iter().any(|name| name == "cache:lookup"),
        "cache span recorded: {names:?}"
    );

    // HTTP transport: the client-supplied X-Request-Id names the trace.
    let body = r#"{"kind":"full_cover","cotree":"(j (u a b) (u c d))"}"#;
    let (status, _, _) = raw_http(
        &http_addr,
        &format!(
            "POST /v1/solve HTTP/1.1\r\nHost: t\r\nX-Request-Id: rec-http\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(status.contains("200"), "{status}");
    let (status, _, reply) = raw_http(
        &http_addr,
        "GET /v1/trace/rec-http HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("200"), "{status}");
    let reply = Json::parse(reply.trim_end()).expect("json reply");
    let trace = reply.get("trace").expect("trace payload");
    let names = span_names(trace);
    assert!(
        names.iter().any(|name| name.starts_with("stage:")),
        "stage spans over http: {names:?}"
    );

    // The Chrome export is a bare trace-event object with the keys the
    // viewers require on every event.
    let (status, _, chrome) = raw_http(
        &http_addr,
        "GET /v1/trace/rec-http?format=chrome HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("200"), "{status}");
    let chrome = Json::parse(chrome.trim_end()).expect("chrome export is json");
    let Some(Json::Arr(events)) = chrome.get("traceEvents") else {
        panic!("missing traceEvents: {chrome}");
    };
    assert!(!events.is_empty());
    for event in events {
        for key in ["ph", "ts", "dur", "name"] {
            assert!(event.get(key).is_some(), "event missing {key}: {event}");
        }
    }

    // Both requests are retained in the index (default sampling keeps
    // everything at this rate).
    let index = unix_client.trace(None, false).expect("trace index");
    assert!(
        index.get("retained").and_then(Json::as_u64) >= Some(2),
        "{index}"
    );

    // A miss answers 404 over HTTP and a typed error over the frame.
    let (status, _, _) = raw_http(
        &http_addr,
        "GET /v1/trace/absent HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("404"), "{status}");
    match unix_client.trace(Some("absent"), false) {
        Err(ProtoError::Remote { code, .. }) => assert_eq!(code, "trace_not_found"),
        other => panic!("expected trace_not_found, got {other:?}"),
    }

    unix_client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn accept_time_rejections_carry_trace_ids_on_both_transports() {
    let socket = temp_socket("reject");
    let mut config = DaemonConfig::new(&socket);
    config.http_addr = Some("127.0.0.1:0".to_string());
    config.idle_timeout = Duration::from_secs(10);
    config.engine.threads = 1;
    config.max_connections = 1;
    let daemon = Daemon::bind(config).expect("bind");
    let http_addr = daemon.http_addr().expect("http bound").to_string();
    let handle = std::thread::spawn(move || daemon.run());

    // Framed: a held connection fills the only slot; the next connect is
    // answered with one overloaded goodbye frame that must carry a
    // synthesized trace id (no request was ever read, so the server had
    // to mint one).
    let held = pcservice::daemon::connect(&socket).expect("first connection admitted");
    let raw = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(raw);
    let goodbye = pcservice::proto::read_frame(&mut reader).expect("goodbye frame");
    assert_eq!(
        goodbye.get("code").and_then(Json::as_str),
        Some("overloaded"),
        "{goodbye}"
    );
    assert!(
        goodbye
            .get("trace_id")
            .and_then(Json::as_str)
            .is_some_and(|id| id.starts_with("pc-")),
        "framed rejection names a trace: {goodbye}"
    );
    drop(reader);

    // HTTP: same cap breach, 503 dialect — trace id in the error body and
    // echoed as the X-Request-Id header. The goodbye is written at accept
    // time, before any request: just connect and read (writing a request
    // the server will never read risks an RST racing the response).
    let parked = TcpStream::connect(&http_addr).expect("parked http connection");
    let mut rejected = TcpStream::connect(&http_addr).expect("rejected http connection");
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reply = Vec::new();
    rejected.read_to_end(&mut reply).expect("read goodbye");
    let reply = String::from_utf8(reply).expect("utf-8 goodbye");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    assert!(status.contains("503"), "{status}");
    let body = Json::parse(body.trim_end()).expect("json body");
    let trace_id = body
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("http rejection names a trace")
        .to_string();
    assert!(trace_id.starts_with("pc-"), "{body}");
    assert!(
        headers.contains(&format!("X-Request-Id: {trace_id}")),
        "header echo: {headers}"
    );
    drop(parked);
    drop(held);

    let mut last = connect_retrying(&socket);
    last.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
}
