//! Cross-*version* equivalence: every v1 verb and route is a shim over the
//! v2 dispatcher, so a v1 call and its v2-envelope spelling must produce
//! byte-identical payloads once the volatile fields (timings, trace ids,
//! uptime) are stripped — over the framed protocol and over HTTP, answers,
//! errors, stats and metrics alike. Also pins the v1 deprecation surface:
//! `hello` advertises both versions, `/v1/*` responses carry a
//! `Deprecation: true` header and a `meta.api_version` marker.
#![cfg(unix)]

use cograph::{random_cotree, CotreeShape};
use pcservice::daemon::{connect, Daemon, DaemonConfig};
use pcservice::{proto, EngineConfig, GraphSpec, Json, QueryKind, QueryRequest};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// The workload: a few cotrees across the query kinds, graphs shipped as
/// edge-list text, plus one deliberate P4 failure so error payloads are
/// compared too.
fn workload() -> Vec<QueryRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut requests: Vec<QueryRequest> = (0..6)
        .map(|i| {
            let tree = random_cotree(
                3 + i * 4,
                CotreeShape::ALL[i % CotreeShape::ALL.len()],
                &mut rng,
            );
            QueryRequest::new(
                QueryKind::ALL[i % QueryKind::ALL.len()],
                GraphSpec::Graph(tree.to_graph()),
            )
            .with_id(format!("job-{i}"))
        })
        .collect();
    requests.push(
        QueryRequest::new(
            QueryKind::FullCover,
            GraphSpec::EdgeList("0 1\n1 2\n2 3\n".to_string()),
        )
        .with_id("p4-error"),
    );
    requests
}

/// Strips the fields that legitimately differ between two calls: per-call
/// timings and trace ids, and the daemon's uptime counter.
fn strip_volatile(value: &Json) -> Json {
    match value {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| {
                    k != "solve_us" && k != "total_us" && k != "trace_id" && k != "uptime_secs"
                })
                .map(|(k, v)| (k.clone(), strip_volatile(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

/// The v2 envelope for one v1-style solve: the request's graph fields
/// become the target, kind and id the params.
fn solve_envelope(request: &QueryRequest) -> Json {
    let mut params = vec![("kind", Json::str(request.kind.as_str()))];
    if let Some(id) = &request.id {
        params.push(("id", Json::str(id.clone())));
    }
    Json::obj(vec![
        ("api_version", Json::num(2)),
        ("op", Json::str("solve")),
        (
            "target",
            request.graph.to_json().expect("inline specs serialise"),
        ),
        ("params", Json::obj(params)),
    ])
}

/// Unwraps an acknowledged v2 envelope to its result payload.
fn ok_result(reply: Json) -> Json {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "envelope rejected: {reply}"
    );
    reply
        .get("result")
        .cloned()
        .expect("ok reply carries a result")
}

#[test]
fn v1_and_v2_spellings_answer_byte_identically() {
    let requests = workload();
    let socket =
        std::env::temp_dir().join(format!("pcservice-xversion-{}.sock", std::process::id()));
    let mut config = DaemonConfig::new(&socket);
    config.http_addr = Some("127.0.0.1:0".to_string());
    config.idle_timeout = Duration::from_secs(10);
    config.engine = EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    };
    let daemon = Daemon::bind(config).expect("bind");
    let addr = daemon.http_addr().expect("http bound").to_string();
    let server = std::thread::spawn(move || daemon.run());

    let mut unix = connect(&socket).expect("unix connect");
    let mut http = pcservice::http::Client::connect(&addr).expect("http connect");

    // Warm the shared cache once so every comparison below sees the same
    // cache disposition regardless of which spelling runs first.
    unix.batch(None, requests.clone()).expect("warm-up batch");

    // solve: v1 verb/route vs v2 envelope, on both transports.
    for request in &requests {
        let v1_unix = unix.solve(request).expect("v1 unix solve");
        let v2_unix = ok_result(
            unix.query_v2(&solve_envelope(request))
                .expect("v2 unix solve"),
        );
        let v1_http = http.solve(request).expect("v1 http solve");
        let v2_http = ok_result(
            http.query_v2(&solve_envelope(request))
                .expect("v2 http solve"),
        );
        let baseline = strip_volatile(&v1_unix).to_string();
        for (label, other) in [
            ("v2 over unix", &v2_unix),
            ("v1 over http", &v1_http),
            ("v2 over http", &v2_http),
        ] {
            assert_eq!(
                strip_volatile(other).to_string(),
                baseline,
                "{:?}: {label} diverges from the v1 unix answer",
                request.id
            );
        }
    }

    // batch: the whole response array must agree elementwise.
    let v1_batch = unix.batch(None, requests.clone()).expect("v1 batch");
    let batch_envelope = Json::obj(vec![
        ("api_version", Json::num(2)),
        ("op", Json::str("batch")),
        (
            "params",
            Json::obj(vec![(
                "requests",
                Json::Arr(requests.iter().map(QueryRequest::to_json).collect()),
            )]),
        ),
    ]);
    let v2_batch = ok_result(unix.query_v2(&batch_envelope).expect("v2 batch"));
    let Some(Json::Arr(v2_responses)) = v2_batch.get("responses") else {
        panic!("v2 batch result missing responses: {v2_batch}");
    };
    assert_eq!(v1_batch.len(), v2_responses.len());
    for (i, (v1, v2)) in v1_batch.iter().zip(v2_responses).enumerate() {
        assert_eq!(
            strip_volatile(v2).to_string(),
            strip_volatile(v1).to_string(),
            "batch response {i} diverges between versions"
        );
    }

    // stats and metrics: same payload builder behind both spellings, so
    // back-to-back calls agree once uptime is stripped (no queries run in
    // between to move any counter).
    let op_envelope =
        |op: &str| Json::obj(vec![("api_version", Json::num(2)), ("op", Json::str(op))]);
    let v1_stats = unix.stats().expect("v1 stats");
    let v2_stats = ok_result(unix.query_v2(&op_envelope("stats")).expect("v2 stats"));
    assert_eq!(
        strip_volatile(&v2_stats).to_string(),
        strip_volatile(&v1_stats).to_string(),
        "stats payloads diverge between versions"
    );
    let v1_metrics = unix.metrics().expect("v1 metrics");
    let v2_metrics = ok_result(unix.query_v2(&op_envelope("metrics")).expect("v2 metrics"));
    assert_eq!(
        strip_volatile(&v2_metrics).to_string(),
        strip_volatile(&v1_metrics).to_string(),
        "metrics payloads diverge between versions"
    );

    // snapshot without --snapshot: both spellings refuse with the same
    // typed code; v1 surfaces it as a client error, v2 in-band.
    let v1_snapshot = unix.save_snapshot().expect_err("snapshot unconfigured");
    let v2_snapshot = unix
        .query_v2(&op_envelope("snapshot"))
        .expect("v2 snapshot");
    assert!(
        v1_snapshot.to_string().contains("snapshot_unconfigured"),
        "unexpected v1 error: {v1_snapshot}"
    );
    assert_eq!(v2_snapshot.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        v2_snapshot
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("snapshot_unconfigured")
    );

    unix.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean exit");
}

#[test]
fn hello_advertises_both_supported_versions() {
    let socket = std::env::temp_dir().join(format!(
        "pcservice-xversion-hello-{}.sock",
        std::process::id()
    ));
    let daemon = Daemon::bind(DaemonConfig::new(&socket)).expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    // Raw handshake, because proto::Client swallows the hello reply after
    // checking only the legacy `proto` field.
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    proto::write_frame(&mut stream, &proto::Request::Hello { proto: 1 }.to_json())
        .expect("send hello");
    let hello = proto::read_frame(&mut reader).expect("hello frame");
    assert_eq!(hello.get("type").and_then(Json::as_str), Some("hello"));
    assert_eq!(hello.get("proto").and_then(Json::as_u64), Some(1));
    let Some(Json::Arr(versions)) = hello.get("supported_versions") else {
        panic!("hello missing supported_versions: {hello}");
    };
    let versions: Vec<u64> = versions.iter().filter_map(Json::as_u64).collect();
    assert_eq!(versions, [1, 2]);
    drop(reader);
    drop(stream);

    let mut client = connect(&socket).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean exit");
}

#[test]
fn v1_routes_carry_the_deprecation_surface_and_v2_does_not() {
    let mut config = DaemonConfig::http("127.0.0.1:0");
    config.idle_timeout = Duration::from_secs(10);
    let daemon = Daemon::bind(config).expect("bind");
    let addr = daemon.http_addr().expect("http bound").to_string();
    let server = std::thread::spawn(move || daemon.run());

    // Raw HTTP, because the typed client hides headers.
    let fetch = |method: &str, path: &str, body: Option<&str>| -> (Vec<String>, Json) {
        let stream = std::net::TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        stream.flush().expect("flush");
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read header");
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            headers.push(line);
        }
        let mut body = String::new();
        std::io::Read::read_to_string(&mut reader, &mut body).expect("read body");
        (headers, Json::parse(body.trim_end()).expect("json body"))
    };
    let has_deprecation = |headers: &[String]| {
        headers
            .iter()
            .any(|h| h.eq_ignore_ascii_case("deprecation: true"))
    };

    // Every /v1 route answers with the deprecation header and a
    // `meta.api_version` marker at the body's top level.
    let (headers, body) = fetch("GET", "/v1/stats", None);
    assert!(has_deprecation(&headers), "missing header: {headers:?}");
    assert_eq!(
        body.get("meta")
            .and_then(|m| m.get("api_version"))
            .and_then(Json::as_u64),
        Some(1)
    );
    let (headers, body) = fetch(
        "POST",
        "/v1/solve",
        Some(r#"{"kind":"min_cover_size","cotree":"(j a b)"}"#),
    );
    assert!(has_deprecation(&headers), "missing header: {headers:?}");
    assert_eq!(
        body.get("meta")
            .and_then(|m| m.get("api_version"))
            .and_then(Json::as_u64),
        Some(1)
    );
    // ...but the marker stays *outside* the response payload, which is the
    // byte-identical v2 result.
    assert_eq!(
        body.get("response")
            .and_then(|r| r.get("meta"))
            .and_then(|m| m.get("api_version")),
        None
    );

    // The v2 endpoint and the version-neutral health probe carry neither.
    let (headers, body) = fetch(
        "POST",
        "/v2/query",
        Some(r#"{"op":"solve","target":{"cotree":"(j a b)"},"params":{"kind":"min_cover_size"}}"#),
    );
    assert!(
        !has_deprecation(&headers),
        "v2 marked deprecated: {headers:?}"
    );
    assert_eq!(body.get("api_version").and_then(Json::as_u64), Some(2));
    assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true));
    let (headers, body) = fetch("GET", "/healthz", None);
    assert!(!has_deprecation(&headers), "healthz marked deprecated");
    assert_eq!(body.get("meta"), None);

    let mut client = pcservice::http::Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean exit");
}
