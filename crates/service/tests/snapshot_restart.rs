//! Warm-start equivalence across a daemon restart.
//!
//! The contract of `pcservice::snapshot`: a daemon restarted with
//! `--snapshot` must answer a previously-seen query as a cache hit on its
//! *first* request, with answers byte-identical to the first daemon's
//! (modulo timing and cache-disposition metadata), and a save-now request
//! must checkpoint without stopping the daemon.

#![cfg(unix)]

use pcservice::daemon::connect;
use pcservice::{Daemon, DaemonConfig, GraphSpec, Json, QueryKind, QueryRequest};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

fn temp_file(tag: &str, suffix: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "pcsnap-restart-{}-{tag}-{n}{suffix}",
        std::process::id()
    ))
}

fn spawn_daemon(
    socket: &std::path::Path,
    snapshot: &std::path::Path,
    checkpoint: Option<Duration>,
) -> std::thread::JoinHandle<io::Result<()>> {
    let mut config = DaemonConfig::new(socket);
    config.idle_timeout = Duration::from_secs(10);
    config.snapshot_path = Some(snapshot.to_path_buf());
    config.checkpoint_interval = checkpoint;
    let daemon = Daemon::bind(config).expect("bind");
    std::thread::spawn(move || daemon.run())
}

/// The workload: every query kind, mixed ingestion formats, including a
/// graph-keyed request (exercising the fingerprint link) and a non-cograph
/// (errors are not cached and must re-fail identically).
fn workload() -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(u (j a b) c)".to_string()),
        )
        .with_id("q1"),
        QueryRequest::new(
            QueryKind::HamiltonianPath,
            GraphSpec::EdgeList("0 1\n1 2\n0 2".to_string()),
        )
        .with_id("q2"),
        QueryRequest::new(
            QueryKind::FullCover,
            GraphSpec::CotreeTerm("(j (u a b) (u c d))".to_string()),
        )
        .with_id("q3"),
        QueryRequest::new(
            QueryKind::HamiltonianCycle,
            GraphSpec::EdgeList("0 1\n1 2\n0 2".to_string()),
        )
        .with_id("q4"),
        QueryRequest::new(
            QueryKind::Recognize,
            GraphSpec::EdgeList("0 1\n1 2\n2 3".to_string()),
        )
        .with_id("p4"),
    ]
}

/// Zeroes the timing fields and the cache disposition, the only legitimate
/// differences between a cold and a warm answer.
fn strip_volatile(response: &Json) -> Json {
    match response {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(key, value)| {
                    let value = match key.as_str() {
                        "meta" => strip_volatile(value),
                        "solve_us" | "total_us" => Json::num(0),
                        "cache" => Json::str("x"),
                        "trace_id" => Json::str("x"),
                        _ => value.clone(),
                    };
                    (key.clone(), value)
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

fn cache_status(response: &Json) -> Option<&str> {
    response
        .get("meta")
        .and_then(|m| m.get("cache"))
        .and_then(Json::as_str)
}

#[test]
fn restart_serves_previous_queries_warm_and_byte_identical() {
    let socket = temp_file("warm", ".sock");
    let snapshot = temp_file("warm", ".pcsnap");

    // First life: cold daemon, run the workload, shut down.
    let handle = spawn_daemon(&socket, &snapshot, None);
    let mut client = connect(&socket).expect("connect");
    let first_run = client.batch(None, workload()).expect("first-life batch");
    for response in &first_run {
        let id = response.get("id").and_then(Json::as_str).unwrap_or("?");
        // q4 repeats q2's graph and may hit within the batch; the first
        // occurrence of every graph must be cold on a fresh engine.
        if id != "q4" {
            assert_ne!(
                cache_status(response),
                Some("hit"),
                "first occurrence cannot be warm on a fresh engine: {response}"
            );
        }
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
    assert!(snapshot.exists(), "shutdown must have saved the snapshot");

    // Second life: same snapshot. The very first request of the new
    // process must hit the cache — that is the whole point.
    let handle = spawn_daemon(&socket, &snapshot, None);
    let mut client = connect(&socket).expect("reconnect");
    let stats = client.stats().expect("stats");
    let loaded = stats
        .get("snapshot")
        .and_then(|s| s.get("loaded_entries"))
        .and_then(Json::as_u64)
        .expect("snapshot metadata in stats");
    // q1, q3 and the q2/q4 triangle: three distinct canonical cotrees.
    assert_eq!(loaded, 3, "all cacheable entries reloaded, got {stats}");

    let second_run = client.batch(None, workload()).expect("second-life batch");
    assert_eq!(second_run.len(), first_run.len());
    for (first, second) in first_run.iter().zip(&second_run) {
        assert_eq!(
            strip_volatile(first).to_string(),
            strip_volatile(second).to_string(),
            "answers must be byte-identical across the restart"
        );
    }
    // Every cacheable query is a hit on its first post-restart execution;
    // the P4 rejection is not cached and must simply re-fail identically.
    for response in &second_run {
        let id = response.get("id").and_then(Json::as_str).unwrap_or("?");
        if id == "p4" {
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        } else {
            assert_eq!(
                cache_status(response),
                Some("hit"),
                "first post-restart execution of {id} must be warm: {response}"
            );
        }
    }
    client.shutdown().expect("second shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn save_now_checkpoints_without_stopping_and_checkpointer_persists() {
    let socket = temp_file("checkpoint", ".sock");
    let snapshot = temp_file("checkpoint", ".pcsnap");

    // Background checkpointing at a tight interval, so the test observes a
    // save that no shutdown triggered.
    let handle = spawn_daemon(&socket, &snapshot, Some(Duration::from_millis(100)));
    let mut client = connect(&socket).expect("connect");
    client
        .solve(&QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b c)".to_string()),
        ))
        .expect("warm one entry");

    // Save-now over the wire: acknowledged with what was written, daemon
    // keeps serving.
    let reply = client.save_snapshot().expect("save-now");
    assert_eq!(reply.get("entries").and_then(Json::as_u64), Some(1));
    assert!(snapshot.exists(), "save-now must have written the file");
    let after_save = client.stats().expect("still serving");
    assert!(
        after_save
            .get("snapshot")
            .and_then(|s| s.get("last_checkpoint_unix"))
            .and_then(Json::as_u64)
            .is_some(),
        "checkpoint time recorded: {after_save}"
    );

    // The background thread checkpoints on its own: remove the file and
    // wait for the checkpointer to re-create it.
    std::fs::remove_file(&snapshot).expect("remove between checkpoints");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !snapshot.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "checkpoint thread never saved"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
    let _ = std::fs::remove_file(&snapshot);
}
