//! The query engine: ingest → recognize → cache → solve → verify.
//!
//! [`QueryEngine::execute`] serves one request; [`QueryEngine::execute_batch`]
//! fans a slice of requests across a configurable pool of std threads. Jobs
//! are isolated two ways:
//!
//! * every error is typed ([`ServiceError`]) and confined to the job's
//!   response — a malformed input fails that job, never the batch;
//! * the solver runs under `catch_unwind`, so even a panic inside the
//!   algorithm stack is converted into [`ServiceError::JobPanicked`] for
//!   that job alone.
//!
//! Every `FullCover` answer (and every Hamiltonian witness path) is checked
//! with [`pcgraph::verify_path_cover`] against the request's graph before it
//! is returned; a failure is reported as
//! [`ServiceError::CoverVerificationFailed`] rather than silently passed on.

use crate::cache::{graph_fingerprint, CacheStats, CotreeCache, SolveEntry};
use crate::error::ServiceError;
use crate::ingest::{self, GraphFormat, Ingested};
use crate::json::Json;
use crate::model::{
    Answer, CacheStatus, GraphSpec, QueryKind, QueryRequest, QueryResponse, ResponseMeta,
};
use crate::snapshot::{self, LoadOutcome, SaveReport, SnapshotError};
use crate::telemetry::{
    MetricsReport, Outcome, PipelineClock, PoolReport, RequestCtx, Stage, Telemetry,
};
use crate::trace::{FlightRecorder, Span, TraceConfig};
use cograph::{try_recognize, Cotree};
use parpool::Pool;
use pathcover::{hamiltonian_path, path_cover, pool_path_cover};
use pcgraph::{verify_path_cover, Graph, PathCover};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for [`QueryEngine::execute_batch`]; `0` means one per
    /// available CPU.
    pub threads: usize,
    /// Verify every returned cover / witness path against the graph.
    pub verify_covers: bool,
    /// Consult and fill the cotree cache.
    pub use_cache: bool,
    /// Maximum number of cotrees kept resident (split across the shards).
    pub cache_capacity: usize,
    /// Cotree cache shard count (rounded up to a power of two); `0` means
    /// [`crate::cache::DEFAULT_SHARDS`].
    pub cache_shards: usize,
    /// Record per-stage/request telemetry (see [`crate::telemetry`]);
    /// `false` installs a no-op recorder with zero timing calls.
    pub telemetry: bool,
    /// Emit a structured log line for requests slower than this many
    /// microseconds (`serve --slow-ms`); `None` logs only internal
    /// failures.
    pub slow_log_micros: Option<u64>,
    /// Worker threads of the work-stealing pool used for large `FullCover`
    /// solves; `0` resolves to the machine's available parallelism.
    pub pool_threads: usize,
    /// Minimum vertex count before a `FullCover` solve moves to the
    /// work-stealing pool; `0` disables parallel solving. The pool only
    /// engages when at least two worker threads are available, so the
    /// default never slows down a single-core host.
    pub parallel_min_vertices: usize,
    /// Admission cap on live daemon-resident session handles; creating a
    /// session past the cap fails with [`ServiceError::TooManySessions`].
    pub max_sessions: usize,
    /// Idle time after which an untouched session handle becomes eligible
    /// for the garbage sweep (run opportunistically on registry traffic).
    pub session_idle_ttl: std::time::Duration,
    /// Admission cap on concurrently executing work requests (solves,
    /// batches, session ops); `0` means unlimited. Past the cap,
    /// [`QueryEngine::try_admit`] fails with [`ServiceError::Overloaded`]
    /// instead of queueing, so overload turns into fast typed rejections
    /// rather than pile-up.
    pub max_inflight: usize,
    /// Flight-recorder configuration: per-request span capture and the
    /// tail-sampled trace ring served by `GET /v1/trace` and the `trace`
    /// verb (see [`crate::trace`]). [`TraceConfig::off`] removes every
    /// trace timestamp from the request hot path.
    pub trace: TraceConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            verify_covers: true,
            use_cache: true,
            cache_capacity: 1024,
            cache_shards: 0,
            telemetry: true,
            slow_log_micros: None,
            pool_threads: 0,
            parallel_min_vertices: 1 << 16,
            max_sessions: 256,
            session_idle_ttl: std::time::Duration::from_secs(600),
            max_inflight: 0,
            trace: TraceConfig::default(),
        }
    }
}

/// Backoff hint carried in [`ServiceError::Overloaded`] rejections issued
/// by the admission gate and per-connection budgets.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

/// A graph resolved to its cotree, ready to solve. Built by the resolve
/// path here and by [`crate::session`] from a resident session cotree.
pub(crate) struct Resolved {
    pub(crate) entry: Arc<SolveEntry>,
    /// The graph as ingested (kept for cover verification); absent when the
    /// request arrived as a cotree and no graph was materialised yet.
    pub(crate) graph: Option<Arc<Graph>>,
    pub(crate) cache: CacheStatus,
}

/// The batch's shared graph, parsed once; every job using it still performs
/// its own cache lookup so cache hits stay observable per response.
enum SharedPrep {
    Graph(Arc<Graph>),
    Cotree(Arc<cograph::Cotree>),
}

/// Snapshot persistence state of an engine, surfaced through the `stats`
/// frame and `GET /v1/stats` (see [`crate::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The snapshot file the engine saves to and was loaded from.
    pub path: PathBuf,
    /// Entries imported at startup (0 after a cold start).
    pub loaded_entries: usize,
    /// Unix time of the most recent successful save, `None` before the
    /// first checkpoint of this process.
    pub last_checkpoint_unix: Option<u64>,
}

/// The batched query engine.
pub struct QueryEngine {
    config: EngineConfig,
    cache: CotreeCache,
    started: Instant,
    snapshot: Mutex<Option<SnapshotMeta>>,
    telemetry: Telemetry,
    /// Lazily created work-stealing pool shared by all large solves; the
    /// mutex serialises parallel solves so one huge graph gets every core.
    pool: Mutex<Option<Pool>>,
    /// Daemon-resident session handles (see [`crate::session`]).
    pub(crate) sessions: crate::session::SessionRegistry,
    /// Work requests currently admitted (the admission-gate counter; the
    /// telemetry gauge mirrors it for export).
    inflight: AtomicUsize,
    /// The bounded, tail-sampled ring of finished request traces (see
    /// [`crate::trace`]); shared with the transports for export.
    recorder: FlightRecorder,
}

/// RAII permit for one admitted work request, handed out by
/// [`QueryEngine::try_admit`]. Dropping it releases the admission slot and
/// decrements the in-flight gauge, so a permit can never leak across a
/// panic or early return.
pub struct InflightGuard<'e> {
    engine: &'e QueryEngine,
}

impl std::fmt::Debug for InflightGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("InflightGuard")
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.engine.inflight.fetch_sub(1, Ordering::Release);
        self.engine.telemetry.inflight_finished();
    }
}

impl Default for QueryEngine {
    fn default() -> Self {
        QueryEngine::new(EngineConfig::default())
    }
}

impl QueryEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let shards = if config.cache_shards == 0 {
            crate::cache::DEFAULT_SHARDS
        } else {
            config.cache_shards
        };
        let cache = CotreeCache::with_shards(config.cache_capacity, shards);
        let telemetry = Telemetry::new(config.telemetry, config.slow_log_micros);
        // Publish the resolved pool size from startup so the pool gauges
        // are present (at their true value) before the first parallel
        // solve, not only after one.
        if config.parallel_min_vertices > 0 {
            let requested = match config.pool_threads {
                0 => None,
                t => Some(t),
            };
            let threads = parpool::resolve_threads(requested);
            if threads >= 2 {
                telemetry.set_pool_workers(threads as u64);
            }
        }
        let recorder = FlightRecorder::new(config.trace.clone());
        QueryEngine {
            config,
            cache,
            started: Instant::now(),
            snapshot: Mutex::new(None),
            telemetry,
            pool: Mutex::new(None),
            sessions: crate::session::SessionRegistry::new(),
            inflight: AtomicUsize::new(0),
            recorder,
        }
    }

    /// Tries to admit one work request under the `max_inflight` cap. On
    /// success the returned guard holds the slot until dropped; past the
    /// cap the request is shed with [`ServiceError::Overloaded`] carrying
    /// the [`DEFAULT_RETRY_AFTER_MS`] backoff hint. A cap of `0` admits
    /// everything (but still maintains the in-flight gauge).
    pub fn try_admit(&self) -> Result<InflightGuard<'_>, ServiceError> {
        let max = self.config.max_inflight;
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if max != 0 && current >= max {
                self.telemetry.overload_rejected();
                return Err(ServiceError::Overloaded {
                    retry_after_ms: DEFAULT_RETRY_AFTER_MS,
                });
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.telemetry.inflight_started();
                    return Ok(InflightGuard { engine: self });
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// The engine's telemetry registry (shared with the daemon's accept
    /// loops and transports).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The engine's flight recorder (the trace store served by
    /// `GET /v1/trace`, the `trace` verb and the v2 `trace_*` ops).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Returns `ctx` with a span collector attached when the flight
    /// recorder is on and the context has none yet; otherwise a plain
    /// clone. Transports call this once at dispatch so pre-engine work
    /// (admission, session-lock waits) lands in the same trace as the
    /// pipeline stages.
    pub fn traced_ctx(&self, ctx: &RequestCtx) -> RequestCtx {
        if ctx.collector.is_some() || !self.recorder.enabled() {
            ctx.clone()
        } else {
            ctx.clone().with_collector(self.recorder.begin())
        }
    }

    /// A point-in-time copy of every metric: the telemetry registry plus
    /// the cache counters and uptime the engine owns.
    pub fn metrics_report(&self) -> MetricsReport {
        self.telemetry.report(
            self.cache_stats(),
            self.cache_shard_stats(),
            self.uptime_secs(),
        )
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Seconds since this engine was constructed (the daemon's uptime).
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Attaches snapshot persistence: loads `path` into the cache if it
    /// exists (quarantining it to `<path>.corrupt` on any verification
    /// failure — see [`crate::snapshot::load_or_quarantine`]) and remembers
    /// the path for [`QueryEngine::save_snapshot`].
    pub fn attach_snapshot(&self, path: impl Into<PathBuf>) -> LoadOutcome {
        let path = path.into();
        let outcome = snapshot::load_or_quarantine(&self.cache, &path);
        let loaded_entries = match &outcome {
            LoadOutcome::Warm(report) => report.entries,
            LoadOutcome::ColdStart
            | LoadOutcome::Unreadable(_)
            | LoadOutcome::Quarantined { .. } => 0,
        };
        *self.snapshot.lock().expect("snapshot state") = Some(SnapshotMeta {
            path,
            loaded_entries,
            last_checkpoint_unix: None,
        });
        outcome
    }

    /// Saves the cache to the attached snapshot path (atomic tmp + rename)
    /// and records the checkpoint time. Fails with
    /// [`SnapshotError::NotConfigured`] when no snapshot is attached.
    pub fn save_snapshot(&self) -> Result<SaveReport, SnapshotError> {
        let path = self
            .snapshot
            .lock()
            .expect("snapshot state")
            .as_ref()
            .map(|meta| meta.path.clone())
            .ok_or(SnapshotError::NotConfigured)?;
        let report = match snapshot::save(&self.cache, &path) {
            Ok(report) => {
                self.telemetry.checkpoint_saved(report.elapsed_micros);
                report
            }
            Err(error) => {
                self.telemetry.checkpoint_failed();
                return Err(error);
            }
        };
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_secs();
        if let Some(meta) = self.snapshot.lock().expect("snapshot state").as_mut() {
            meta.last_checkpoint_unix = Some(now);
        }
        Ok(report)
    }

    /// The snapshot persistence state, when attached.
    pub fn snapshot_meta(&self) -> Option<SnapshotMeta> {
        self.snapshot.lock().expect("snapshot state").clone()
    }

    /// Aggregated snapshot of the cotree cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-shard snapshot of the cotree cache counters.
    pub fn cache_shard_stats(&self) -> Vec<crate::cache::ShardStats> {
        self.cache.shard_stats()
    }

    /// Serves one request (requests using [`GraphSpec::Shared`] fail with
    /// [`ServiceError::SharedGraphMissing`]; use a batch for those). A
    /// trace ID is synthesized; transports supply their own via
    /// [`QueryEngine::execute_ctx`].
    pub fn execute(&self, request: &QueryRequest) -> QueryResponse {
        self.execute_ctx(request, &RequestCtx::generate())
    }

    /// Serves one request under a caller-supplied [`RequestCtx`]; the
    /// context's trace ID is echoed in the response metadata and any slow
    /// log line.
    pub fn execute_ctx(&self, request: &QueryRequest, ctx: &RequestCtx) -> QueryResponse {
        self.guarded_execute(request, None, ctx)
    }

    /// Serves a batch: resolves the optional shared graph once, then fans
    /// the requests across the configured thread pool. The response order
    /// matches the request order.
    pub fn execute_batch(
        &self,
        shared: Option<&GraphSpec>,
        requests: &[QueryRequest],
    ) -> Vec<QueryResponse> {
        self.execute_batch_ctx(shared, requests, &RequestCtx::generate())
    }

    /// [`QueryEngine::execute_batch`] under a caller-supplied
    /// [`RequestCtx`]: every job in the batch shares the one trace ID.
    pub fn execute_batch_ctx(
        &self,
        shared: Option<&GraphSpec>,
        requests: &[QueryRequest],
        ctx: &RequestCtx,
    ) -> Vec<QueryResponse> {
        let shared_resolved = shared.map(|spec| self.prepare_shared(spec));
        let threads = self.effective_threads(requests.len());
        if threads <= 1 {
            return requests
                .iter()
                .map(|r| self.guarded_execute(r, shared_resolved.as_ref(), ctx))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<QueryResponse>> =
            requests.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let response =
                        self.guarded_execute(&requests[i], shared_resolved.as_ref(), ctx);
                    slots[i].set(response).expect("each slot is written once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot filled"))
            .collect()
    }

    fn effective_threads(&self, jobs: usize) -> usize {
        let hw = if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        hw.min(jobs.max(1))
    }

    /// Runs one job with panic containment.
    fn guarded_execute(
        &self,
        request: &QueryRequest,
        shared: Option<&Result<SharedPrep, ServiceError>>,
        ctx: &RequestCtx,
    ) -> QueryResponse {
        // Attach a span collector here (not in the transports) so direct
        // library callers and every batch job get traced too. A context
        // that already carries one — dispatched by a transport, so the
        // trace includes admission and lock waits — is kept as-is.
        let traced;
        let ctx = if ctx.collector.is_none() && self.recorder.enabled() {
            traced = self.traced_ctx(ctx);
            &traced
        } else {
            ctx
        };
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| {
            self.execute_inner(request, shared, ctx)
        })) {
            Ok(response) => response,
            Err(payload) => {
                let total_micros = started.elapsed().as_micros() as u64;
                let response = QueryResponse {
                    id: request.id.clone(),
                    kind: request.kind,
                    outcome: Err(ServiceError::JobPanicked(panic_message(payload))),
                    meta: ResponseMeta {
                        solve_micros: 0,
                        total_micros,
                        cache: CacheStatus::Bypass,
                        canonical_key: None,
                        vertices: 0,
                        trace_id: Some(ctx.trace_id.clone()),
                    },
                };
                self.finish_request(&response, ctx);
                response
            }
        }
    }

    fn execute_inner(
        &self,
        request: &QueryRequest,
        shared: Option<&Result<SharedPrep, ServiceError>>,
        ctx: &RequestCtx,
    ) -> QueryResponse {
        let started = Instant::now();
        let mut clock = self.telemetry.pipeline_clock_ctx(ctx);
        // Deadlines are checked cooperatively at stage boundaries: before
        // ingest/recognition and again before the solve, so an
        // already-expired request never starts the expensive work.
        let resolved = if ctx.deadline_expired() {
            Err(ServiceError::DeadlineExceeded)
        } else {
            self.resolve_request(&request.graph, shared, &mut clock)
        };
        let (outcome, meta) = match resolved {
            Err(error) => (
                Err(error),
                ResponseMeta {
                    solve_micros: 0,
                    total_micros: 0,
                    cache: CacheStatus::Bypass,
                    canonical_key: None,
                    vertices: 0,
                    trace_id: Some(ctx.trace_id.clone()),
                },
            ),
            Ok(resolved) => {
                let solve_started = Instant::now();
                let outcome = if ctx.deadline_expired() {
                    Err(ServiceError::DeadlineExceeded)
                } else {
                    self.solve(request.kind, &resolved, &mut clock)
                };
                (
                    outcome,
                    ResponseMeta {
                        solve_micros: solve_started.elapsed().as_micros() as u64,
                        total_micros: 0,
                        cache: resolved.cache,
                        canonical_key: Some(resolved.entry.key),
                        vertices: resolved.entry.cotree.num_vertices(),
                        trace_id: Some(ctx.trace_id.clone()),
                    },
                )
            }
        };
        let mut meta = meta;
        meta.total_micros = started.elapsed().as_micros() as u64;
        let response = QueryResponse {
            id: request.id.clone(),
            kind: request.kind,
            outcome,
            meta,
        };
        self.finish_request(&response, ctx);
        response
    }

    /// Books a completed request into the registry and emits the
    /// structured slow-request/error log line when warranted.
    pub(crate) fn finish_request(&self, response: &QueryResponse, ctx: &RequestCtx) {
        let outcome = match &response.outcome {
            Ok(_) => Outcome::Ok,
            Err(error) => Outcome::from_error_code(error.code()),
        };
        if matches!(response.outcome, Err(ServiceError::DeadlineExceeded)) {
            self.telemetry.deadline_exceeded();
        }
        let total = response.meta.total_micros;
        self.telemetry.record_request(response.kind, outcome, total);
        if self.telemetry.should_log(outcome, total) {
            crate::log::log(
                crate::log::Level::Warn,
                "slow_request",
                Some(&ctx.trace_id),
                &[
                    ("kind", Json::str(response.kind.as_str())),
                    ("outcome", Json::str(outcome.as_str())),
                    ("total_us", Json::num(total)),
                    ("cache", Json::str(response.meta.cache.as_str())),
                    ("vertices", Json::num(response.meta.vertices as u64)),
                ],
            );
        }
        if let Some(collector) = &ctx.collector {
            let outcome_code = match &response.outcome {
                Ok(_) => "ok",
                Err(error) => error.code(),
            };
            // Errored, shed and deadline-exceeded requests are exactly the
            // traces an operator goes looking for — tail sampling must
            // never drop them.
            let protected = matches!(
                response.outcome,
                Err(ServiceError::DeadlineExceeded) | Err(ServiceError::Overloaded { .. })
            ) || matches!(outcome, Outcome::Internal);
            self.recorder.commit(
                &ctx.trace_id,
                response.kind.as_str(),
                outcome_code,
                total,
                protected,
                collector.take(),
            );
        }
    }

    fn resolve_request(
        &self,
        spec: &GraphSpec,
        shared: Option<&Result<SharedPrep, ServiceError>>,
        clock: &mut PipelineClock<'_>,
    ) -> Result<Resolved, ServiceError> {
        match spec {
            GraphSpec::Shared => match shared {
                Some(Ok(prep)) => self.resolve_prepared(prep, clock),
                Some(Err(error)) => Err(error.clone()),
                None => Err(ServiceError::SharedGraphMissing),
            },
            other => self.resolve_spec(other, clock),
        }
    }

    /// Parses the batch's shared graph once; jobs resolve it per query via
    /// [`QueryEngine::resolve_prepared`] so their cache metadata is real.
    /// The one-off parse is booked as an ingest segment of its own.
    fn prepare_shared(&self, spec: &GraphSpec) -> Result<SharedPrep, ServiceError> {
        let mut clock = self.telemetry.pipeline_clock();
        let prep = match spec {
            GraphSpec::Shared => return Err(ServiceError::SharedGraphMissing),
            GraphSpec::EdgeList(text) => ingested_prep(ingest::parse(text, GraphFormat::EdgeList)?),
            GraphSpec::Dimacs(text) => ingested_prep(ingest::parse(text, GraphFormat::Dimacs)?),
            GraphSpec::CotreeTerm(text) => {
                ingested_prep(ingest::parse(text, GraphFormat::CotreeTerm)?)
            }
            GraphSpec::Graph(g) => SharedPrep::Graph(Arc::new(g.clone())),
            GraphSpec::Cotree(t) => SharedPrep::Cotree(Arc::new(t.clone())),
        };
        clock.mark(Stage::Ingest);
        Ok(prep)
    }

    fn resolve_prepared(
        &self,
        prep: &SharedPrep,
        clock: &mut PipelineClock<'_>,
    ) -> Result<Resolved, ServiceError> {
        match prep {
            SharedPrep::Graph(g) => self.resolve_graph(g.clone(), clock),
            SharedPrep::Cotree(t) => self.resolve_cotree(t, clock),
        }
    }

    fn resolve_spec(
        &self,
        spec: &GraphSpec,
        clock: &mut PipelineClock<'_>,
    ) -> Result<Resolved, ServiceError> {
        let ingested = match spec {
            GraphSpec::Shared => return Err(ServiceError::SharedGraphMissing),
            GraphSpec::EdgeList(text) => ingest::parse(text, GraphFormat::EdgeList)?,
            GraphSpec::Dimacs(text) => ingest::parse(text, GraphFormat::Dimacs)?,
            GraphSpec::CotreeTerm(text) => ingest::parse(text, GraphFormat::CotreeTerm)?,
            GraphSpec::Graph(g) => return self.resolve_graph(Arc::new(g.clone()), clock),
            GraphSpec::Cotree(t) => return self.resolve_cotree(t, clock),
        };
        clock.mark(Stage::Ingest);
        match ingested {
            Ingested::Graph(g) => self.resolve_graph(Arc::new(g), clock),
            Ingested::Cotree(t) => self.resolve_cotree(&t, clock),
        }
    }

    fn resolve_graph(
        &self,
        graph: Arc<Graph>,
        clock: &mut PipelineClock<'_>,
    ) -> Result<Resolved, ServiceError> {
        if graph.num_vertices() == 0 {
            return Err(ServiceError::EmptyGraph);
        }
        if !self.config.use_cache {
            let cotree = recognize_certified(&graph);
            clock.mark(Stage::Recognize);
            let cotree = cotree?;
            return Ok(Resolved {
                entry: Arc::new(SolveEntry::new(cotree)),
                graph: Some(graph),
                cache: CacheStatus::Bypass,
            });
        }
        let fingerprint = graph_fingerprint(&graph);
        let lookup_started = clock.collector().map(|c| c.elapsed_us());
        if let Some(entry) = self.cache.lookup_graph(fingerprint, &graph) {
            self.cache_lookup_span(clock, lookup_started, fingerprint, "hit");
            clock.mark(Stage::CacheLookup);
            return Ok(Resolved {
                entry,
                graph: Some(graph),
                cache: CacheStatus::Hit,
            });
        }
        self.cache_lookup_span(clock, lookup_started, fingerprint, "miss");
        clock.mark(Stage::CacheLookup);
        let cotree = recognize_certified(&graph);
        clock.mark(Stage::Recognize);
        let cotree = cotree?;
        let entry = self
            .cache
            .insert(Some((fingerprint, graph.clone())), cotree);
        clock.mark(Stage::CacheLookup);
        Ok(Resolved {
            entry,
            graph: Some(graph),
            cache: CacheStatus::Miss,
        })
    }

    fn resolve_cotree(
        &self,
        cotree: &cograph::Cotree,
        clock: &mut PipelineClock<'_>,
    ) -> Result<Resolved, ServiceError> {
        if !self.config.use_cache {
            return Ok(Resolved {
                entry: Arc::new(SolveEntry::new(cotree.clone())),
                graph: None,
                cache: CacheStatus::Bypass,
            });
        }
        let key = crate::cache::canonical_key(cotree);
        let lookup_started = clock.collector().map(|c| c.elapsed_us());
        if let Some(entry) = self.cache.lookup_key(key, cotree) {
            self.cache_lookup_span(clock, lookup_started, key, "hit");
            clock.mark(Stage::CacheLookup);
            return Ok(Resolved {
                entry,
                graph: None,
                cache: CacheStatus::Hit,
            });
        }
        self.cache_lookup_span(clock, lookup_started, key, "miss");
        let entry = self.cache.insert(None, cotree.clone());
        clock.mark(Stage::CacheLookup);
        Ok(Resolved {
            entry,
            graph: None,
            cache: CacheStatus::Miss,
        })
    }

    pub(crate) fn solve(
        &self,
        kind: QueryKind,
        resolved: &Resolved,
        clock: &mut PipelineClock<'_>,
    ) -> Result<Answer, ServiceError> {
        let entry = &resolved.entry;
        match kind {
            QueryKind::MinCoverSize => {
                let size = entry.min_cover_size();
                clock.mark(Stage::Solve);
                Ok(Answer::MinCoverSize { size })
            }
            QueryKind::FullCover => {
                let cover = self.solve_cover(&entry.cotree, clock);
                clock.mark(Stage::Solve);
                let verified = self.verify(resolved, &cover)?;
                clock.mark(Stage::Verify);
                Ok(Answer::FullCover { cover, verified })
            }
            QueryKind::HamiltonianPath => {
                let exists = entry.has_hamiltonian_path();
                let path = if exists {
                    hamiltonian_path(&entry.cotree)
                } else {
                    None
                };
                clock.mark(Stage::Solve);
                if let Some(path) = &path {
                    self.verify(resolved, &PathCover::from_paths(vec![path.clone()]))?;
                    clock.mark(Stage::Verify);
                }
                Ok(Answer::HamiltonianPath { exists, path })
            }
            QueryKind::HamiltonianCycle => {
                let exists = entry.has_hamiltonian_cycle();
                clock.mark(Stage::Solve);
                Ok(Answer::HamiltonianCycle { exists })
            }
            QueryKind::Recognize => {
                let graph = self.graph_of(resolved);
                let answer = Answer::Recognized {
                    is_cograph: true,
                    vertices: graph.num_vertices(),
                    edges: graph.num_edges(),
                    cotree_nodes: entry.cotree.num_nodes(),
                    height: entry.cotree.height(),
                    term: ingest::cotree_to_term(&entry.cotree),
                };
                clock.mark(Stage::Solve);
                Ok(answer)
            }
        }
    }

    /// Annotates the request trace with one `cache:lookup` span naming the
    /// shard the key hashed into and whether it hit. No-op when the
    /// request is untraced.
    fn cache_lookup_span(
        &self,
        clock: &PipelineClock<'_>,
        start_us: Option<u64>,
        hash: u64,
        result: &str,
    ) {
        if let (Some(collector), Some(start_us)) = (clock.collector(), start_us) {
            let end = collector.elapsed_us();
            collector.push(
                Span::new("cache:lookup", start_us, end.saturating_sub(start_us))
                    .with_detail("shard", self.cache.shard_index(hash).to_string())
                    .with_detail("result", result),
            );
        }
    }

    /// The graph to verify against: the ingested one when available,
    /// otherwise the cotree materialised.
    fn graph_of(&self, resolved: &Resolved) -> Arc<Graph> {
        match &resolved.graph {
            Some(g) => g.clone(),
            None => Arc::new(resolved.entry.cotree.to_graph()),
        }
    }

    /// Solves one cover, moving to the work-stealing pool when the graph is
    /// large enough and at least two worker threads are available. The pool
    /// is created on first use and reused for the life of the engine; its
    /// cumulative statistics are published to the telemetry registry after
    /// every parallel solve.
    fn solve_cover(&self, cotree: &Cotree, clock: &PipelineClock<'_>) -> PathCover {
        let threshold = self.config.parallel_min_vertices;
        if threshold > 0 && cotree.num_vertices() >= threshold {
            let requested = match self.config.pool_threads {
                0 => None,
                t => Some(t),
            };
            let threads = parpool::resolve_threads(requested);
            if threads >= 2 {
                let mut guard = self.pool.lock().unwrap_or_else(|e| e.into_inner());
                let pool = guard.get_or_insert_with(|| Pool::new(threads));
                // For traced requests, have the pool keep per-round records
                // (timestamped against its own epoch started here, so the
                // records rebase onto the request clock with one offset).
                let trace_base = clock.collector().map(|c| c.elapsed_us());
                if trace_base.is_some() {
                    pool.enable_round_records();
                }
                let cover = pool_path_cover(cotree, pool);
                if let (Some(collector), Some(base)) = (clock.collector(), trace_base) {
                    let batch: Vec<Span> = pool
                        .take_round_records()
                        .iter()
                        .map(|r| {
                            Span::new("pool:round", base + r.start_us, r.dur_us)
                                .with_detail("round", r.round.to_string())
                                .with_detail("chunks", r.chunks.to_string())
                                .with_detail("steals", r.steals.to_string())
                                .with_detail("barrier_wait_us", r.barrier_wait_us.to_string())
                        })
                        .collect();
                    collector.push_all(batch);
                }
                let stats = pool.stats();
                self.telemetry.record_pool(&PoolReport {
                    workers: stats.workers as u64,
                    rounds: stats.rounds,
                    steals: stats.steals,
                    barrier_waits: stats.barrier_waits,
                    barrier_wait_p50_us: stats.barrier_wait_p50_micros,
                    barrier_wait_p99_us: stats.barrier_wait_p99_micros,
                });
                return cover;
            }
        }
        path_cover(cotree)
    }

    fn verify(&self, resolved: &Resolved, cover: &PathCover) -> Result<bool, ServiceError> {
        if !self.config.verify_covers {
            return Ok(false);
        }
        let graph = self.graph_of(resolved);
        let report = verify_path_cover(&graph, cover);
        if report.is_valid() {
            Ok(true)
        } else {
            Err(ServiceError::CoverVerificationFailed(format!(
                "missing={:?} duplicated={:?} non_edges={:?} out_of_range={:?}",
                report.missing, report.duplicated, report.non_edges, report.out_of_range
            )))
        }
    }
}

/// Runs the linear-time recogniser, lifting its typed rejection — including
/// the induced-`P_4` certificate — into the service taxonomy.
fn recognize_certified(graph: &Graph) -> Result<Cotree, ServiceError> {
    try_recognize(graph).map_err(|e| ServiceError::from_recognition(e, graph.num_vertices()))
}

fn ingested_prep(ingested: Ingested) -> SharedPrep {
    match ingested {
        Ingested::Graph(g) => SharedPrep::Graph(Arc::new(g)),
        Ingested::Cotree(t) => SharedPrep::Cotree(Arc::new(t)),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> QueryEngine {
        QueryEngine::default()
    }

    #[test]
    fn full_cover_on_edge_list_is_verified() {
        let e = engine();
        let req = QueryRequest::new(
            QueryKind::FullCover,
            GraphSpec::EdgeList("0 1\n1 2\n0 2\n3\n".to_string()),
        );
        let resp = e.execute(&req);
        match resp.outcome.expect("triangle plus isolate is a cograph") {
            Answer::FullCover { cover, verified } => {
                assert!(verified);
                assert_eq!(cover.len(), 2); // triangle path + isolated vertex
            }
            other => panic!("wrong answer variant: {other:?}"),
        }
        assert_eq!(resp.meta.cache, CacheStatus::Miss);
        assert_eq!(resp.meta.vertices, 4);
        assert!(resp.meta.canonical_key.is_some());
    }

    #[test]
    fn repeated_graph_hits_the_cache() {
        let e = engine();
        let spec = GraphSpec::EdgeList("0 1\n1 2\n0 2\n".to_string());
        let first = e.execute(&QueryRequest::new(QueryKind::MinCoverSize, spec.clone()));
        let second = e.execute(&QueryRequest::new(QueryKind::HamiltonianPath, spec));
        assert_eq!(first.meta.cache, CacheStatus::Miss);
        assert_eq!(second.meta.cache, CacheStatus::Hit);
        assert_eq!(first.meta.canonical_key, second.meta.canonical_key);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn p4_is_reported_not_a_cograph_with_witness() {
        let e = engine();
        let req = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::EdgeList("0 1\n1 2\n2 3\n".to_string()),
        );
        let resp = e.execute(&req);
        let Err(ServiceError::NotACograph { vertices, witness }) = resp.outcome else {
            panic!("expected a certified rejection, got {:?}", resp.outcome);
        };
        assert_eq!(vertices, 4);
        // The witness is an induced P4 of the input path 0-1-2-3: it must
        // be that path, in one of the two directions.
        assert!(
            witness == [0, 1, 2, 3] || witness == [3, 2, 1, 0],
            "unexpected witness {witness:?}"
        );
    }

    #[test]
    fn bad_input_fails_only_its_own_job() {
        let e = engine();
        let requests = vec![
            QueryRequest::new(
                QueryKind::MinCoverSize,
                GraphSpec::EdgeList("0 x".to_string()),
            )
            .with_id("bad"),
            QueryRequest::new(
                QueryKind::MinCoverSize,
                GraphSpec::CotreeTerm("(j a b)".to_string()),
            )
            .with_id("good"),
        ];
        let responses = e.execute_batch(None, &requests);
        assert_eq!(responses.len(), 2);
        assert!(responses[0].outcome.is_err());
        assert_eq!(
            responses[1].outcome,
            Ok(Answer::MinCoverSize { size: 1 }),
            "the malformed job must not poison its neighbour"
        );
        assert_eq!(responses[0].id.as_deref(), Some("bad"));
        assert_eq!(responses[1].id.as_deref(), Some("good"));
    }

    #[test]
    fn shared_graph_requests_need_a_shared_graph() {
        let e = engine();
        let req = QueryRequest::new(QueryKind::Recognize, GraphSpec::Shared);
        assert_eq!(
            e.execute(&req).outcome,
            Err(ServiceError::SharedGraphMissing)
        );
        let shared = GraphSpec::EdgeList("0 1\n".to_string());
        let responses = e.execute_batch(Some(&shared), std::slice::from_ref(&req));
        match responses[0].outcome.as_ref().expect("edge is a cograph") {
            Answer::Recognized {
                is_cograph,
                vertices,
                edges,
                ..
            } => {
                assert!(is_cograph);
                assert_eq!(*vertices, 2);
                assert_eq!(*edges, 1);
            }
            other => panic!("wrong answer variant: {other:?}"),
        }
    }

    #[test]
    fn hamiltonian_answers_are_consistent() {
        let e = engine();
        // K4: Hamiltonian path and cycle both exist.
        let k4 = GraphSpec::CotreeTerm("(j a b c d)".to_string());
        let path = e.execute(&QueryRequest::new(QueryKind::HamiltonianPath, k4.clone()));
        match path.outcome.expect("K4 solves") {
            Answer::HamiltonianPath { exists, path } => {
                assert!(exists);
                assert_eq!(path.expect("witness").len(), 4);
            }
            other => panic!("wrong answer variant: {other:?}"),
        }
        let cycle = e.execute(&QueryRequest::new(QueryKind::HamiltonianCycle, k4));
        assert_eq!(cycle.outcome, Ok(Answer::HamiltonianCycle { exists: true }));
        // Two disjoint vertices: neither exists.
        let e2 = e.execute(&QueryRequest::new(
            QueryKind::HamiltonianPath,
            GraphSpec::CotreeTerm("(u a b)".to_string()),
        ));
        assert_eq!(
            e2.outcome,
            Ok(Answer::HamiltonianPath {
                exists: false,
                path: None
            })
        );
    }

    #[test]
    fn cache_bypass_is_reported() {
        let config = EngineConfig {
            use_cache: false,
            ..EngineConfig::default()
        };
        let e = QueryEngine::new(config);
        let spec = GraphSpec::EdgeList("0 1\n".to_string());
        let r1 = e.execute(&QueryRequest::new(QueryKind::MinCoverSize, spec.clone()));
        let r2 = e.execute(&QueryRequest::new(QueryKind::MinCoverSize, spec));
        assert_eq!(r1.meta.cache, CacheStatus::Bypass);
        assert_eq!(r2.meta.cache, CacheStatus::Bypass);
    }

    #[test]
    fn admission_gate_sheds_over_cap_and_releases_on_drop() {
        let e = QueryEngine::new(EngineConfig {
            max_inflight: 2,
            ..EngineConfig::default()
        });
        let g1 = e.try_admit().expect("first slot");
        let _g2 = e.try_admit().expect("second slot");
        let rejected = e.try_admit().expect_err("cap reached");
        assert_eq!(rejected.code(), "overloaded");
        assert_eq!(
            rejected,
            ServiceError::Overloaded {
                retry_after_ms: DEFAULT_RETRY_AFTER_MS
            }
        );
        drop(g1);
        let _g3 = e.try_admit().expect("slot freed by drop");
        let report = e.metrics_report();
        assert_eq!(report.rejected_overload, 1);
        assert_eq!(report.inflight, 2);
    }

    #[test]
    fn unlimited_gate_admits_everything_but_tracks_inflight() {
        let e = engine();
        let guards: Vec<_> = (0..64).map(|_| e.try_admit().expect("no cap")).collect();
        assert_eq!(e.metrics_report().inflight, 64);
        drop(guards);
        assert_eq!(e.metrics_report().inflight, 0);
        assert_eq!(e.metrics_report().rejected_overload, 0);
    }

    #[test]
    fn expired_deadline_short_circuits_the_pipeline() {
        let e = engine();
        let req = QueryRequest::new(
            QueryKind::FullCover,
            GraphSpec::EdgeList("0 1\n1 2\n0 2\n".to_string()),
        );
        let ctx = RequestCtx::generate().with_deadline_ms(Some(0));
        let resp = e.execute_ctx(&req, &ctx);
        assert_eq!(resp.outcome, Err(ServiceError::DeadlineExceeded));
        // The expired request never reached ingest: no cache traffic.
        assert_eq!(e.cache_stats().misses, 0);
        assert_eq!(e.metrics_report().deadline_exceeded, 1);
        // A generous deadline solves normally.
        let ctx = RequestCtx::generate().with_deadline_ms(Some(60_000));
        let resp = e.execute_ctx(&req, &ctx);
        assert!(resp.outcome.is_ok());
    }

    #[test]
    fn requests_leave_traces_with_stage_and_cache_spans() {
        let e = engine();
        let resp = e.execute(&QueryRequest::new(
            QueryKind::FullCover,
            GraphSpec::EdgeList("0 1\n1 2\n0 2\n".to_string()),
        ));
        assert!(resp.outcome.is_ok());
        let trace_id = resp.meta.trace_id.clone().expect("trace id echoed");
        let trace = e.recorder().get(&trace_id).expect("trace retained");
        assert_eq!(trace.outcome, "ok");
        assert_eq!(trace.kind, "full_cover");
        for name in [
            "stage:ingest",
            "stage:solve",
            "stage:verify",
            "cache:lookup",
        ] {
            assert!(
                trace.spans.iter().any(|s| s.name == name),
                "missing {name} span in {:?}",
                trace.spans
            );
        }
        let lookup = trace
            .spans
            .iter()
            .find(|s| s.name == "cache:lookup")
            .unwrap();
        assert!(lookup.detail.iter().any(|(k, _)| k == "shard"));
        assert!(lookup
            .detail
            .iter()
            .any(|(k, v)| k == "result" && v == "miss"));
    }

    #[test]
    fn failed_requests_commit_protected_traces() {
        let e = engine();
        let ctx = RequestCtx::generate().with_deadline_ms(Some(0));
        let resp = e.execute_ctx(
            &QueryRequest::new(
                QueryKind::MinCoverSize,
                GraphSpec::CotreeTerm("(j a b)".to_string()),
            ),
            &ctx,
        );
        assert_eq!(resp.outcome, Err(ServiceError::DeadlineExceeded));
        let trace = e.recorder().get(&ctx.trace_id).expect("trace retained");
        assert!(
            trace.protected,
            "deadline-exceeded traces must be protected"
        );
        assert_eq!(trace.outcome, "deadline_exceeded");
    }

    #[test]
    fn disabled_tracing_attaches_no_collector_and_retains_nothing() {
        let e = QueryEngine::new(EngineConfig {
            trace: TraceConfig::off(),
            ..EngineConfig::default()
        });
        let resp = e.execute(&QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b)".to_string()),
        ));
        assert!(resp.outcome.is_ok());
        assert!(e.recorder().is_empty());
        assert!(!e.recorder().enabled());
    }

    #[test]
    fn pool_solves_leave_round_spans_in_the_trace() {
        let e = QueryEngine::new(EngineConfig {
            parallel_min_vertices: 4,
            pool_threads: 2,
            ..EngineConfig::default()
        });
        // A join of unions: big enough to clear the (lowered) pool
        // threshold deterministically.
        let leaves = |tag: &str| {
            (0..8)
                .map(|i| format!("{tag}{i}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let term = format!("(j (u {}) (u {}))", leaves("a"), leaves("b"));
        let resp = e.execute(&QueryRequest::new(
            QueryKind::FullCover,
            GraphSpec::CotreeTerm(term),
        ));
        assert!(resp.outcome.is_ok());
        let trace_id = resp.meta.trace_id.clone().expect("trace id echoed");
        let trace = e.recorder().get(&trace_id).expect("trace retained");
        let rounds: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "pool:round")
            .collect();
        assert!(
            !rounds.is_empty(),
            "pool-backed solve must leave pool:round spans; got {:?}",
            trace.spans
        );
        assert!(rounds
            .iter()
            .all(|s| s.detail.iter().any(|(k, _)| k == "round")));
        assert!(trace.spans.iter().any(|s| s.name == "stage:solve"));
    }

    #[test]
    fn batch_order_is_preserved_across_threads() {
        let e = QueryEngine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        let requests: Vec<QueryRequest> = (2..40u32)
            .map(|k| {
                // Complete graph K_k as a join of k leaves: min cover 1.
                let leaves = (0..k)
                    .map(|i| format!("v{i}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                QueryRequest::new(
                    QueryKind::MinCoverSize,
                    GraphSpec::CotreeTerm(format!("(j {leaves})")),
                )
                .with_id(format!("job-{k}"))
            })
            .collect();
        let responses = e.execute_batch(None, &requests);
        assert_eq!(responses.len(), requests.len());
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, requests[i].id, "response {i} out of order");
            assert_eq!(resp.outcome, Ok(Answer::MinCoverSize { size: 1 }));
        }
    }
}
