//! The unix-socket daemon: a long-lived [`QueryEngine`] behind an accept
//! loop.
//!
//! The engine's cotree cache only pays off when it outlives a single
//! process invocation — this module is the transport that makes that true.
//! A [`Daemon`] binds a unix domain socket, accepts connections in a loop
//! and serves each one on its own thread. All handlers share one
//! `Arc<QueryEngine>`, so every client warms the same sharded cache and
//! batches fan out through the engine's existing thread pool.
//!
//! Protocol semantics live in [`crate::proto`] ([`proto::dispatch`] is the
//! entire request → reply mapping); this module only adds:
//!
//! * **connection lifecycle** — one handler thread per connection, reads
//!   bounded by an idle timeout after which the connection is dropped;
//! * **fault isolation** — a malformed frame earns an `error` reply and the
//!   connection keeps serving; a framing violation closes that connection;
//!   neither ever stops the daemon;
//! * **graceful shutdown** — a `shutdown` frame is acknowledged, then the
//!   accept loop stops, open connections are shut down, handler threads are
//!   joined and the socket file is removed.

use crate::engine::{EngineConfig, QueryEngine};
use crate::proto::{self, ProtoError, Request};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::Shutdown as SocketShutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the unix socket to listen on.
    pub socket_path: PathBuf,
    /// A connection idle (no complete frame read) for this long is closed.
    pub idle_timeout: Duration,
    /// Configuration of the shared query engine.
    pub engine: EngineConfig,
}

impl DaemonConfig {
    /// Defaults: 30 s idle timeout, default engine configuration.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            socket_path: socket_path.into(),
            idle_timeout: Duration::from_secs(30),
            engine: EngineConfig::default(),
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    engine: Arc<QueryEngine>,
    listener: UnixListener,
    socket_path: PathBuf,
    shutdown: Arc<AtomicBool>,
    idle_timeout: Duration,
}

impl Daemon {
    /// Binds the socket and builds the shared engine.
    ///
    /// A leftover socket file from a crashed daemon is removed if nothing
    /// answers on it; a *live* socket (another daemon is serving) is
    /// refused with [`io::ErrorKind::AddrInUse`].
    pub fn bind(config: DaemonConfig) -> io::Result<Daemon> {
        let path = config.socket_path;
        if let Ok(meta) = std::fs::symlink_metadata(&path) {
            use std::os::unix::fs::FileTypeExt as _;
            if !meta.file_type().is_socket() {
                // Refuse to clobber a regular file / directory / symlink the
                // user pointed at by mistake.
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("{} exists and is not a socket", path.display()),
                ));
            }
            match UnixStream::connect(&path) {
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a daemon is already serving on {}", path.display()),
                    ))
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                    // Definitely a dead listener (unclean exit): reclaim.
                    // Known limitation: probe-then-remove is not atomic, so
                    // two daemons racing to reclaim the same stale path can
                    // unlink each other's fresh socket — supervisors must
                    // serialise restarts per socket path (a kernel-held
                    // flock would close this, but needs unsafe/libc).
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("probing existing socket {}: {e}", path.display()),
                    ))
                }
            }
        }
        let listener = UnixListener::bind(&path)?;
        Ok(Daemon {
            engine: Arc::new(QueryEngine::new(config.engine)),
            listener,
            socket_path: path,
            shutdown: Arc::new(AtomicBool::new(false)),
            idle_timeout: config.idle_timeout,
        })
    }

    /// The shared engine (e.g. for in-process inspection in tests).
    pub fn engine(&self) -> Arc<QueryEngine> {
        self.engine.clone()
    }

    /// The socket path the daemon is bound to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Serves until a client sends a `shutdown` frame. Joins every handler
    /// thread and removes the socket file before returning.
    pub fn run(self) -> io::Result<()> {
        // Registry of live connections, keyed by a connection id so a
        // handler can deregister itself on exit — otherwise a long-lived
        // daemon would hold one cloned fd per *historical* connection and
        // eventually exhaust the fd limit.
        let connections: Arc<Mutex<HashMap<u64, UnixStream>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let mut next_id: u64 = 0;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                // A failed accept (peer vanished mid-handshake, or fd
                // exhaustion under connection pressure) affects nobody
                // else; the pause keeps a *persistent* failure (EMFILE
                // until connections drain) from busy-spinning a core.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            let _ = stream.set_read_timeout(Some(self.idle_timeout));
            let conn_id = next_id;
            next_id += 1;
            if let Ok(clone) = stream.try_clone() {
                connections
                    .lock()
                    .expect("connection registry")
                    .insert(conn_id, clone);
            }
            let engine = self.engine.clone();
            let shutdown = self.shutdown.clone();
            let wake_path = self.socket_path.clone();
            let registry = connections.clone();
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &engine, &shutdown, &wake_path);
                registry
                    .lock()
                    .expect("connection registry")
                    .remove(&conn_id);
            }));
            // Reap finished handlers so a long-lived daemon's handle list
            // tracks live connections, not its connection history.
            handlers.retain(|h| !h.is_finished());
        }
        // Shutdown: unblock any handler waiting in a read, then join all.
        for (_, conn) in connections.lock().expect("connection registry").drain() {
            let _ = conn.shutdown(SocketShutdown::Both);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
        Ok(())
    }
}

/// `true` for the read-timeout errors produced by an idle connection.
fn is_idle_timeout(error: &ProtoError) -> bool {
    matches!(
        error,
        ProtoError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    )
}

fn handle_connection(
    stream: UnixStream,
    engine: &QueryEngine,
    shutdown: &AtomicBool,
    wake_path: &Path,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    while !shutdown.load(Ordering::Acquire) {
        match serve_frame(&mut reader, &mut writer, engine) {
            Ok(proto::Action::Continue) => {}
            Ok(proto::Action::Shutdown) => {
                shutdown.store(true, Ordering::Release);
                // The accept loop is blocked in accept(2); poke it with a
                // throwaway connection so it sees the flag.
                let _ = UnixStream::connect(wake_path);
                break;
            }
            Err(ProtoError::Closed) => break,
            Err(error) if error.is_recoverable() => {
                // The frame was consumed cleanly: report and keep serving.
                let reply = proto::error_reply(error.code(), &error.to_string());
                if proto::write_frame(&mut writer, &reply).is_err() {
                    break;
                }
            }
            Err(error) => {
                // Idle connections are dropped silently; framing violations
                // get a best-effort error frame. Either way this connection
                // is done — and only this connection.
                if !is_idle_timeout(&error) {
                    let reply = proto::error_reply(error.code(), &error.to_string());
                    let _ = proto::write_frame(&mut writer, &reply);
                }
                break;
            }
        }
    }
}

/// Serves one frame: read, decode, dispatch, reply. The returned action is
/// authoritative even when the reply could not be written — a `shutdown`
/// whose acknowledgement hits a dead client must still stop the daemon.
fn serve_frame(
    reader: &mut BufReader<UnixStream>,
    writer: &mut BufWriter<UnixStream>,
    engine: &QueryEngine,
) -> Result<proto::Action, ProtoError> {
    let payload = proto::read_frame(reader)?;
    let request = Request::from_json(&payload)?;
    let (reply, action) = proto::dispatch(engine, &request);
    let written = match proto::write_frame(writer, &reply) {
        // An oversized reply was refused before any bytes were written:
        // the stream is still in sync, so tell the client what happened
        // instead of dying.
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            let reply = proto::error_reply("frame_too_large", &e.to_string());
            proto::write_frame(writer, &reply)
        }
        other => other,
    };
    if action == proto::Action::Shutdown {
        return Ok(action);
    }
    written?;
    Ok(action)
}

/// Connects to a daemon and performs the protocol handshake.
pub fn connect(socket_path: impl AsRef<Path>) -> Result<proto::Client<UnixStream>, ProtoError> {
    let stream = UnixStream::connect(socket_path.as_ref())?;
    proto::Client::connect(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::model::{GraphSpec, QueryKind, QueryRequest};
    use std::sync::atomic::AtomicU32;

    fn temp_socket(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "pcservice-test-{}-{tag}-{n}.sock",
            std::process::id()
        ))
    }

    fn spawn_daemon(tag: &str) -> (PathBuf, std::thread::JoinHandle<io::Result<()>>) {
        let path = temp_socket(tag);
        let mut config = DaemonConfig::new(&path);
        config.idle_timeout = Duration::from_secs(5);
        let daemon = Daemon::bind(config).expect("bind");
        let handle = std::thread::spawn(move || daemon.run());
        (path, handle)
    }

    #[test]
    fn solve_shutdown_round_trip() {
        let (path, handle) = spawn_daemon("roundtrip");
        let mut client = connect(&path).expect("connect");
        let request = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b c)".to_string()),
        );
        let response = client.solve(&request).expect("solve");
        assert_eq!(
            response
                .get("answer")
                .and_then(|a| a.get("size"))
                .and_then(Json::as_u64),
            Some(1)
        );
        client.shutdown().expect("shutdown");
        handle.join().expect("daemon thread").expect("clean exit");
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn malformed_frames_do_not_kill_the_connection_or_daemon() {
        let (path, handle) = spawn_daemon("malformed");
        // Raw stream: send a syntactically framed but non-JSON payload...
        let raw = UnixStream::connect(&path).expect("connect raw");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut writer = raw;
        use std::io::Write as _;
        writer.write_all(b"pcp1 9\nnot json!\n").expect("send junk");
        writer.flush().unwrap();
        let reply = proto::read_frame(&mut reader).expect("error reply");
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(reply.get("code").and_then(Json::as_str), Some("bad_json"));
        // ...the same connection still serves properly-formed frames...
        proto::write_frame(&mut writer, &Request::Stats.to_json()).expect("send stats");
        let reply = proto::read_frame(&mut reader).expect("stats reply");
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("stats"));
        drop((reader, writer));
        // ...and the daemon is still alive for fresh connections.
        let mut client = connect(&path).expect("daemon survived");
        client.shutdown().expect("shutdown");
        handle.join().expect("daemon thread").expect("clean exit");
    }

    #[test]
    fn stale_socket_file_is_reclaimed_live_socket_and_foreign_files_refused() {
        // A dropped listener leaves its socket file behind — the classic
        // crashed-daemon leftover. Binding over it must succeed.
        let path = temp_socket("stale");
        drop(UnixListener::bind(&path).expect("plant stale socket"));
        assert!(path.exists(), "stale socket file left behind");
        let daemon = Daemon::bind(DaemonConfig::new(&path)).expect("stale socket reclaimed");
        // While it is bound (alive), a second bind must be refused.
        let err = match Daemon::bind(DaemonConfig::new(&path)) {
            Err(err) => err,
            Ok(_) => panic!("live socket must be refused"),
        };
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        drop(daemon);
        let _ = std::fs::remove_file(&path);

        // A path holding a non-socket must never be deleted.
        let file_path = temp_socket("notasocket");
        std::fs::write(&file_path, b"precious").expect("plant regular file");
        let err = match Daemon::bind(DaemonConfig::new(&file_path)) {
            Err(err) => err,
            Ok(_) => panic!("regular file must be refused"),
        };
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(std::fs::read(&file_path).expect("file intact"), b"precious");
        let _ = std::fs::remove_file(&file_path);
    }
}
