//! The serving daemon: a long-lived [`QueryEngine`] behind one or more
//! accept loops.
//!
//! The engine's cotree cache only pays off when it outlives a single
//! process invocation — this module is the transport layer that makes that
//! true. A [`Daemon`] binds a unix domain socket (speaking the
//! length-framed [`crate::proto`] format), a TCP socket (speaking the
//! [`crate::http`] adaptation of the same messages), or both at once; every
//! connection is served on its own thread against one shared
//! `Arc<QueryEngine>`, so every client of every transport warms the same
//! sharded cache and batches fan out through the engine's existing thread
//! pool.
//!
//! Protocol semantics live in [`crate::proto`] ([`proto::dispatch`] is the
//! entire request → reply mapping, for both transports); this module only
//! adds:
//!
//! * **a transport abstraction** — [`Listener`] (blocking accept + a waker
//!   that unblocks it) and [`Connection`] (clone/timeout/shutdown on a byte
//!   stream), implemented for unix and TCP sockets, so the accept-loop,
//!   thread-registry and graceful-shutdown machinery below is written once
//!   and every future transport (TLS, h2) is a bolt-on;
//! * **connection lifecycle** — one handler thread per connection, reads
//!   bounded by an idle timeout after which the connection is dropped;
//! * **fault isolation** — a malformed frame earns an `error` reply and the
//!   connection keeps serving; a framing violation closes that connection;
//!   neither ever stops the daemon;
//! * **graceful shutdown** — a `shutdown` request on *any* transport is
//!   acknowledged, then a shared [`ShutdownSignal`] stops every accept
//!   loop, open connections are shut down, handler threads are joined and
//!   the socket file is removed.

use crate::engine::{EngineConfig, QueryEngine, DEFAULT_RETRY_AFTER_MS};
use crate::error::ServiceError;
use crate::faults::{FaultSpec, Faults};
use crate::http;
use crate::json::Json;
use crate::proto::{self, ProtoError, Request};
use crate::snapshot;
use crate::telemetry::{RequestCtx, Transport};
use crate::v2;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A served byte stream: what the generic accept loop and the per-protocol
/// connection handlers need from a socket, beyond `Read + Write`.
pub trait Connection: io::Read + io::Write + Send + Sized + 'static {
    /// A second handle on the same stream (read half / write half / the
    /// registry's shutdown handle).
    fn try_clone_conn(&self) -> io::Result<Self>;
    /// Bounds blocking reads; an expired timeout surfaces as
    /// [`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`].
    fn set_conn_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Best-effort shutdown of both halves, unblocking any reader.
    fn shutdown_conn(&self);
}

impl Connection for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_conn_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn shutdown_conn(&self) {
        let _ = self.shutdown(SocketShutdown::Both);
    }
}

impl Connection for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_conn_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn shutdown_conn(&self) {
        let _ = self.shutdown(SocketShutdown::Both);
    }
}

/// A bound listener the generic accept loop can serve.
pub trait Listener: Send + 'static {
    /// The connection type this listener accepts.
    type Conn: Connection;
    /// Blocks until the next connection (or an accept error).
    fn accept_conn(&self) -> io::Result<Self::Conn>;
    /// A closure that unblocks a blocked [`Listener::accept_conn`] — the
    /// implementations connect to themselves. Registered with the
    /// [`ShutdownSignal`] so triggering shutdown wakes every accept loop.
    fn waker(&self) -> Box<dyn Fn() + Send + Sync>;
    /// Post-run cleanup (the unix transport removes its socket file).
    fn cleanup(&self) {}
}

/// A bound unix-socket listener (plus the path needed to wake and clean it).
struct UnixTransport {
    listener: UnixListener,
    path: PathBuf,
}

impl Listener for UnixTransport {
    type Conn = UnixStream;
    fn accept_conn(&self) -> io::Result<UnixStream> {
        self.listener.accept().map(|(stream, _)| stream)
    }
    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let path = self.path.clone();
        Box::new(move || {
            let _ = UnixStream::connect(&path);
        })
    }
    fn cleanup(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A bound TCP listener (plus the resolved address needed to wake it).
struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Listener for TcpTransport {
    type Conn = TcpStream;
    fn accept_conn(&self) -> io::Result<TcpStream> {
        self.listener.accept().map(|(stream, _)| stream)
    }
    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let addr = self.addr;
        Box::new(move || {
            let _ = TcpStream::connect(addr);
        })
    }
}

/// A daemon-wide shutdown flag shared by every accept loop and connection
/// handler, across all transports.
///
/// Triggering it (once) sets the flag and runs every registered waker, so
/// accept loops blocked in `accept(2)` observe the flag without waiting for
/// organic traffic.
pub struct ShutdownSignal {
    flag: AtomicBool,
    wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Arc<ShutdownSignal> {
        Arc::new(ShutdownSignal {
            flag: AtomicBool::new(false),
            wakers: Mutex::new(Vec::new()),
        })
    }

    /// Has shutdown been requested?
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Requests shutdown; the first call runs all registered wakers.
    pub fn trigger(&self) {
        if !self.flag.swap(true, Ordering::AcqRel) {
            for waker in self.wakers.lock().expect("shutdown wakers").iter() {
                waker();
            }
        }
    }

    fn register_waker(&self, waker: Box<dyn Fn() + Send + Sync>) {
        self.wakers.lock().expect("shutdown wakers").push(waker);
    }
}

/// Per-listener resilience knobs for [`serve_listener`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Which transport this listener serves (telemetry labels).
    pub transport: Transport,
    /// Most concurrently-served connections (`0` = unlimited); an excess
    /// connection gets the `reject` goodbye instead of a handler thread.
    pub max_connections: usize,
    /// How long the teardown waits for in-flight handlers to finish before
    /// force-closing their connections.
    pub drain_timeout: Duration,
    /// The daemon's fault-injection runtime ([`Faults::default`] injects
    /// nothing); the accept loop consults it for post-accept delays.
    pub faults: Arc<Faults>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            transport: Transport::Framed,
            max_connections: 0,
            drain_timeout: Duration::from_secs(5),
            faults: Arc::default(),
        }
    }
}

/// The v1 `overloaded` error reply body, retry hint included — the goodbye
/// written to connections shed by the connection cap and to requests shed
/// by fault injection or an exhausted per-connection budget.
fn overloaded_reply() -> Json {
    let error = ServiceError::Overloaded {
        retry_after_ms: DEFAULT_RETRY_AFTER_MS,
    };
    let mut fields = vec![("type".to_string(), Json::str("error"))];
    if let Json::Obj(body) = error.wire_body() {
        fields.extend(body);
    }
    Json::Obj(fields)
}

/// Synthesizes a trace id for an accept-time rejection (no request was
/// read, so no `X-Request-Id` header or frame field exists yet), attaches
/// it to the goodbye body and emits the structured rejection log line. The
/// id lets a shed client quote something the operator can grep for.
fn rejection_reply(transport: &str) -> Json {
    let ctx = RequestCtx::generate();
    let Json::Obj(mut fields) = overloaded_reply() else {
        unreachable!("overloaded_reply always builds an object");
    };
    fields.push(("trace_id".to_string(), Json::str(&ctx.trace_id)));
    crate::log::log(
        crate::log::Level::Warn,
        "conn_rejected",
        Some(&ctx.trace_id),
        &[
            ("transport", Json::str(transport)),
            ("retry_after_ms", Json::num(DEFAULT_RETRY_AFTER_MS)),
        ],
    );
    Json::Obj(fields)
}

/// Connection-cap goodbye for the framed transport: one `overloaded`
/// error frame (carrying a synthesized `trace_id`), then close.
pub fn reject_proto_conn<C: Connection>(conn: C) {
    let mut writer = BufWriter::new(conn);
    let _ = proto::write_frame(&mut writer, &rejection_reply("framed"));
}

/// Connection-cap goodbye for the HTTP transport: one `503` with a
/// `Retry-After` header and a synthesized `trace_id` in the error body,
/// then close.
pub fn reject_http_conn<C: Connection>(mut conn: C) {
    let reply = rejection_reply("http");
    let trace = reply
        .get("trace_id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let mut body = reply.to_string();
    body.push('\n');
    let secs = DEFAULT_RETRY_AFTER_MS.div_ceil(1000).max(1);
    let _ = write!(
        conn,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nRetry-After: {secs}\r\nX-Request-Id: {trace}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.flush();
}

/// Serves one listener until the shared signal triggers: the accept loop,
/// per-connection threads, the live-connection registry and the
/// drain-then-join teardown, shared by every transport.
///
/// `handler` serves one already-accepted connection to completion
/// ([`serve_proto_conn`] for [`crate::proto`], [`http::serve_conn`] for
/// [`crate::http`]); a handler panic — injected or organic — is contained
/// to its connection. `reject` writes the overload goodbye to connections
/// shed by `options.max_connections` ([`reject_proto_conn`] /
/// [`reject_http_conn`]).
pub fn serve_listener<L, H, R>(
    listener: L,
    engine: Arc<QueryEngine>,
    shutdown: Arc<ShutdownSignal>,
    idle_timeout: Duration,
    options: ServeOptions,
    handler: H,
    reject: R,
) -> io::Result<()>
where
    L: Listener,
    H: Fn(L::Conn, &QueryEngine, &ShutdownSignal) + Send + Sync + 'static,
    R: Fn(L::Conn) + Send + 'static,
{
    shutdown.register_waker(listener.waker());
    if shutdown.is_triggered() {
        // Triggered between bind and serve: nothing to wake, nothing to do.
        listener.cleanup();
        return Ok(());
    }
    let handler = Arc::new(handler);
    // Registry of live connections, keyed by a connection id so a handler
    // can deregister itself on exit — otherwise a long-lived daemon would
    // hold one cloned fd per *historical* connection and eventually exhaust
    // the fd limit.
    let connections: Arc<Mutex<HashMap<u64, L::Conn>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut next_id: u64 = 0;
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    // Bounded exponential backoff for persistently failing accepts (EMFILE
    // until connections drain): starts small so a one-off failure barely
    // delays the next accept, doubles to a cap so a persistent one cannot
    // busy-spin a core, resets on the first successful accept.
    const ACCEPT_BACKOFF_FLOOR: Duration = Duration::from_millis(5);
    const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(500);
    let mut accept_backoff = ACCEPT_BACKOFF_FLOOR;
    loop {
        if shutdown.is_triggered() {
            break;
        }
        let conn = match listener.accept_conn() {
            Ok(conn) => {
                accept_backoff = ACCEPT_BACKOFF_FLOOR;
                conn
            }
            // A failed accept (peer vanished mid-handshake, or fd
            // exhaustion under connection pressure) affects nobody else.
            Err(_) => {
                engine.telemetry().accept_error(options.transport);
                if shutdown.is_triggered() {
                    break;
                }
                std::thread::sleep(accept_backoff);
                accept_backoff = (accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                continue;
            }
        };
        if shutdown.is_triggered() {
            // The accepted connection was (or raced with) a waker poke.
            break;
        }
        if let Some(delay) = options.faults.accept_delay() {
            std::thread::sleep(delay);
        }
        if options.max_connections != 0
            && connections.lock().expect("connection registry").len() >= options.max_connections
        {
            // Over the cap: a typed goodbye, not a silent close, so clients
            // back off instead of retrying instantly.
            engine.telemetry().overload_rejected();
            reject(conn);
            continue;
        }
        let _ = conn.set_conn_read_timeout(Some(idle_timeout));
        let conn_id = next_id;
        next_id += 1;
        if let Ok(clone) = conn.try_clone_conn() {
            connections
                .lock()
                .expect("connection registry")
                .insert(conn_id, clone);
        }
        let engine = engine.clone();
        let shutdown = shutdown.clone();
        let registry = connections.clone();
        let handler = handler.clone();
        handlers.push(std::thread::spawn(move || {
            // Contain handler panics (fault-injected or organic) to this
            // connection: the registry entry is still removed, the daemon
            // keeps serving, and the telemetry gauges stay balanced (the
            // handlers decrement them in Drop guards).
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handler(conn, &engine, &shutdown)
            }));
            if outcome.is_err() {
                crate::log::log(
                    crate::log::Level::Error,
                    "handler_panic",
                    None,
                    &[("contained", Json::Bool(true))],
                );
            }
            registry
                .lock()
                .expect("connection registry")
                .remove(&conn_id);
        }));
        // Reap finished handlers so a long-lived daemon's handle list
        // tracks live connections, not its connection history.
        handlers.retain(|h| !h.is_finished());
    }
    // Graceful drain: stop accepting (the loop above has exited), give
    // in-flight handlers up to the drain timeout to finish their current
    // requests, then force-close whatever remains so a stuck or idle
    // connection cannot hold shutdown hostage.
    let deadline = Instant::now() + options.drain_timeout;
    while handlers.iter().any(|h| !h.is_finished()) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    for (_, conn) in connections.lock().expect("connection registry").drain() {
        conn.shutdown_conn();
    }
    for handler in handlers {
        let _ = handler.join();
    }
    listener.cleanup();
    Ok(())
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the unix socket to listen on (framed `pcp1` protocol), if
    /// any. At least one of `socket_path` / `http_addr` must be set.
    pub socket_path: Option<PathBuf>,
    /// TCP address to serve HTTP/1.1 on (e.g. `127.0.0.1:8387`), if any.
    pub http_addr: Option<String>,
    /// A connection idle (no complete request read) for this long is
    /// closed.
    pub idle_timeout: Duration,
    /// Warm-cache snapshot file (see [`crate::snapshot`]): loaded (and
    /// verified) at bind time, saved on shutdown and on every checkpoint.
    pub snapshot_path: Option<PathBuf>,
    /// How often the background checkpoint thread persists the cache while
    /// serving; `None` means save-on-shutdown only. Ignored without
    /// `snapshot_path`.
    pub checkpoint_interval: Option<Duration>,
    /// Most concurrently-served connections per listener (`0` = unlimited).
    /// An excess connection is answered with a typed `overloaded` goodbye
    /// in its transport's dialect and closed without taking a handler
    /// thread; the OS accept backlog stays the only queue.
    pub max_connections: usize,
    /// Requests one connection may issue before being shed with
    /// `overloaded` and closed (`0` = unlimited) — a rogue keep-alive
    /// client cannot monopolise a handler thread forever.
    pub max_requests_per_conn: u64,
    /// How long shutdown waits for in-flight connections to finish before
    /// force-closing them.
    pub drain_timeout: Duration,
    /// Fault-injection spec (see [`crate::faults`]); the all-zero default
    /// disables every hook.
    pub faults: FaultSpec,
    /// Configuration of the shared query engine.
    pub engine: EngineConfig,
}

impl DaemonConfig {
    /// Unix-socket-only daemon with defaults: 30 s idle timeout, default
    /// engine configuration, no snapshot persistence.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            socket_path: Some(socket_path.into()),
            http_addr: None,
            idle_timeout: Duration::from_secs(30),
            snapshot_path: None,
            checkpoint_interval: None,
            max_connections: 0,
            max_requests_per_conn: 0,
            drain_timeout: Duration::from_secs(5),
            faults: FaultSpec::default(),
            engine: EngineConfig::default(),
        }
    }

    /// HTTP-only daemon with the same defaults.
    pub fn http(addr: impl Into<String>) -> Self {
        DaemonConfig {
            socket_path: None,
            http_addr: Some(addr.into()),
            idle_timeout: Duration::from_secs(30),
            snapshot_path: None,
            checkpoint_interval: None,
            max_connections: 0,
            max_requests_per_conn: 0,
            drain_timeout: Duration::from_secs(5),
            faults: FaultSpec::default(),
            engine: EngineConfig::default(),
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    engine: Arc<QueryEngine>,
    shutdown: Arc<ShutdownSignal>,
    idle_timeout: Duration,
    unix: Option<UnixTransport>,
    http: Option<TcpTransport>,
    snapshot_load: Option<snapshot::LoadOutcome>,
    checkpoint_interval: Option<Duration>,
    max_connections: usize,
    max_requests_per_conn: u64,
    drain_timeout: Duration,
    faults: Arc<Faults>,
}

impl Daemon {
    /// Binds the configured listeners and builds the shared engine.
    ///
    /// A leftover socket file from a crashed daemon is removed if nothing
    /// answers on it; a *live* socket (another daemon is serving) is
    /// refused with [`io::ErrorKind::AddrInUse`]. Binding requires at least
    /// one listener; `http_addr` port 0 binds an ephemeral port readable
    /// from [`Daemon::http_addr`].
    pub fn bind(config: DaemonConfig) -> io::Result<Daemon> {
        if config.socket_path.is_none() && config.http_addr.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "daemon needs a socket path and/or an http address",
            ));
        }
        let unix = match config.socket_path {
            Some(path) => Some(bind_unix(path)?),
            None => None,
        };
        let http = match config.http_addr {
            Some(addr) => {
                let listener = TcpListener::bind(&addr)?;
                let addr = listener.local_addr()?;
                Some(TcpTransport { listener, addr })
            }
            None => None,
        };
        let engine = Arc::new(QueryEngine::new(config.engine));
        // Warm start: load (and verify) the previous process's cache before
        // the first connection is accepted. A corrupt file is quarantined
        // by attach_snapshot and the daemon starts cold instead.
        let snapshot_load = config
            .snapshot_path
            .map(|path| engine.attach_snapshot(path));
        Ok(Daemon {
            engine,
            shutdown: ShutdownSignal::new(),
            idle_timeout: config.idle_timeout,
            unix,
            http,
            snapshot_load,
            checkpoint_interval: config.checkpoint_interval,
            max_connections: config.max_connections,
            max_requests_per_conn: config.max_requests_per_conn,
            drain_timeout: config.drain_timeout,
            faults: Arc::new(Faults::new(config.faults)),
        })
    }

    /// The shared engine (e.g. for in-process inspection in tests).
    pub fn engine(&self) -> Arc<QueryEngine> {
        self.engine.clone()
    }

    /// How the snapshot load at bind time went, when persistence is
    /// configured (`None` without `snapshot_path`). The CLI reports this
    /// next to the listening addresses.
    pub fn snapshot_load(&self) -> Option<&snapshot::LoadOutcome> {
        self.snapshot_load.as_ref()
    }

    /// The unix socket path the daemon is bound to, if any.
    pub fn socket_path(&self) -> Option<&Path> {
        self.unix.as_ref().map(|t| t.path.as_path())
    }

    /// The resolved TCP address the HTTP listener is bound to, if any
    /// (reports the real port when the config asked for port 0).
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().map(|t| t.addr)
    }

    /// Serves until a client sends a `shutdown` request on any transport.
    /// Joins every handler thread, persists the cache when a snapshot is
    /// attached, and removes the socket file before returning.
    pub fn run(self) -> io::Result<()> {
        let Daemon {
            engine,
            shutdown,
            idle_timeout,
            unix,
            http,
            snapshot_load: _,
            checkpoint_interval,
            max_connections,
            max_requests_per_conn,
            drain_timeout,
            faults,
        } = self;
        // Background checkpointing: persist the warm cache periodically so
        // even a crash (no graceful shutdown) loses at most one interval of
        // cache warmth. The thread polls the shutdown flag between short
        // sleeps rather than blocking the accept loops in any way. A save
        // failure is retried with capped exponential backoff — a full disk
        // is probed at 2×, 4×, ... the interval instead of hammered on
        // every tick — and the consecutive-failure count is surfaced in
        // `/v1/stats` (the engine books it in telemetry).
        let checkpoint_thread = match (checkpoint_interval, engine.snapshot_meta()) {
            (Some(every), Some(_)) => {
                let engine = engine.clone();
                let shutdown = shutdown.clone();
                Some(std::thread::spawn(move || {
                    const POLL: Duration = Duration::from_millis(50);
                    const BACKOFF_CAP: Duration = Duration::from_secs(300);
                    let mut since_last = Duration::ZERO;
                    let mut target = every;
                    let mut consecutive_failures: u32 = 0;
                    while !shutdown.is_triggered() {
                        std::thread::sleep(POLL);
                        since_last += POLL;
                        if since_last >= target {
                            since_last = Duration::ZERO;
                            match engine.save_snapshot() {
                                Ok(_) => {
                                    consecutive_failures = 0;
                                    target = every;
                                }
                                Err(error) => {
                                    consecutive_failures += 1;
                                    target = every
                                        .saturating_mul(1u32 << consecutive_failures.min(16))
                                        .min(BACKOFF_CAP)
                                        .max(every);
                                    crate::log::log(
                                        crate::log::Level::Error,
                                        "checkpoint_failed",
                                        None,
                                        &[
                                            (
                                                "consecutive",
                                                Json::num(u64::from(consecutive_failures)),
                                            ),
                                            ("next_retry_ms", Json::num(target.as_millis() as u64)),
                                            ("error", Json::str(error.to_string())),
                                        ],
                                    );
                                }
                            }
                        }
                    }
                }))
            }
            _ => None,
        };
        // With both transports bound the HTTP loop runs on its own thread;
        // either loop's shutdown trigger wakes and stops the other.
        let http_thread = http.map(|listener| {
            let engine = engine.clone();
            let shutdown = shutdown.clone();
            let faults = faults.clone();
            let handler_faults = faults.clone();
            std::thread::spawn(move || {
                serve_listener(
                    listener,
                    engine,
                    shutdown,
                    idle_timeout,
                    ServeOptions {
                        transport: Transport::Http,
                        max_connections,
                        drain_timeout,
                        faults,
                    },
                    move |conn, engine: &QueryEngine, shutdown: &ShutdownSignal| {
                        http::serve_conn_opts(
                            conn,
                            engine,
                            shutdown,
                            &handler_faults,
                            max_requests_per_conn,
                        )
                    },
                    reject_http_conn,
                )
            })
        });
        let unix_result = match unix {
            Some(listener) => {
                let handler_faults = faults.clone();
                serve_listener(
                    listener,
                    engine.clone(),
                    shutdown.clone(),
                    idle_timeout,
                    ServeOptions {
                        transport: Transport::Framed,
                        max_connections,
                        drain_timeout,
                        faults: faults.clone(),
                    },
                    move |conn, engine: &QueryEngine, shutdown: &ShutdownSignal| {
                        serve_proto_conn_opts(
                            conn,
                            engine,
                            shutdown,
                            &handler_faults,
                            max_requests_per_conn,
                        )
                    },
                    reject_proto_conn,
                )
            }
            None => Ok(()),
        };
        let http_result = match http_thread {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("http accept loop panicked"))),
            None => Ok(()),
        };
        // The accept loops only return once the signal is triggered, but
        // trigger defensively so the checkpoint thread can never outlive
        // them on an error path.
        shutdown.trigger();
        if let Some(handle) = checkpoint_thread {
            let _ = handle.join();
        }
        // Save-on-shutdown: every entry the process warmed survives the
        // restart. Best-effort — a full disk must not turn a clean shutdown
        // into a crash loop, and the pre-existing snapshot is still intact
        // (saves are atomic).
        if engine.snapshot_meta().is_some() {
            if let Err(error) = engine.save_snapshot() {
                crate::log::log(
                    crate::log::Level::Error,
                    "shutdown_snapshot_failed",
                    None,
                    &[("error", Json::str(error.to_string()))],
                );
            }
        }
        unix_result.and(http_result)
    }
}

/// Binds the unix listener, reclaiming stale socket files and refusing
/// live sockets and non-socket paths.
fn bind_unix(path: PathBuf) -> io::Result<UnixTransport> {
    if let Ok(meta) = std::fs::symlink_metadata(&path) {
        use std::os::unix::fs::FileTypeExt as _;
        if !meta.file_type().is_socket() {
            // Refuse to clobber a regular file / directory / symlink the
            // user pointed at by mistake.
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} exists and is not a socket", path.display()),
            ));
        }
        match UnixStream::connect(&path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving on {}", path.display()),
                ))
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                // Definitely a dead listener (unclean exit): reclaim.
                // Known limitation: probe-then-remove is not atomic, so
                // two daemons racing to reclaim the same stale path can
                // unlink each other's fresh socket — supervisors must
                // serialise restarts per socket path (a kernel-held
                // flock would close this, but needs unsafe/libc).
                let _ = std::fs::remove_file(&path);
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("probing existing socket {}: {e}", path.display()),
                ))
            }
        }
    }
    let listener = UnixListener::bind(&path)?;
    Ok(UnixTransport { listener, path })
}

/// `true` for the read-timeout errors produced by an idle connection.
fn is_idle_timeout(error: &ProtoError) -> bool {
    matches!(
        error,
        ProtoError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    )
}

/// Serves one framed-protocol connection to completion: the per-frame loop
/// with the recoverable-vs-fatal error handling of [`crate::proto`].
pub fn serve_proto_conn<C: Connection>(conn: C, engine: &QueryEngine, shutdown: &ShutdownSignal) {
    serve_proto_conn_opts(conn, engine, shutdown, &Faults::default(), 0)
}

/// [`serve_proto_conn`] with the daemon's resilience knobs: a
/// fault-injection runtime and a per-connection request budget (`0` =
/// unlimited; a frame beyond the budget is answered with a recoverable
/// `overloaded` error and the connection closes).
pub fn serve_proto_conn_opts<C: Connection>(
    conn: C,
    engine: &QueryEngine,
    shutdown: &ShutdownSignal,
    faults: &Faults,
    request_budget: u64,
) {
    let Ok(write_half) = conn.try_clone_conn() else {
        return;
    };
    engine.telemetry().conn_opened(Transport::Framed);
    // Decrement the gauge on *every* exit, injected handler panics
    // included, so chaos runs cannot leak open-connection counts.
    struct ConnGauge<'t>(&'t crate::telemetry::Telemetry);
    impl Drop for ConnGauge<'_> {
        fn drop(&mut self) {
            self.0.conn_closed(Transport::Framed);
        }
    }
    let _gauge = ConnGauge(engine.telemetry());
    let mut reader = BufReader::new(conn);
    let mut writer = BufWriter::new(write_half);
    let mut served: u64 = 0;
    while !shutdown.is_triggered() {
        match serve_frame(
            &mut reader,
            &mut writer,
            engine,
            faults,
            request_budget,
            &mut served,
        ) {
            Ok(proto::Action::Continue) => {}
            Ok(proto::Action::Shutdown) => {
                // Wakes every accept loop (all transports) via the signal's
                // registered wakers.
                shutdown.trigger();
                break;
            }
            Err(ProtoError::Closed) => break,
            Err(error) if error.is_recoverable() => {
                // The frame was consumed cleanly: report and keep serving.
                // The payload never parsed, so there is no client-supplied
                // trace — correlate the reply with a synthesized one.
                let reply = proto::attach_trace(
                    proto::error_reply(error.code(), &error.to_string()),
                    &RequestCtx::generate(),
                );
                if proto::write_frame(&mut writer, &reply).is_err() {
                    break;
                }
            }
            Err(error) => {
                // Idle connections are dropped silently; framing violations
                // get a best-effort error frame. Either way this connection
                // is done — and only this connection.
                if is_idle_timeout(&error) {
                    engine.telemetry().idle_timeout(Transport::Framed);
                } else {
                    if matches!(error, ProtoError::FrameTooLarge { .. }) {
                        engine.telemetry().oversize_reject(Transport::Framed);
                    }
                    let reply = proto::attach_trace(
                        proto::error_reply(error.code(), &error.to_string()),
                        &RequestCtx::generate(),
                    );
                    let _ = proto::write_frame(&mut writer, &reply);
                }
                break;
            }
        }
    }
}

/// Serves one frame: read, decode, dispatch, reply. The returned action is
/// authoritative even when the reply could not be written — a `shutdown`
/// whose acknowledgement hits a dead client must still stop the daemon.
///
/// The frame header's version tag picks the dialect — `pcp1` frames carry
/// the legacy per-verb messages, `pcp2` frames the [`crate::v2`] envelope —
/// and the reply is framed with the same tag, so one connection can
/// interleave both dialects.
fn serve_frame<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    engine: &QueryEngine,
    faults: &Faults,
    request_budget: u64,
    served: &mut u64,
) -> Result<proto::Action, ProtoError> {
    let (version, body) = proto::read_frame_raw(reader)?;
    if let Some(stall) = faults.frame_stall() {
        std::thread::sleep(stall);
    }
    if faults.should_panic() {
        panic!("injected fault: framed handler panic");
    }
    let decoded = Json::parse(&body).map_err(ProtoError::BadJson);
    // Per-connection budget and fault-forced sheds: a typed, recoverable
    // `overloaded` reply in the frame's own dialect, before dispatch. A
    // spent budget additionally closes the connection (silently, after the
    // reply — the client saw a recoverable error and can reconnect).
    let budget_spent = request_budget != 0 && *served >= request_budget;
    if budget_spent || faults.should_overload() {
        engine.telemetry().overload_rejected();
        let ctx = match decoded.as_ref().ok().and_then(proto::request_trace) {
            Some(trace) => RequestCtx::with_trace(trace),
            None => RequestCtx::generate(),
        };
        if version == v2::API_VERSION {
            let error = v2::OpError::Service(ServiceError::Overloaded {
                retry_after_ms: DEFAULT_RETRY_AFTER_MS,
            });
            proto::write_frame_v(writer, &v2::error_envelope(None, &error, &ctx), version)?;
        } else {
            proto::write_frame(writer, &proto::attach_trace(overloaded_reply(), &ctx))?;
        }
        if budget_spent {
            return Err(ProtoError::Closed);
        }
        return Ok(proto::Action::Continue);
    }
    *served += 1;
    if version == v2::API_VERSION {
        return serve_v2_frame(writer, engine, decoded);
    }
    let payload = decoded?;
    // The raw frame's trace_id is read *before* decoding, so even a frame
    // that fails to decode gets its error reply correlated; the optional
    // deadline_ms field bounds the job from this point on.
    let ctx = match proto::request_trace(&payload) {
        Some(trace) => RequestCtx::with_trace(trace),
        None => RequestCtx::generate(),
    }
    .with_deadline_ms(proto::request_deadline_ms(&payload));
    let request = match Request::from_json(&payload) {
        Ok(request) => request,
        Err(error) if error.is_recoverable() => {
            let reply =
                proto::attach_trace(proto::error_reply(error.code(), &error.to_string()), &ctx);
            proto::write_frame(writer, &reply)?;
            return Ok(proto::Action::Continue);
        }
        Err(error) => return Err(error),
    };
    let (reply, action) = proto::dispatch_ctx(engine, &request, &ctx);
    let written = match proto::write_frame(writer, &reply) {
        // An oversized reply was refused before any bytes were written:
        // the stream is still in sync, so tell the client what happened
        // instead of dying.
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            let reply =
                proto::attach_trace(proto::error_reply("frame_too_large", &e.to_string()), &ctx);
            proto::write_frame(writer, &reply)
        }
        other => other,
    };
    if action == proto::Action::Shutdown {
        return Ok(action);
    }
    written?;
    Ok(action)
}

/// The `pcp2` half of [`serve_frame`]: same recoverable-vs-fatal contract,
/// but replies — protocol errors included — are v2 envelopes in `pcp2`
/// frames.
fn serve_v2_frame<W: Write>(
    writer: &mut W,
    engine: &QueryEngine,
    decoded: Result<Json, ProtoError>,
) -> Result<proto::Action, ProtoError> {
    let payload = match decoded {
        Ok(payload) => payload,
        Err(error) if error.is_recoverable() => {
            // The frame was consumed cleanly but its payload never parsed:
            // report in-dialect and keep serving.
            let reply = v2::protocol_error_envelope(
                error.code(),
                &error.to_string(),
                &RequestCtx::generate(),
            );
            proto::write_frame_v(writer, &reply, v2::API_VERSION)?;
            return Ok(proto::Action::Continue);
        }
        Err(error) => return Err(error),
    };
    let ctx = match proto::request_trace(&payload) {
        Some(trace) => RequestCtx::with_trace(trace),
        None => RequestCtx::generate(),
    }
    .with_deadline_ms(proto::request_deadline_ms(&payload));
    let (reply, action) = v2::dispatch_envelope(engine, &payload, &ctx);
    let written = match proto::write_frame_v(writer, &reply, v2::API_VERSION) {
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            let reply = v2::protocol_error_envelope("frame_too_large", &e.to_string(), &ctx);
            proto::write_frame_v(writer, &reply, v2::API_VERSION)
        }
        other => other,
    };
    if action == proto::Action::Shutdown {
        return Ok(action);
    }
    written?;
    Ok(action)
}

/// Connects to a daemon's unix socket and performs the protocol handshake.
pub fn connect(socket_path: impl AsRef<Path>) -> Result<proto::Client<UnixStream>, ProtoError> {
    let stream = UnixStream::connect(socket_path.as_ref())?;
    proto::Client::connect(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::model::{GraphSpec, QueryKind, QueryRequest};
    use std::sync::atomic::AtomicU32;

    fn temp_socket(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "pcservice-test-{}-{tag}-{n}.sock",
            std::process::id()
        ))
    }

    fn spawn_daemon(tag: &str) -> (PathBuf, std::thread::JoinHandle<io::Result<()>>) {
        let path = temp_socket(tag);
        let mut config = DaemonConfig::new(&path);
        config.idle_timeout = Duration::from_secs(5);
        let daemon = Daemon::bind(config).expect("bind");
        let handle = std::thread::spawn(move || daemon.run());
        (path, handle)
    }

    #[test]
    fn solve_shutdown_round_trip() {
        let (path, handle) = spawn_daemon("roundtrip");
        let mut client = connect(&path).expect("connect");
        let request = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b c)".to_string()),
        );
        let response = client.solve(&request).expect("solve");
        assert_eq!(
            response
                .get("answer")
                .and_then(|a| a.get("size"))
                .and_then(Json::as_u64),
            Some(1)
        );
        client.shutdown().expect("shutdown");
        handle.join().expect("daemon thread").expect("clean exit");
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn malformed_frames_do_not_kill_the_connection_or_daemon() {
        let (path, handle) = spawn_daemon("malformed");
        // Raw stream: send a syntactically framed but non-JSON payload...
        let raw = UnixStream::connect(&path).expect("connect raw");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut writer = raw;
        use std::io::Write as _;
        writer.write_all(b"pcp1 9\nnot json!\n").expect("send junk");
        writer.flush().unwrap();
        let reply = proto::read_frame(&mut reader).expect("error reply");
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(reply.get("code").and_then(Json::as_str), Some("bad_json"));
        // ...the same connection still serves properly-formed frames...
        proto::write_frame(&mut writer, &Request::Stats.to_json()).expect("send stats");
        let reply = proto::read_frame(&mut reader).expect("stats reply");
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("stats"));
        drop((reader, writer));
        // ...and the daemon is still alive for fresh connections.
        let mut client = connect(&path).expect("daemon survived");
        client.shutdown().expect("shutdown");
        handle.join().expect("daemon thread").expect("clean exit");
    }

    #[test]
    fn stale_socket_file_is_reclaimed_live_socket_and_foreign_files_refused() {
        // A dropped listener leaves its socket file behind — the classic
        // crashed-daemon leftover. Binding over it must succeed.
        let path = temp_socket("stale");
        drop(UnixListener::bind(&path).expect("plant stale socket"));
        assert!(path.exists(), "stale socket file left behind");
        let daemon = Daemon::bind(DaemonConfig::new(&path)).expect("stale socket reclaimed");
        // While it is bound (alive), a second bind must be refused.
        let err = match Daemon::bind(DaemonConfig::new(&path)) {
            Err(err) => err,
            Ok(_) => panic!("live socket must be refused"),
        };
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        drop(daemon);
        let _ = std::fs::remove_file(&path);

        // A path holding a non-socket must never be deleted.
        let file_path = temp_socket("notasocket");
        std::fs::write(&file_path, b"precious").expect("plant regular file");
        let err = match Daemon::bind(DaemonConfig::new(&file_path)) {
            Err(err) => err,
            Ok(_) => panic!("regular file must be refused"),
        };
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(std::fs::read(&file_path).expect("file intact"), b"precious");
        let _ = std::fs::remove_file(&file_path);
    }

    #[test]
    fn listenerless_config_is_refused() {
        let mut config = DaemonConfig::new("/tmp/never-bound.sock");
        config.socket_path = None;
        let err = match Daemon::bind(config) {
            Err(err) => err,
            Ok(_) => panic!("a listenerless config must be refused"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn shutdown_on_one_transport_stops_the_other() {
        // Dual-transport daemon: unix + ephemeral-port HTTP.
        let path = temp_socket("dual");
        let mut config = DaemonConfig::new(&path);
        config.http_addr = Some("127.0.0.1:0".to_string());
        config.idle_timeout = Duration::from_secs(5);
        let daemon = Daemon::bind(config).expect("bind both");
        let http_addr = daemon.http_addr().expect("http bound");
        let handle = std::thread::spawn(move || daemon.run());

        // Both transports answer against the same engine...
        let mut unix_client = connect(&path).expect("unix connect");
        let request = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b c)".to_string()),
        );
        unix_client.solve(&request).expect("unix solve");
        let mut http_client = http::Client::connect(&http_addr.to_string()).expect("http connect");
        let response = http_client.solve(&request).expect("http solve");
        // ...and the HTTP request observes the cache the unix request
        // warmed: one shared engine, not one per transport.
        assert_eq!(
            response
                .get("meta")
                .and_then(|m| m.get("cache"))
                .and_then(Json::as_str),
            Some("hit"),
            "transports must share one engine: {response}"
        );

        // Shutdown over HTTP stops the unix accept loop too. Drop the
        // idle unix client first so the drain finds nothing in flight
        // (its handler exits on the EOF immediately).
        drop(unix_client);
        http_client.shutdown().expect("http shutdown");
        handle.join().expect("daemon thread").expect("clean exit");
        assert!(!path.exists(), "socket file removed on shutdown");
    }
}
