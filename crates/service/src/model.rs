//! The request/response model of the query engine.
//!
//! A [`QueryRequest`] names a graph (inline text in one of the ingestion
//! formats, a programmatic object, or the batch-level shared graph) and one
//! of five [`QueryKind`]s. A [`QueryResponse`] carries the typed
//! [`Answer`] (or a [`ServiceError`]) plus [`ResponseMeta`]: solve and total
//! wall time, the cotree cache disposition and the canonical cotree key.
//!
//! Requests and responses both have JSON-lines encodings (see
//! [`QueryRequest::from_json_line`] / [`QueryResponse::to_json_line`]) used
//! by `pathcover-cli batch`.

use crate::error::ServiceError;
use crate::json::Json;
use cograph::Cotree;
use pcgraph::{Graph, Path, PathCover};

/// The five query kinds the engine answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Only the minimum number of paths.
    MinCoverSize,
    /// The full minimum path cover, self-verified before it is returned.
    FullCover,
    /// Hamiltonian-path decision (plus a witness path when one exists).
    HamiltonianPath,
    /// Hamiltonian-cycle decision.
    HamiltonianCycle,
    /// Cograph recognition: is the graph a cograph, and what is its cotree?
    Recognize,
}

impl QueryKind {
    /// All kinds, for iteration in tests and benches.
    pub const ALL: [QueryKind; 5] = [
        QueryKind::MinCoverSize,
        QueryKind::FullCover,
        QueryKind::HamiltonianPath,
        QueryKind::HamiltonianCycle,
        QueryKind::Recognize,
    ];

    /// The snake_case wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            QueryKind::MinCoverSize => "min_cover_size",
            QueryKind::FullCover => "full_cover",
            QueryKind::HamiltonianPath => "hamiltonian_path",
            QueryKind::HamiltonianCycle => "hamiltonian_cycle",
            QueryKind::Recognize => "recognize",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<QueryKind> {
        QueryKind::ALL.into_iter().find(|k| k.as_str() == name)
    }
}

/// Where a request's graph comes from.
#[derive(Debug, Clone)]
pub enum GraphSpec {
    /// Inline edge-list text.
    EdgeList(String),
    /// Inline DIMACS text.
    Dimacs(String),
    /// Inline cotree term notation.
    CotreeTerm(String),
    /// A programmatic graph object (library callers).
    Graph(Graph),
    /// A programmatic cotree object (library callers; skips recognition).
    Cotree(Cotree),
    /// The batch-level shared graph supplied next to the query file.
    Shared,
}

impl GraphSpec {
    /// Renders the spec as a wire object (`{"edge_list"|"dimacs"|"cotree":
    /// text}`), lowering programmatic graphs/cotrees to inline text.
    /// [`GraphSpec::Shared`] has no wire form and returns `None`.
    ///
    /// Both programmatic variants lower to *edge-list* text: vertex ids
    /// survive it exactly. Term notation cannot carry a [`GraphSpec::Cotree`]
    /// faithfully — the term parser assigns leaf ids by order of first
    /// appearance, not by printed label, so any cotree whose leaf labels are
    /// not already in appearance order would be silently relabelled. The
    /// server re-recognises the graph instead; only the labelled graph (and
    /// therefore every answer) is contractual, not the cotree's shape.
    pub fn to_json(&self) -> Option<Json> {
        let (field, text) = match self {
            GraphSpec::EdgeList(text) => ("edge_list", text.clone()),
            GraphSpec::Dimacs(text) => ("dimacs", text.clone()),
            GraphSpec::CotreeTerm(text) => ("cotree", text.clone()),
            GraphSpec::Graph(g) => ("edge_list", graph_to_edge_list(g)),
            GraphSpec::Cotree(t) => ("edge_list", graph_to_edge_list(&t.to_graph())),
            GraphSpec::Shared => return None,
        };
        Some(Json::obj(vec![(field, Json::str(text))]))
    }

    /// Parses a wire object produced by [`GraphSpec::to_json`].
    pub fn from_json(value: &Json) -> Result<GraphSpec, ServiceError> {
        GraphSpec::from_json_fields(value)?.ok_or_else(|| {
            ServiceError::BadRequest(
                "graph spec needs one of 'edge_list'/'dimacs'/'cotree'".to_string(),
            )
        })
    }

    /// Scans an object for the inline graph fields (`edge_list` / `dimacs`
    /// / `cotree`). `Ok(None)` when none is present; an error when more
    /// than one is, or one is not a string. This is the single place the
    /// wire field names live — [`GraphSpec::from_json`] and
    /// [`QueryRequest::from_json`] both delegate here.
    pub fn from_json_fields(value: &Json) -> Result<Option<GraphSpec>, ServiceError> {
        let mut graph: Option<GraphSpec> = None;
        for (field, make) in [
            ("edge_list", GraphSpec::EdgeList as fn(String) -> GraphSpec),
            ("dimacs", GraphSpec::Dimacs as fn(String) -> GraphSpec),
            ("cotree", GraphSpec::CotreeTerm as fn(String) -> GraphSpec),
        ] {
            if let Some(text) = value.get(field) {
                let text = text.as_str().ok_or_else(|| {
                    ServiceError::BadRequest(format!("field '{field}' must be a string"))
                })?;
                if graph.is_some() {
                    return Err(ServiceError::BadRequest(
                        "at most one of 'edge_list'/'dimacs'/'cotree' may be given".to_string(),
                    ));
                }
                graph = Some(make(text.to_string()));
            }
        }
        Ok(graph)
    }
}

/// One query job.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Caller-chosen id echoed back in the response.
    pub id: Option<String>,
    /// What to compute.
    pub kind: QueryKind,
    /// Which graph to compute it on.
    pub graph: GraphSpec,
}

impl QueryRequest {
    /// Creates a request without an id.
    pub fn new(kind: QueryKind, graph: GraphSpec) -> Self {
        QueryRequest {
            id: None,
            kind,
            graph,
        }
    }

    /// Sets the echo id.
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = Some(id.into());
        self
    }

    /// Parses one JSON query line.
    ///
    /// Recognised fields: `"kind"` (required), `"id"` (string or number),
    /// and at most one of `"edge_list"` / `"dimacs"` / `"cotree"` carrying
    /// inline graph text; with none of them the request targets the batch's
    /// shared graph.
    pub fn from_json_line(line: &str) -> Result<QueryRequest, ServiceError> {
        let value = Json::parse(line)
            .map_err(|e| ServiceError::BadRequest(format!("invalid JSON: {e}")))?;
        QueryRequest::from_json(&value)
    }

    /// Parses a query object (the [`QueryRequest::from_json_line`] shape,
    /// already decoded). Unknown fields — e.g. the protocol layer's
    /// `"type"` — are ignored.
    pub fn from_json(value: &Json) -> Result<QueryRequest, ServiceError> {
        if !matches!(value, Json::Obj(_)) {
            return Err(ServiceError::BadRequest(
                "query line must be a JSON object".to_string(),
            ));
        }
        let kind_name = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::BadRequest("missing string field 'kind'".to_string()))?;
        let kind = QueryKind::parse(kind_name).ok_or_else(|| {
            ServiceError::BadRequest(format!(
                "unknown kind '{kind_name}' (expected one of {})",
                QueryKind::ALL.map(|k| k.as_str()).join(", ")
            ))
        })?;
        let id = match value.get("id") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(Json::Num(_)) => Some(value.get("id").unwrap().to_string()),
            Some(other) => {
                return Err(ServiceError::BadRequest(format!(
                    "field 'id' must be a string or number, got {other}"
                )))
            }
        };
        Ok(QueryRequest {
            id,
            kind,
            graph: GraphSpec::from_json_fields(value)?.unwrap_or(GraphSpec::Shared),
        })
    }

    /// Renders the request as a query object (the [`QueryRequest::from_json`]
    /// shape), used by remote clients to put requests on the wire.
    ///
    /// Programmatic specs are lowered to their inline text forms: a
    /// [`GraphSpec::Graph`] becomes edge-list text and a
    /// [`GraphSpec::Cotree`] becomes term notation; [`GraphSpec::Shared`]
    /// emits no graph field at all.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(id) = &self.id {
            fields.push(("id".to_string(), Json::str(id.clone())));
        }
        fields.push(("kind".to_string(), Json::str(self.kind.as_str())));
        if let Some(Json::Obj(spec_fields)) = self.graph.to_json() {
            fields.extend(spec_fields);
        }
        Json::Obj(fields)
    }
}

/// Lowers a graph to the edge-list text format (one `u v` pair per line,
/// isolated vertices as lone ids), the inverse of edge-list ingestion.
fn graph_to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    for v in g.vertices() {
        if g.degree(v) == 0 {
            out.push_str(&format!("{v}\n"));
        }
    }
    out
}

/// Cotree-cache disposition of one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The canonical cotree (and memoised answers) came from the cache.
    Hit,
    /// The graph was recognised/binarised fresh and the result cached.
    Miss,
    /// The cache was disabled for this request.
    Bypass,
}

impl CacheStatus {
    /// The snake_case wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// Timing and cache metadata attached to every response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseMeta {
    /// Microseconds spent in the solver proper (after ingest/recognition).
    pub solve_micros: u64,
    /// Microseconds for the whole job (ingest + recognition + solve + verify).
    pub total_micros: u64,
    /// Cache disposition.
    pub cache: CacheStatus,
    /// Canonical cotree key (present whenever the graph was a cograph).
    pub canonical_key: Option<u64>,
    /// Vertex count of the request's graph (0 when ingest failed).
    pub vertices: usize,
    /// The trace ID of the request that produced this response (see
    /// [`crate::telemetry::RequestCtx`]); echoed on the wire as
    /// `meta.trace_id`.
    pub trace_id: Option<String>,
}

/// A typed answer, one variant per [`QueryKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// Answer to [`QueryKind::MinCoverSize`].
    MinCoverSize {
        /// The minimum number of paths covering the graph.
        size: usize,
    },
    /// Answer to [`QueryKind::FullCover`].
    FullCover {
        /// The minimum path cover.
        cover: PathCover,
        /// `true`: the cover passed [`pcgraph::verify_path_cover`] before
        /// being returned (always true for successful responses).
        verified: bool,
    },
    /// Answer to [`QueryKind::HamiltonianPath`].
    HamiltonianPath {
        /// Whether a Hamiltonian path exists.
        exists: bool,
        /// A witness path when one exists.
        path: Option<Path>,
    },
    /// Answer to [`QueryKind::HamiltonianCycle`].
    HamiltonianCycle {
        /// Whether a Hamiltonian cycle exists.
        exists: bool,
    },
    /// Answer to [`QueryKind::Recognize`].
    Recognized {
        /// Whether the graph is a cograph (always true for successful
        /// responses; non-cographs answer with an error instead).
        is_cograph: bool,
        /// Vertex count.
        vertices: usize,
        /// Edge count.
        edges: usize,
        /// Number of cotree nodes.
        cotree_nodes: usize,
        /// Cotree height.
        height: usize,
        /// The cotree in term notation.
        term: String,
    },
}

/// The engine's reply to one [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Echo of the request id.
    pub id: Option<String>,
    /// Echo of the request kind.
    pub kind: QueryKind,
    /// The answer, or the typed error that stopped this job.
    pub outcome: Result<Answer, ServiceError>,
    /// Timing and cache metadata.
    pub meta: ResponseMeta,
}

impl QueryResponse {
    /// Renders the response as one JSON line.
    pub fn to_json_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Renders the response as a JSON object (the [`to_json_line`] shape,
    /// not yet serialised), used by the protocol layer to embed responses
    /// in reply frames.
    ///
    /// [`to_json_line`]: QueryResponse::to_json_line
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = Vec::new();
        if let Some(id) = &self.id {
            fields.push(("id", Json::str(id.clone())));
        }
        fields.push(("kind", Json::str(self.kind.as_str())));
        match &self.outcome {
            Ok(answer) => {
                fields.push(("ok", Json::Bool(true)));
                fields.push(("answer", answer_json(answer)));
            }
            Err(error) => {
                fields.push(("ok", Json::Bool(false)));
                fields.push(("error", error.wire_body()));
            }
        }
        let mut meta = vec![
            ("solve_us", Json::num(self.meta.solve_micros)),
            ("total_us", Json::num(self.meta.total_micros)),
            ("cache", Json::str(self.meta.cache.as_str())),
            ("n", Json::num(self.meta.vertices as u64)),
        ];
        if let Some(key) = self.meta.canonical_key {
            meta.push(("key", Json::str(format!("{key:016x}"))));
        }
        if let Some(trace) = &self.meta.trace_id {
            meta.push(("trace_id", Json::str(trace.clone())));
        }
        fields.push(("meta", Json::obj(meta)));
        Json::obj(fields)
    }
}

fn paths_json(paths: &[Path]) -> Json {
    Json::Arr(
        paths
            .iter()
            .map(|p| Json::Arr(p.vertices().iter().map(|&v| Json::num(v as u64)).collect()))
            .collect(),
    )
}

fn answer_json(answer: &Answer) -> Json {
    match answer {
        Answer::MinCoverSize { size } => Json::obj(vec![("size", Json::num(*size as u64))]),
        Answer::FullCover { cover, verified } => Json::obj(vec![
            ("size", Json::num(cover.len() as u64)),
            ("verified", Json::Bool(*verified)),
            ("paths", paths_json(cover.paths())),
        ]),
        Answer::HamiltonianPath { exists, path } => {
            let mut fields = vec![("exists", Json::Bool(*exists))];
            if let Some(path) = path {
                fields.push(("path", paths_json(std::slice::from_ref(path))));
            }
            Json::obj(fields)
        }
        Answer::HamiltonianCycle { exists } => Json::obj(vec![("exists", Json::Bool(*exists))]),
        Answer::Recognized {
            is_cograph,
            vertices,
            edges,
            cotree_nodes,
            height,
            term,
        } => Json::obj(vec![
            ("is_cograph", Json::Bool(*is_cograph)),
            ("n", Json::num(*vertices as u64)),
            ("m", Json::num(*edges as u64)),
            ("cotree_nodes", Json::num(*cotree_nodes as u64)),
            ("height", Json::num(*height as u64)),
            ("term", Json::str(term.clone())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in QueryKind::ALL {
            assert_eq!(QueryKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(QueryKind::parse("nonsense"), None);
    }

    #[test]
    fn request_parsing_happy_path() {
        let req =
            QueryRequest::from_json_line(r#"{"id":"a","kind":"full_cover","edge_list":"0 1"}"#)
                .unwrap();
        assert_eq!(req.id.as_deref(), Some("a"));
        assert_eq!(req.kind, QueryKind::FullCover);
        assert!(matches!(req.graph, GraphSpec::EdgeList(ref t) if t == "0 1"));

        let shared = QueryRequest::from_json_line(r#"{"kind":"recognize"}"#).unwrap();
        assert!(matches!(shared.graph, GraphSpec::Shared));
        assert!(shared.id.is_none());

        let numeric_id = QueryRequest::from_json_line(r#"{"kind":"recognize","id":7}"#).unwrap();
        assert_eq!(numeric_id.id.as_deref(), Some("7"));
    }

    #[test]
    fn request_parsing_typed_failures() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"id":"x"}"#,
            r#"{"kind":"which_cover"}"#,
            r#"{"kind":"recognize","edge_list":"0 1","dimacs":"p edge 1 0"}"#,
            r#"{"kind":"recognize","edge_list":17}"#,
            r#"{"kind":"recognize","id":[1]}"#,
        ] {
            assert!(
                matches!(
                    QueryRequest::from_json_line(bad),
                    Err(ServiceError::BadRequest(_))
                ),
                "expected BadRequest for {bad}"
            );
        }
    }

    #[test]
    fn programmatic_spec_lowering_preserves_vertex_labels() {
        use crate::ingest::{self, GraphFormat, Ingested};
        // Leaf labels deliberately out of appearance order: term notation
        // would silently relabel them (the term parser assigns ids by first
        // appearance), so the lowering must go through edge-list text.
        let tree = Cotree::union_of_labelled(vec![
            Cotree::join_of_labelled(vec![Cotree::single(1), Cotree::single(2)]),
            Cotree::single(0),
        ]);
        let wire = GraphSpec::Cotree(tree.clone())
            .to_json()
            .expect("wire form");
        let spec = GraphSpec::from_json(&wire).unwrap();
        let GraphSpec::EdgeList(text) = spec else {
            panic!("expected edge-list lowering");
        };
        let Ingested::Graph(g) = ingest::parse(&text, GraphFormat::EdgeList).unwrap() else {
            panic!("edge list must parse to a graph");
        };
        assert_eq!(g, tree.to_graph(), "vertex labels must survive the wire");

        let graph = tree.to_graph();
        let wire = GraphSpec::Graph(graph.clone())
            .to_json()
            .expect("wire form");
        let GraphSpec::EdgeList(text) = GraphSpec::from_json(&wire).unwrap() else {
            panic!("expected edge-list lowering");
        };
        let Ingested::Graph(g) = ingest::parse(&text, GraphFormat::EdgeList).unwrap() else {
            panic!("edge list must parse to a graph");
        };
        assert_eq!(g, graph);
    }

    #[test]
    fn response_json_shape() {
        let resp = QueryResponse {
            id: Some("q9".to_string()),
            kind: QueryKind::MinCoverSize,
            outcome: Ok(Answer::MinCoverSize { size: 3 }),
            meta: ResponseMeta {
                solve_micros: 12,
                total_micros: 40,
                cache: CacheStatus::Hit,
                canonical_key: Some(0xdeadbeef),
                vertices: 10,
                trace_id: Some("pc-test".to_string()),
            },
        };
        let line = resp.to_json_line();
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            value
                .get("answer")
                .and_then(|a| a.get("size"))
                .and_then(Json::as_u64),
            Some(3)
        );
        let meta = value.get("meta").unwrap();
        assert_eq!(meta.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(
            meta.get("key").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(meta.get("trace_id").and_then(Json::as_str), Some("pc-test"));
    }

    #[test]
    fn not_a_cograph_error_carries_the_p4_witness() {
        let resp = QueryResponse {
            id: None,
            kind: QueryKind::Recognize,
            outcome: Err(ServiceError::NotACograph {
                vertices: 9,
                witness: [4, 2, 7, 5],
            }),
            meta: ResponseMeta {
                solve_micros: 0,
                total_micros: 3,
                cache: CacheStatus::Miss,
                canonical_key: None,
                vertices: 9,
                trace_id: None,
            },
        };
        let value = Json::parse(&resp.to_json_line()).unwrap();
        let error = value.get("error").expect("error object");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some("not_a_cograph")
        );
        let Some(Json::Arr(p4)) = error.get("p4") else {
            panic!("missing structured p4 witness: {value}");
        };
        let ids: Vec<u64> = p4.iter().filter_map(Json::as_u64).collect();
        assert_eq!(ids, vec![4, 2, 7, 5]);
        // The message repeats the path in human-readable form.
        let message = error.get("message").and_then(Json::as_str).unwrap();
        assert!(message.contains("4 - 2 - 7 - 5"), "message: {message}");
    }

    #[test]
    fn error_response_json_shape() {
        let resp = QueryResponse {
            id: None,
            kind: QueryKind::FullCover,
            outcome: Err(ServiceError::EmptyGraph),
            meta: ResponseMeta {
                solve_micros: 0,
                total_micros: 5,
                cache: CacheStatus::Bypass,
                canonical_key: None,
                vertices: 0,
                trace_id: None,
            },
        };
        let value = Json::parse(&resp.to_json_line()).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("empty_graph")
        );
        assert!(value.get("meta").unwrap().get("key").is_none());
    }
}
