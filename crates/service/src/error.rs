//! Typed errors of the query engine.
//!
//! Every failure a job can hit — malformed input, a non-cograph graph, a
//! cover that fails self-verification, a panic inside the solver — is mapped
//! to a [`ServiceError`] variant so that batch execution can report it per
//! job without aborting the batch, and so the CLI can render it both as
//! human-readable text and as a machine-readable JSON object.

use crate::ingest::IngestError;
use cograph::RecognitionError;
use pcgraph::VertexId;
use std::fmt;

/// Any error a single query can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The graph input could not be parsed.
    Ingest(IngestError),
    /// The input graph is not a cograph, so the cotree pipeline cannot run.
    /// Recognition certifies the rejection with a concrete induced `P_4`,
    /// which travels all the way into the wire error body.
    NotACograph {
        /// Number of vertices of the offending graph.
        vertices: usize,
        /// The induced `P_4` found by recognition, in path order
        /// `a - b - c - d` (edges `ab`, `bc`, `cd`; non-edges `ac`, `ad`,
        /// `bd`).
        witness: [VertexId; 4],
    },
    /// The input graph has no vertices; the path-cover problem is trivial
    /// but the paper's pipeline (and recognition) require `n >= 1`.
    EmptyGraph,
    /// The request referenced the batch-level shared graph, but the batch
    /// was started without one.
    SharedGraphMissing,
    /// A produced cover failed [`pcgraph::verify_path_cover`]; this
    /// indicates a solver bug and is reported rather than returned silently.
    CoverVerificationFailed(String),
    /// The solver panicked; the panic was contained to this job.
    JobPanicked(String),
    /// The request itself was malformed (bad JSON line, unknown kind, ...).
    BadRequest(String),
}

impl ServiceError {
    /// Stable machine-readable error tag used in JSON output.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Ingest(_) => "ingest",
            ServiceError::NotACograph { .. } => "not_a_cograph",
            ServiceError::EmptyGraph => "empty_graph",
            ServiceError::SharedGraphMissing => "shared_graph_missing",
            ServiceError::CoverVerificationFailed(_) => "cover_verification_failed",
            ServiceError::JobPanicked(_) => "job_panicked",
            ServiceError::BadRequest(_) => "bad_request",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Ingest(e) => write!(f, "ingest error: {e}"),
            ServiceError::NotACograph { vertices, witness } => {
                let [a, b, c, d] = witness;
                write!(
                    f,
                    "graph on {vertices} vertices is not a cograph \
                     (induced P4: {a} - {b} - {c} - {d})"
                )
            }
            ServiceError::EmptyGraph => write!(f, "graph has no vertices"),
            ServiceError::SharedGraphMissing => {
                write!(
                    f,
                    "request uses the shared batch graph, but none was provided"
                )
            }
            ServiceError::CoverVerificationFailed(detail) => {
                write!(f, "produced cover failed verification: {detail}")
            }
            ServiceError::JobPanicked(msg) => write!(f, "job panicked: {msg}"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<IngestError> for ServiceError {
    fn from(e: IngestError) -> Self {
        ServiceError::Ingest(e)
    }
}

impl ServiceError {
    /// Maps a typed recognition rejection onto the service taxonomy,
    /// carrying the induced-`P_4` certificate along.
    pub fn from_recognition(error: RecognitionError, vertices: usize) -> ServiceError {
        match error {
            RecognitionError::EmptyGraph => ServiceError::EmptyGraph,
            RecognitionError::InducedP4(p4) => ServiceError::NotACograph {
                vertices,
                witness: p4.vertices(),
            },
        }
    }
}
