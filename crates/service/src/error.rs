//! Typed errors of the query engine.
//!
//! Every failure a job can hit — malformed input, a non-cograph graph, a
//! cover that fails self-verification, a panic inside the solver — is mapped
//! to a [`ServiceError`] variant so that batch execution can report it per
//! job without aborting the batch, and so the CLI can render it both as
//! human-readable text and as a machine-readable JSON object.

use crate::ingest::IngestError;
use crate::json::Json;
use cograph::RecognitionError;
use pcgraph::VertexId;
use std::fmt;

/// Any error a single query can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The graph input could not be parsed.
    Ingest(IngestError),
    /// The input graph is not a cograph, so the cotree pipeline cannot run.
    /// Recognition certifies the rejection with a concrete induced `P_4`,
    /// which travels all the way into the wire error body.
    NotACograph {
        /// Number of vertices of the offending graph.
        vertices: usize,
        /// The induced `P_4` found by recognition, in path order
        /// `a - b - c - d` (edges `ab`, `bc`, `cd`; non-edges `ac`, `ad`,
        /// `bd`).
        witness: [VertexId; 4],
    },
    /// The input graph has no vertices; the path-cover problem is trivial
    /// but the paper's pipeline (and recognition) require `n >= 1`.
    EmptyGraph,
    /// The request referenced the batch-level shared graph, but the batch
    /// was started without one.
    SharedGraphMissing,
    /// A produced cover failed [`pcgraph::verify_path_cover`]; this
    /// indicates a solver bug and is reported rather than returned silently.
    CoverVerificationFailed(String),
    /// The solver panicked; the panic was contained to this job.
    JobPanicked(String),
    /// The request itself was malformed (bad JSON line, unknown kind, ...).
    BadRequest(String),
    /// The request named a session handle the daemon does not hold (never
    /// created, already dropped, or reclaimed by the idle-TTL sweep).
    SessionNotFound(String),
    /// The session registry is at its admission cap; the client must drop
    /// a handle (or wait for the idle sweep) before creating another.
    TooManySessions {
        /// The configured admission cap.
        max: usize,
    },
    /// A session mutation named an invalid vertex: out of range, a
    /// self-loop, or a duplicate within one insertion. Recoverable — the
    /// session is untouched.
    InvalidVertex(String),
    /// The daemon shed this request under load (in-flight cap reached, a
    /// per-connection budget exhausted, or an injected fault). Recoverable
    /// and retryable: the wire body carries `retry_after_ms` so clients can
    /// back off before trying again.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the work completed; the job
    /// was cut short instead of burning a core on an answer nobody is
    /// waiting for.
    DeadlineExceeded,
}

impl ServiceError {
    /// Stable machine-readable error tag used in JSON output.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Ingest(_) => "ingest",
            ServiceError::NotACograph { .. } => "not_a_cograph",
            ServiceError::EmptyGraph => "empty_graph",
            ServiceError::SharedGraphMissing => "shared_graph_missing",
            ServiceError::CoverVerificationFailed(_) => "cover_verification_failed",
            ServiceError::JobPanicked(_) => "job_panicked",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::SessionNotFound(_) => "session_not_found",
            ServiceError::TooManySessions { .. } => "too_many_sessions",
            ServiceError::InvalidVertex(_) => "invalid",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// The wire-format error body every transport and API version shares:
    /// `code`, the human-readable `message`, and — for
    /// [`ServiceError::NotACograph`] — the induced-`P_4` certificate as a
    /// structured `p4` vertex array, so clients need not parse message
    /// text. This is the single place the shape is built; the response
    /// model and both the v1 and v2 dispatchers embed it verbatim.
    pub fn wire_body(&self) -> Json {
        let mut fields = vec![
            ("code", Json::str(self.code())),
            ("message", Json::str(self.to_string())),
        ];
        if let ServiceError::NotACograph { witness, .. } = self {
            fields.push((
                "p4",
                Json::Arr(witness.iter().map(|&v| Json::num(v as u64)).collect()),
            ));
        }
        if let ServiceError::Overloaded { retry_after_ms } = self {
            fields.push(("retry_after_ms", Json::num(*retry_after_ms)));
        }
        Json::obj(fields)
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Ingest(e) => write!(f, "ingest error: {e}"),
            ServiceError::NotACograph { vertices, witness } => {
                let [a, b, c, d] = witness;
                write!(
                    f,
                    "graph on {vertices} vertices is not a cograph \
                     (induced P4: {a} - {b} - {c} - {d})"
                )
            }
            ServiceError::EmptyGraph => write!(f, "graph has no vertices"),
            ServiceError::SharedGraphMissing => {
                write!(
                    f,
                    "request uses the shared batch graph, but none was provided"
                )
            }
            ServiceError::CoverVerificationFailed(detail) => {
                write!(f, "produced cover failed verification: {detail}")
            }
            ServiceError::JobPanicked(msg) => write!(f, "job panicked: {msg}"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::SessionNotFound(handle) => {
                write!(f, "no such session: {handle}")
            }
            ServiceError::TooManySessions { max } => {
                write!(f, "session limit reached ({max} live handles)")
            }
            ServiceError::InvalidVertex(msg) => write!(f, "invalid vertex: {msg}"),
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            ServiceError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<IngestError> for ServiceError {
    fn from(e: IngestError) -> Self {
        ServiceError::Ingest(e)
    }
}

impl ServiceError {
    /// Maps a typed recognition rejection onto the service taxonomy,
    /// carrying the induced-`P_4` certificate along.
    pub fn from_recognition(error: RecognitionError, vertices: usize) -> ServiceError {
        match error {
            RecognitionError::EmptyGraph => ServiceError::EmptyGraph,
            RecognitionError::InducedP4(p4) => ServiceError::NotACograph {
                vertices,
                witness: p4.vertices(),
            },
        }
    }
}
