//! HTTP/1.1 front-end for the `pcservice` daemon.
//!
//! A dependency-free adapter that exposes the [`crate::proto`] message
//! semantics over HTTP, so load balancers, `curl` and non-unix-socket
//! clients can reach the engine. It is deliberately a *transport* only: a
//! route maps onto a [`proto::Request`], the handler calls
//! [`proto::dispatch`] — the same single request → reply mapping the framed
//! protocol uses — and the reply payload becomes the response body
//! verbatim. Both transports therefore answer every request identically by
//! construction.
//!
//! ## Routes
//!
//! | Route | Body | Reply body |
//! |---|---|---|
//! | `GET /healthz` | — | `{"ok":true,"server":...,"proto":...}` |
//! | `GET /v1/stats` | — | `{"type":"stats","stats":{...}}` |
//! | `GET /v1/metrics` | — | Prometheus text (`?format=json` for JSON) |
//! | `GET /v1/trace` | — | `{"type":"trace","traces":{...}}` (flight-recorder index) |
//! | `GET /v1/trace/<id>` | — | one retained trace (`?format=chrome` for raw Chrome trace-event JSON) |
//! | `POST /v1/solve` | one query object | `{"type":"response","response":{...}}` |
//! | `POST /v1/batch` | `{"shared":...,"requests":[...]}` | `{"type":"batch","responses":[...]}` |
//! | `POST /v1/snapshot` | — | `{"type":"snapshot_ok","entries":...,"bytes":...}` |
//! | `POST /v1/shutdown` | — | `{"type":"shutdown_ok"}` |
//!
//! Query and batch bodies are exactly the payloads of the corresponding
//! `solve` / `batch` frames (the `"type"` tag is implied by the route and
//! ignored if present). `HEAD` is answered wherever `GET` is — identical
//! headers, body suppressed — so load-balancer health probes of either
//! flavour work.
//!
//! ## Deployment note
//!
//! `POST /v1/shutdown` is part of the API (it mirrors the framed
//! protocol's `shutdown` verb) and carries **no authentication**. The unix
//! socket was implicitly guarded by filesystem permissions; a TCP listener
//! is guarded only by where you bind it. Bind loopback (`127.0.0.1:…`)
//! and let a fronting proxy do auth, or filter `/v1/shutdown` at the load
//! balancer before exposing the port beyond localhost.
//!
//! ## Status codes
//!
//! The recoverable-vs-fatal taxonomy of [`crate::proto`] maps onto HTTP:
//!
//! * **200** — the request was dispatched; per-job failures still answer
//!   200 with `"ok":false` inside the response object, exactly like a
//!   batch line.
//! * **400** — malformed request line, header, JSON body or message
//!   (body-level defects keep the connection; framing defects close it).
//! * **404 / 405** — unknown route / known route with the wrong method
//!   (`Allow` header carried on the 405).
//! * **413** — a body exceeding [`proto::MAX_FRAME_LEN`], the exact cap
//!   the framed protocol enforces on its frames. The announced
//!   `Content-Length` is checked *before* any body byte is read or
//!   buffered, so an oversized declaration costs no allocation.
//! * **501** — `Transfer-Encoding` (chunked bodies are not supported).
//! * **503** — the admission gate shed the request (error body `code:
//!   "overloaded"`); `retry_after_ms` in the body and the `Retry-After`
//!   header (seconds, rounded up) carry the retry hint.
//!
//! Connections are keep-alive by default (HTTP/1.1 semantics, honouring
//! `Connection: close` and HTTP/1.0 defaults) and bounded by the daemon's
//! idle timeout. `Expect: 100-continue` is answered so large `curl` bodies
//! do not stall.
//!
//! ## Tracing
//!
//! An `X-Request-Id` header becomes the request's trace ID (one is
//! synthesized otherwise); every JSON reply — error bodies included —
//! echoes it as a top-level `"trace_id"` field, and response objects carry
//! it again under `meta.trace_id`, so a log line on either side of the
//! connection correlates with the server's slow-request log.
//! An `X-Deadline-Ms` header gives the request a deadline: the pipeline
//! checks it cooperatively and an expired request answers with a
//! `deadline_exceeded` per-job error (status 200 — the request *was*
//! dispatched; expiry is a property of the job, exactly like a batch
//! line's failure).
//! `GET /v1/metrics` serves the telemetry registry as Prometheus text
//! exposition 0.0.4 (`text/plain`) by default, or as the framed protocol's
//! `metrics` payload with `?format=json`.
//!
//! [`Client`] is the matching thin client used by `pathcover-cli
//! --remote-http`: one keep-alive connection, the same request model
//! ([`QueryRequest`] / [`GraphSpec`]) as the framed [`proto::Client`].

use crate::engine::QueryEngine;
use crate::json::Json;
use crate::model::{GraphSpec, QueryRequest};
use crate::proto::{self, MAX_FRAME_LEN, PROTO_VERSION, SERVER_NAME};
use crate::telemetry::RequestCtx;
use crate::v2;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read as _, Write};
use std::net::TcpStream;

/// Longest accepted request/status/header line, in bytes.
const MAX_LINE_LEN: usize = 8 << 10;

/// Most headers accepted on one request.
const MAX_HEADERS: usize = 64;

/// Everything that can go wrong at the HTTP layer.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying stream failed (includes idle-timeout reads).
    Io(io::Error),
    /// The peer closed the stream at a message boundary (clean EOF).
    Closed,
    /// Malformed request line, header or body (→ 400).
    BadRequest(String),
    /// The announced body length exceeds [`MAX_FRAME_LEN`] (→ 413).
    BodyTooLarge {
        /// Announced body length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// A protocol feature this server does not speak (→ 501).
    Unsupported(String),
    /// The server answered with an error status (client side only).
    Status {
        /// The HTTP status code.
        status: u16,
        /// Machine-readable error code from the body, when present.
        code: String,
        /// Human-readable message.
        message: String,
        /// The server's retry hint (overload rejections), when present.
        retry_after_ms: Option<u64>,
    },
    /// The server's reply could not be interpreted (client side only).
    BadReply(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::BodyTooLarge { len, max } => {
                write!(f, "body of {len} bytes exceeds the {max} byte cap")
            }
            HttpError::Unsupported(msg) => write!(f, "not implemented: {msg}"),
            HttpError::Status {
                status,
                code,
                message,
                ..
            } => write!(f, "server answered {status} [{code}]: {message}"),
            HttpError::BadReply(msg) => write!(f, "bad reply: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// The server-side rendering of a request-level error: status, reason
/// phrase and machine-readable code. `None` for errors that close the
/// connection silently (clean EOF, idle timeout, raw I/O failure) and for
/// the client-only variants.
fn error_status(error: &HttpError) -> Option<(u16, &'static str, &'static str)> {
    match error {
        HttpError::BadRequest(_) => Some((400, "Bad Request", "bad_request")),
        HttpError::BodyTooLarge { .. } => Some((413, "Payload Too Large", "body_too_large")),
        HttpError::Unsupported(_) => Some((501, "Not Implemented", "not_implemented")),
        HttpError::Io(_)
        | HttpError::Closed
        | HttpError::Status { .. }
        | HttpError::BadReply(_) => None,
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct HttpRequest {
    /// The request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request path with any query string stripped.
    pub path: String,
    /// The query string (the part after `?`), when one was sent.
    pub query: Option<String>,
    /// The `X-Request-Id` header value, when one was sent — becomes the
    /// request's trace ID.
    pub trace: Option<String>,
    /// The `X-Deadline-Ms` header value, when one was sent — becomes the
    /// request's deadline, measured from when the header was parsed.
    pub deadline_ms: Option<u64>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection` headers).
    pub keep_alive: bool,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one line terminated by `\n` (an optional preceding `\r` is
/// stripped), bounded by [`MAX_LINE_LEN`]. `Ok(None)` on a clean EOF
/// before any byte.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = r.read(&mut byte)?;
        if n == 0 {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("truncated line".to_string()));
        }
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_LEN {
            return Err(HttpError::BadRequest("line too long".to_string()));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("line is not UTF-8".to_string()))
}

/// Reads one request: request line, headers, `Content-Length`-bounded body.
///
/// `Ok(None)` when the peer closed the connection cleanly between
/// requests. `writer` is only touched to acknowledge `Expect:
/// 100-continue` before the body is read (without it `curl` stalls a
/// second on every sizeable body).
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
) -> Result<Option<HttpRequest>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target must be a path, got {target:?}"
        )));
    }
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version {other:?}"
            )))
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), Some(query.to_string())),
        None => (target.to_string(), None),
    };

    let mut content_length: Option<usize> = None;
    let mut expect_continue = false;
    let mut trace: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    for count in 0.. {
        if count > MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers".to_string()));
        }
        let line = read_line(reader)?
            .ok_or_else(|| HttpError::BadRequest("truncated headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let len: usize = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {value:?}")))?;
                if content_length.is_some_and(|prior| prior != len) {
                    return Err(HttpError::BadRequest(
                        "conflicting Content-Length headers".to_string(),
                    ));
                }
                if len > MAX_FRAME_LEN {
                    return Err(HttpError::BodyTooLarge {
                        len,
                        max: MAX_FRAME_LEN,
                    });
                }
                content_length = Some(len);
            }
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" if value.eq_ignore_ascii_case("100-continue") => {
                expect_continue = true;
            }
            "x-request-id" if !value.is_empty() => {
                trace = Some(value.to_string());
            }
            "x-deadline-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad X-Deadline-Ms {value:?}")))?;
                deadline_ms = Some(ms);
            }
            "transfer-encoding" => {
                return Err(HttpError::Unsupported(format!(
                    "Transfer-Encoding {value:?} (send a Content-Length body)"
                )));
            }
            _ => {}
        }
    }
    // No Content-Length (and no Transfer-Encoding) means no body, per RFC
    // 7230 §3.3 — a bodyless `curl -X POST .../v1/shutdown` is valid.
    let mut body = vec![0u8; content_length.unwrap_or(0)];
    if !body.is_empty() {
        if expect_continue {
            writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
            writer.flush()?;
        }
        reader.read_exact(&mut body)?;
    }
    Ok(Some(HttpRequest {
        method: method.to_string(),
        path,
        query,
        trace,
        deadline_ms,
        keep_alive,
        body,
    }))
}

/// A response body: JSON (every API route) or plain text (the Prometheus
/// exposition of `/v1/metrics`). The variant decides the `Content-Type`.
#[derive(Debug)]
pub enum HttpBody {
    /// A JSON body, served as `application/json`.
    Json(Json),
    /// A plain-text body, served as Prometheus text exposition 0.0.4.
    Text(String),
}

impl HttpBody {
    /// The `Content-Type` header value for this body.
    pub fn content_type(&self) -> &'static str {
        match self {
            HttpBody::Json(_) => "application/json",
            HttpBody::Text(_) => "text/plain; version=0.0.4; charset=utf-8",
        }
    }

    /// The JSON payload, when this is a JSON body.
    pub fn as_json(&self) -> Option<&Json> {
        match self {
            HttpBody::Json(json) => Some(json),
            HttpBody::Text(_) => None,
        }
    }

    /// Renders the wire body, newline-terminated (so `curl` output is
    /// terminal-friendly and the Prometheus exposition is well-formed).
    pub fn render(&self) -> String {
        match self {
            HttpBody::Json(json) => {
                let mut text = json.to_string();
                text.push('\n');
                text
            }
            HttpBody::Text(text) => {
                let mut text = text.clone();
                if !text.ends_with('\n') {
                    text.push('\n');
                }
                text
            }
        }
    }
}

/// One response, before serialization.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// The reason phrase.
    pub reason: &'static str,
    /// The `Allow` header value (405 responses).
    pub allow: Option<&'static str>,
    /// Emit a `Deprecation: true` header (every `/v1/*` response carries
    /// it since the v2 envelope landed; `POST /v2/query` is the successor).
    pub deprecated: bool,
    /// The `Retry-After` hint in milliseconds (503 overload rejections);
    /// serialized as whole seconds, rounded up.
    pub retry_after_ms: Option<u64>,
    /// The body.
    pub body: HttpBody,
}

impl HttpResponse {
    fn ok(body: Json) -> HttpResponse {
        HttpResponse {
            status: 200,
            reason: "OK",
            allow: None,
            deprecated: false,
            retry_after_ms: None,
            body: HttpBody::Json(body),
        }
    }

    fn text(body: String) -> HttpResponse {
        HttpResponse {
            status: 200,
            reason: "OK",
            allow: None,
            deprecated: false,
            retry_after_ms: None,
            body: HttpBody::Text(body),
        }
    }

    fn error(status: u16, reason: &'static str, code: &str, message: &str) -> HttpResponse {
        HttpResponse {
            status,
            reason,
            allow: None,
            deprecated: false,
            retry_after_ms: None,
            body: HttpBody::Json(proto::error_reply(code, message)),
        }
    }

    /// Attaches the trace id to the JSON body (idempotent; the Prometheus
    /// text body is the one surface left untouched). Every reply path —
    /// routed, oversize-reject and transport-error — funnels through here,
    /// so no reply can leave without correlation.
    fn attach_trace(&mut self, ctx: &RequestCtx) {
        let body = std::mem::replace(&mut self.body, HttpBody::Text(String::new()));
        self.body = match body {
            HttpBody::Json(json) => HttpBody::Json(proto::attach_trace(json, ctx)),
            text => text,
        };
    }
}

/// Serializes one response: status line, `Content-Type` /
/// `Content-Length` / `Connection` (and optional `Allow`) headers, then
/// the JSON body with a trailing newline (so `curl` output is
/// terminal-friendly).
pub fn write_response<W: Write>(
    w: &mut W,
    response: &HttpResponse,
    keep_alive: bool,
) -> io::Result<()> {
    let body = response.body.render();
    write_response_parts(w, response, &body, keep_alive, true)
}

/// The serialization behind [`write_response`], taking the body
/// pre-rendered (so callers that need its length first serialize exactly
/// once). `include_body: false` answers `HEAD`: the headers —
/// `Content-Length` included — describe the body without sending it.
fn write_response_parts<W: Write>(
    w: &mut W,
    response: &HttpResponse,
    body: &str,
    keep_alive: bool,
    include_body: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        response.reason,
        response.body.content_type(),
        body.len()
    )?;
    if let Some(allow) = response.allow {
        write!(w, "Allow: {allow}\r\n")?;
    }
    if response.deprecated {
        write!(w, "Deprecation: true\r\n")?;
    }
    if let Some(ms) = response.retry_after_ms {
        // Retry-After is whole seconds on the wire; round up so the header
        // never understates the JSON body's millisecond hint.
        write!(w, "Retry-After: {}\r\n", ms.div_ceil(1000).max(1))?;
    }
    write!(
        w,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    if include_body {
        w.write_all(body.as_bytes())?;
    }
    w.flush()
}

/// Parses a request body as JSON, mapping defects onto 400 responses with
/// the framed protocol's `bad_json` / `bad_message` error codes.
fn parse_body(body: &[u8]) -> Result<Json, HttpResponse> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpResponse::error(400, "Bad Request", "bad_message", "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| {
        HttpResponse::error(
            400,
            "Bad Request",
            "bad_json",
            &format!("body is not JSON: {e}"),
        )
    })
}

/// Routes one request onto the engine: the whole HTTP → [`proto::Request`]
/// mapping, pure and socket-free (directly testable). Dispatched requests
/// answer 200 with the [`proto::dispatch`] reply payload as the body.
///
/// The trace ID comes from the request's `X-Request-Id` header (synthesized
/// when absent) and is echoed as a top-level `"trace_id"` on every JSON
/// body, error replies included.
pub fn respond(engine: &QueryEngine, request: &HttpRequest) -> (HttpResponse, proto::Action) {
    let ctx = match &request.trace {
        Some(trace) => RequestCtx::with_trace(trace.clone()),
        None => RequestCtx::generate(),
    }
    .with_deadline_ms(request.deadline_ms);
    let (mut response, action) = route(engine, request, &ctx);
    // Admission-gate sheds surface as HTTP 503 with a Retry-After header,
    // whichever dispatcher (v1 verb or v2 envelope) produced the reply.
    if response.status == 200 {
        if let Some(hint) = response.body.as_json().and_then(overload_retry_hint) {
            response.status = 503;
            response.reason = "Service Unavailable";
            response.retry_after_ms = Some(hint);
        }
    }
    if request.path.starts_with("/v1/") {
        // Deprecation surface: every /v1 route answers with a
        // `Deprecation: true` header and a top-level `meta.api_version`
        // marker in JSON bodies (Prometheus text can only carry the
        // header). The markers sit *outside* the inner payload objects, so
        // v1 bodies stay byte-identical to their v2-envelope equivalents.
        response.deprecated = true;
        if let HttpBody::Json(body) = response.body {
            response.body = HttpBody::Json(attach_api_version(body, 1));
        }
    }
    // Locally-built replies (health, routing errors) get the trace here;
    // dispatched replies already carry it (the attachment is idempotent).
    response.attach_trace(&ctx);
    (response, action)
}

/// Detects an admission-gate rejection in a dispatched reply body and
/// returns its retry hint. Two shapes carry one: a v1 error reply
/// (`{"type":"error","code":"overloaded",...}`) and a v2 error envelope
/// (`{"ok":false,"error":{"code":"overloaded",...}}`). Per-job failures
/// live *inside* response objects and never match here.
fn overload_retry_hint(body: &Json) -> Option<u64> {
    let error = if body.get("type").and_then(Json::as_str) == Some("error") {
        body
    } else {
        body.get("error")?
    };
    if error.get("code").and_then(Json::as_str) != Some("overloaded") {
        return None;
    }
    Some(
        error
            .get("retry_after_ms")
            .and_then(Json::as_u64)
            .unwrap_or(crate::engine::DEFAULT_RETRY_AFTER_MS),
    )
}

/// Appends a top-level `meta.api_version` marker to a v1 reply body
/// (merging into an existing top-level `meta` object if one ever appears).
fn attach_api_version(body: Json, version: u64) -> Json {
    let Json::Obj(mut fields) = body else {
        return body;
    };
    match fields.iter_mut().find(|(key, _)| key == "meta") {
        Some((_, Json::Obj(meta))) => {
            if !meta.iter().any(|(key, _)| key == "api_version") {
                meta.push(("api_version".to_string(), Json::num(version)));
            }
        }
        Some(_) => {}
        None => fields.push((
            "meta".to_string(),
            Json::obj(vec![("api_version", Json::num(version))]),
        )),
    }
    Json::Obj(fields)
}

/// The route match behind [`respond`], before trace attachment.
fn route(
    engine: &QueryEngine,
    request: &HttpRequest,
    ctx: &RequestCtx,
) -> (HttpResponse, proto::Action) {
    let method = request.method.as_str();
    let path = request.path.as_str();
    let dispatched = |request: proto::Request| {
        let (reply, action) = proto::dispatch_ctx(engine, &request, ctx);
        (HttpResponse::ok(reply), action)
    };
    // HEAD is answered wherever GET is (load-balancer health probes
    // commonly use it); the body is suppressed at write time.
    match (method, path) {
        ("GET" | "HEAD", "/healthz") => (
            HttpResponse::ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("server", Json::str(SERVER_NAME)),
                ("proto", Json::num(PROTO_VERSION)),
            ])),
            proto::Action::Continue,
        ),
        ("GET" | "HEAD", "/v1/stats") => dispatched(proto::Request::Stats),
        ("GET" | "HEAD", "/v1/metrics") => {
            let wants_json = request
                .query
                .as_deref()
                .is_some_and(|query| query.split('&').any(|pair| pair == "format=json"));
            if wants_json {
                dispatched(proto::Request::Metrics)
            } else {
                (
                    HttpResponse::text(engine.metrics_report().to_prometheus()),
                    proto::Action::Continue,
                )
            }
        }
        ("GET" | "HEAD", "/v1/trace") => dispatched(proto::Request::Trace {
            id: None,
            chrome: false,
        }),
        ("GET" | "HEAD", _) if path.starts_with("/v1/trace/") => {
            let id = &path["/v1/trace/".len()..];
            if id.is_empty() {
                return (
                    HttpResponse::error(404, "Not Found", "not_found", "empty trace id"),
                    proto::Action::Continue,
                );
            }
            let chrome = request
                .query
                .as_deref()
                .is_some_and(|query| query.split('&').any(|pair| pair == "format=chrome"));
            if chrome {
                // Chrome trace-event export is served raw (not wrapped in the
                // v1 reply envelope) so the body loads directly into
                // chrome://tracing or Perfetto.
                return match engine.recorder().get(id) {
                    Some(trace) => (
                        HttpResponse::ok(trace.to_chrome_json()),
                        proto::Action::Continue,
                    ),
                    None => (
                        HttpResponse::error(
                            404,
                            "Not Found",
                            "trace_not_found",
                            &format!("no retained trace with id '{id}'"),
                        ),
                        proto::Action::Continue,
                    ),
                };
            }
            let (mut response, action) = dispatched(proto::Request::Trace {
                id: Some(id.to_string()),
                chrome: false,
            });
            // A miss is a resource lookup failure: surface it as HTTP 404
            // while keeping the framed protocol's error body.
            if response.body.as_json().is_some_and(|body| {
                body.get("code").and_then(Json::as_str) == Some("trace_not_found")
            }) {
                response.status = 404;
                response.reason = "Not Found";
            }
            (response, action)
        }
        ("POST", "/v1/snapshot") => dispatched(proto::Request::Snapshot),
        ("POST", "/v1/shutdown") => dispatched(proto::Request::Shutdown),
        ("POST", "/v1/solve") => match parse_body(&request.body) {
            Ok(value) => match QueryRequest::from_json(&value) {
                Ok(query) => dispatched(proto::Request::Solve(query)),
                Err(e) => (
                    HttpResponse::error(400, "Bad Request", "bad_message", &e.to_string()),
                    proto::Action::Continue,
                ),
            },
            Err(response) => (response, proto::Action::Continue),
        },
        ("POST", "/v1/batch") => match parse_body(&request.body) {
            Ok(value) => match proto::batch_fields(&value) {
                Ok((shared, requests)) => dispatched(proto::Request::Batch { shared, requests }),
                Err(e) => (
                    HttpResponse::error(400, "Bad Request", "bad_message", &e.to_string()),
                    proto::Action::Continue,
                ),
            },
            Err(response) => (response, proto::Action::Continue),
        },
        // The v2 envelope: one route for every operation, body-dispatched.
        // Operation failures are in-band (`ok: false` envelopes, status
        // 200); only a body that is not JSON at all earns a 400.
        ("POST", "/v2/query") => match parse_body(&request.body) {
            Ok(value) => {
                let (reply, action) = v2::dispatch_envelope(engine, &value, ctx);
                (HttpResponse::ok(reply), action)
            }
            Err(response) => (response, proto::Action::Continue),
        },
        (_, "/healthz" | "/v1/stats" | "/v1/metrics" | "/v1/trace") => (
            HttpResponse {
                allow: Some("GET, HEAD"),
                ..HttpResponse::error(
                    405,
                    "Method Not Allowed",
                    "method_not_allowed",
                    &format!("{path} only answers GET"),
                )
            },
            proto::Action::Continue,
        ),
        (_, "/v1/solve" | "/v1/batch" | "/v1/snapshot" | "/v1/shutdown" | "/v2/query") => (
            HttpResponse {
                allow: Some("POST"),
                ..HttpResponse::error(
                    405,
                    "Method Not Allowed",
                    "method_not_allowed",
                    &format!("{path} only answers POST"),
                )
            },
            proto::Action::Continue,
        ),
        (_, _) if path.starts_with("/v1/trace/") => (
            HttpResponse {
                allow: Some("GET, HEAD"),
                ..HttpResponse::error(
                    405,
                    "Method Not Allowed",
                    "method_not_allowed",
                    &format!("{path} only answers GET"),
                )
            },
            proto::Action::Continue,
        ),
        _ => (
            HttpResponse::error(
                404,
                "Not Found",
                "not_found",
                &format!("no route {method} {path}"),
            ),
            proto::Action::Continue,
        ),
    }
}

/// A `503 Service Unavailable` rejection carrying the standard overload
/// error body and retry hint — used for faults-forced sheds and exhausted
/// per-connection budgets (engine-side sheds arrive through [`respond`]).
fn overloaded_response(retry_after_ms: u64) -> HttpResponse {
    let error = crate::error::ServiceError::Overloaded { retry_after_ms };
    let mut fields = vec![("type".to_string(), Json::str("error"))];
    if let Json::Obj(body) = error.wire_body() {
        fields.extend(body);
    }
    HttpResponse {
        status: 503,
        reason: "Service Unavailable",
        allow: None,
        deprecated: false,
        retry_after_ms: Some(retry_after_ms),
        body: HttpBody::Json(Json::Obj(fields)),
    }
}

/// Serves one HTTP connection to completion: the keep-alive request loop
/// with the status-code error mapping. The [`crate::daemon`] accept loop
/// plugs this in exactly where the framed transport plugs in
/// `serve_proto_conn`.
#[cfg(unix)]
pub fn serve_conn<C: crate::daemon::Connection>(
    conn: C,
    engine: &QueryEngine,
    shutdown: &crate::daemon::ShutdownSignal,
) {
    serve_conn_opts(conn, engine, shutdown, &crate::faults::Faults::default(), 0)
}

/// [`serve_conn`] with the daemon's resilience knobs: a fault-injection
/// runtime and a per-connection request budget (`0` = unlimited; a
/// request beyond the budget is answered `503 overloaded` and the
/// connection closes).
#[cfg(unix)]
pub fn serve_conn_opts<C: crate::daemon::Connection>(
    conn: C,
    engine: &QueryEngine,
    shutdown: &crate::daemon::ShutdownSignal,
    faults: &crate::faults::Faults,
    request_budget: u64,
) {
    let Ok(write_half) = conn.try_clone_conn() else {
        return;
    };
    engine
        .telemetry()
        .conn_opened(crate::telemetry::Transport::Http);
    // Decrement the gauge on *every* exit, injected handler panics
    // included, so chaos runs cannot leak open-connection counts.
    struct ConnGauge<'t>(&'t crate::telemetry::Telemetry);
    impl Drop for ConnGauge<'_> {
        fn drop(&mut self) {
            self.0.conn_closed(crate::telemetry::Transport::Http);
        }
    }
    let _gauge = ConnGauge(engine.telemetry());
    let mut reader = BufReader::new(conn);
    let mut writer = io::BufWriter::new(write_half);
    let mut served: u64 = 0;
    while !shutdown.is_triggered() {
        match read_request(&mut reader, &mut writer) {
            Ok(None) => break,
            Ok(Some(request)) => {
                if let Some(stall) = faults.frame_stall() {
                    std::thread::sleep(stall);
                }
                if faults.should_panic() {
                    panic!("injected fault: http handler panic");
                }
                let budget_spent = request_budget != 0 && served >= request_budget;
                let (mut response, action) = if budget_spent || faults.should_overload() {
                    engine.telemetry().overload_rejected();
                    let mut response = overloaded_response(crate::engine::DEFAULT_RETRY_AFTER_MS);
                    let ctx = match &request.trace {
                        Some(trace) => RequestCtx::with_trace(trace.clone()),
                        None => RequestCtx::generate(),
                    };
                    response.attach_trace(&ctx);
                    (response, proto::Action::Continue)
                } else {
                    served += 1;
                    respond(engine, &request)
                };
                // One serialization serves both the cap check and the
                // write. Mirror the framed transport's reply cap: an
                // oversized reply becomes a small error instead of an
                // unbounded write.
                let mut body = response.body.render();
                if body.len() > MAX_FRAME_LEN {
                    engine
                        .telemetry()
                        .oversize_reject(crate::telemetry::Transport::Http);
                    response = HttpResponse::error(
                        500,
                        "Internal Server Error",
                        "frame_too_large",
                        &format!("reply exceeds the {MAX_FRAME_LEN} byte cap (split the batch)"),
                    );
                    let ctx = match &request.trace {
                        Some(trace) => RequestCtx::with_trace(trace.clone()),
                        None => RequestCtx::generate(),
                    };
                    response.attach_trace(&ctx);
                    body = response.body.render();
                }
                let keep_alive =
                    request.keep_alive && action == proto::Action::Continue && !budget_spent;
                let written = write_response_parts(
                    &mut writer,
                    &response,
                    &body,
                    keep_alive,
                    request.method != "HEAD",
                );
                if action == proto::Action::Shutdown {
                    // The acknowledgement is already flushed (or the
                    // client is gone); either way the daemon stops.
                    shutdown.trigger();
                    break;
                }
                if written.is_err() || !keep_alive {
                    break;
                }
            }
            Err(error) => {
                // Idle timeouts and clean EOFs close silently; framing
                // defects get a best-effort error response. Either way
                // this connection is done — and only this connection.
                match &error {
                    HttpError::Io(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        engine
                            .telemetry()
                            .idle_timeout(crate::telemetry::Transport::Http);
                    }
                    HttpError::BodyTooLarge { .. } => {
                        engine
                            .telemetry()
                            .oversize_reject(crate::telemetry::Transport::Http);
                    }
                    _ => {}
                }
                if let Some((status, reason, code)) = error_status(&error) {
                    let mut response =
                        HttpResponse::error(status, reason, code, &error.to_string());
                    // No request made it through parsing, so there is no
                    // client-supplied ID — correlate with a fresh one.
                    response.attach_trace(&RequestCtx::generate());
                    let _ = write_response(&mut writer, &response, false);
                }
                break;
            }
        }
    }
}

/// A thin HTTP client over one keep-alive connection, mirroring
/// [`proto::Client`] method-for-method so `pathcover-cli` can treat the
/// two transports interchangeably. With a [`proto::RetryPolicy`] attached
/// ([`Client::with_retry`]), idempotent calls answered `503 overloaded`
/// are retried with backoff; the default is no retrying.
pub struct Client {
    reader: BufReader<TcpStream>,
    retry: Option<proto::RetryPolicy>,
}

impl Client {
    /// Connects and probes `GET /healthz`, so a listener that is not a
    /// pcservice daemon is rejected up front.
    pub fn connect(addr: &str) -> Result<Client, HttpError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client {
            reader: BufReader::new(stream),
            retry: None,
        };
        let health = client.request("GET", "/healthz", None)?;
        if health.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(HttpError::BadReply(format!(
                "healthz did not acknowledge: {health}"
            )));
        }
        Ok(client)
    }

    /// Attaches a retry policy for idempotent calls (`solve` / `batch` /
    /// `stats` / `metrics`) answered `503 overloaded`.
    pub fn with_retry(mut self, policy: proto::RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// One request/response round trip. Error statuses are decoded into
    /// [`HttpError::Status`] using the error body's `code` / `message`.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, HttpError> {
        let body_text = body.map(|b| {
            let mut text = b.to_string();
            text.push('\n');
            text
        });
        let written = (|| -> io::Result<()> {
            let stream = self.reader.get_mut();
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: pcservice\r\nConnection: keep-alive\r\n"
            )?;
            if let Some(text) = &body_text {
                write!(
                    stream,
                    "Content-Type: application/json\r\nContent-Length: {}\r\n",
                    text.len()
                )?;
            } else if method == "POST" {
                // An explicit zero keeps bodyless POSTs unambiguous for any
                // intermediary between here and the daemon.
                stream.write_all(b"Content-Length: 0\r\n")?;
            }
            stream.write_all(b"\r\n")?;
            if let Some(text) = &body_text {
                stream.write_all(text.as_bytes())?;
            }
            stream.flush()
        })();
        if let Err(error) = written {
            // The daemon may have rejected this connection at accept time
            // (connection cap) and closed it after writing one 503. Our
            // write raced that close — prefer the buffered typed rejection
            // over a bare broken pipe.
            return match self.read_response() {
                Ok(value) => Ok(value),
                Err(_) => Err(error.into()),
            };
        }
        self.read_response()
    }

    /// Reads and decodes one HTTP response (the read half of
    /// [`Client::request`]). Error statuses are decoded into
    /// [`HttpError::Status`].
    fn read_response(&mut self) -> Result<Json, HttpError> {
        let status_line = read_line(&mut self.reader)?.ok_or(HttpError::Closed)?;
        let mut parts = status_line.split_whitespace();
        let status: u16 = match (parts.next(), parts.next()) {
            (Some(version), Some(status)) if version.starts_with("HTTP/1.") => status
                .parse()
                .map_err(|_| HttpError::BadReply(format!("bad status line {status_line:?}")))?,
            _ => {
                return Err(HttpError::BadReply(format!(
                    "bad status line {status_line:?}"
                )))
            }
        };
        let mut content_length: Option<usize> = None;
        loop {
            let line = read_line(&mut self.reader)?
                .ok_or_else(|| HttpError::BadReply("truncated response headers".to_string()))?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    let len: usize = value.trim().parse().map_err(|_| {
                        HttpError::BadReply(format!("bad Content-Length {value:?}"))
                    })?;
                    if len > MAX_FRAME_LEN {
                        return Err(HttpError::BodyTooLarge {
                            len,
                            max: MAX_FRAME_LEN,
                        });
                    }
                    content_length = Some(len);
                }
            }
        }
        let len = content_length
            .ok_or_else(|| HttpError::BadReply("response without Content-Length".to_string()))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let text = std::str::from_utf8(&body)
            .map_err(|_| HttpError::BadReply("response body is not UTF-8".to_string()))?;
        let value = Json::parse(text.trim_end())
            .map_err(|e| HttpError::BadReply(format!("response body is not JSON: {e}")))?;
        if !(200..300).contains(&status) {
            return Err(HttpError::Status {
                status,
                code: value
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("http")
                    .to_string(),
                message: value
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                retry_after_ms: value.get("retry_after_ms").and_then(Json::as_u64),
            });
        }
        Ok(value)
    }

    /// [`Client::request`] with overload retries, used only by the
    /// idempotent calls: a `503` whose body carries `code: "overloaded"`
    /// is retried under the attached policy, honoring the server's
    /// `retry_after_ms` hint as the minimum wait.
    fn request_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, HttpError> {
        let mut attempt = 0u32;
        loop {
            let result = self.request(method, path, body);
            let delay = match (&self.retry, &result) {
                (
                    Some(policy),
                    Err(HttpError::Status {
                        code,
                        retry_after_ms,
                        ..
                    }),
                ) if attempt < policy.max_retries && code == "overloaded" => {
                    Some(policy.backoff(attempt, *retry_after_ms))
                }
                _ => None,
            };
            match delay {
                Some(delay) => {
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                None => return result,
            }
        }
    }

    /// Checks a 2xx reply's `"type"` tag against the route's expectation.
    fn expect(reply: Json, expected: &str) -> Result<Json, HttpError> {
        match reply.get("type").and_then(Json::as_str) {
            Some(kind) if kind == expected => Ok(reply),
            other => Err(HttpError::BadReply(format!(
                "expected '{expected}' reply, got {other:?}"
            ))),
        }
    }

    /// `GET /healthz`: the server's liveness object.
    pub fn health(&mut self) -> Result<Json, HttpError> {
        self.request("GET", "/healthz", None)
    }

    /// `POST /v1/solve`: executes one query remotely; returns the response
    /// object (the `QueryResponse::to_json` shape).
    pub fn solve(&mut self, request: &QueryRequest) -> Result<Json, HttpError> {
        let reply = self.request_retry("POST", "/v1/solve", Some(&request.to_json()))?;
        Self::expect(reply, "response")?
            .get("response")
            .cloned()
            .ok_or_else(|| HttpError::BadReply("response reply missing payload".to_string()))
    }

    /// `POST /v1/batch`: executes a batch remotely; returns the response
    /// objects in request order.
    pub fn batch(
        &mut self,
        shared: Option<GraphSpec>,
        requests: Vec<QueryRequest>,
    ) -> Result<Vec<Json>, HttpError> {
        let payload = proto::Request::Batch { shared, requests }.to_json();
        let reply = self.request_retry("POST", "/v1/batch", Some(&payload))?;
        match Self::expect(reply, "batch")?.get("responses") {
            Some(Json::Arr(items)) => Ok(items.clone()),
            _ => Err(HttpError::BadReply(
                "batch reply missing 'responses' array".to_string(),
            )),
        }
    }

    /// `GET /v1/stats`: the daemon's cache statistics object.
    pub fn stats(&mut self) -> Result<Json, HttpError> {
        let reply = self.request_retry("GET", "/v1/stats", None)?;
        Self::expect(reply, "stats")?
            .get("stats")
            .cloned()
            .ok_or_else(|| HttpError::BadReply("stats reply missing payload".to_string()))
    }

    /// `GET /v1/metrics?format=json`: the telemetry registry's JSON export
    /// (the same payload as the framed protocol's `metrics` reply).
    pub fn metrics(&mut self) -> Result<Json, HttpError> {
        let reply = self.request_retry("GET", "/v1/metrics?format=json", None)?;
        Self::expect(reply, "metrics")?
            .get("metrics")
            .cloned()
            .ok_or_else(|| HttpError::BadReply("metrics reply missing payload".to_string()))
    }

    /// `GET /v1/trace` (the flight-recorder index, `id: None`) or
    /// `GET /v1/trace/<id>` (one retained trace). `chrome` selects the raw
    /// Chrome trace-event export for a single trace and returns it
    /// verbatim; the other flavours are unwrapped from the v1 reply
    /// envelope.
    pub fn trace(&mut self, id: Option<&str>, chrome: bool) -> Result<Json, HttpError> {
        let path = match (id, chrome) {
            (None, _) => "/v1/trace".to_string(),
            (Some(id), false) => format!("/v1/trace/{id}"),
            (Some(id), true) => format!("/v1/trace/{id}?format=chrome"),
        };
        let reply = self.request_retry("GET", &path, None)?;
        if id.is_some() && chrome {
            return Ok(reply);
        }
        let field = if id.is_some() { "trace" } else { "traces" };
        Self::expect(reply, "trace")?
            .get(field)
            .cloned()
            .ok_or_else(|| HttpError::BadReply(format!("trace reply missing '{field}' payload")))
    }

    /// `POST /v1/snapshot`: asks the daemon to persist its warm cache
    /// right now; returns the `snapshot_ok` object. A daemon serving
    /// without `--snapshot` answers a `snapshot_unconfigured` error reply —
    /// HTTP 200 with an error body, exactly like the framed protocol —
    /// which this method surfaces as a typed [`HttpError::Status`].
    pub fn save_snapshot(&mut self) -> Result<Json, HttpError> {
        let reply = self.request("POST", "/v1/snapshot", None)?;
        if reply.get("type").and_then(Json::as_str) == Some("error") {
            return Err(HttpError::Status {
                status: 200,
                code: reply
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: reply
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                retry_after_ms: reply.get("retry_after_ms").and_then(Json::as_u64),
            });
        }
        Self::expect(reply, "snapshot_ok")
    }

    /// `POST /v1/shutdown`: asks the daemon to stop; returns after the
    /// acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), HttpError> {
        let reply = self.request("POST", "/v1/shutdown", None)?;
        Self::expect(reply, "shutdown_ok").map(|_| ())
    }

    /// `POST /v2/query`: sends one v2 envelope and returns the reply
    /// envelope verbatim. Operation failures are *in-band* — the reply
    /// answers 200 with `"ok": false` and a typed `error` object — so the
    /// caller inspects the envelope rather than matching on [`HttpError`].
    pub fn query_v2(&mut self, envelope: &Json) -> Result<Json, HttpError> {
        self.request("POST", "/v2/query", Some(envelope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QueryKind;

    /// Parses request bytes, discarding interim writes (100-continue).
    fn parse(bytes: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        let mut reader = BufReader::new(bytes);
        let mut sink = Vec::new();
        read_request(&mut reader, &mut sink)
    }

    #[test]
    fn request_parsing_happy_path_and_keep_alive_defaults() {
        let request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(request.body.is_empty());

        let request = parse(b"GET /healthz?probe=1 HTTP/1.0\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/healthz", "query string stripped");
        assert!(!request.keep_alive, "HTTP/1.0 defaults to close");

        let request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!request.keep_alive, "Connection: close honoured");

        let request = parse(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn request_id_header_and_query_string_are_captured() {
        let request =
            parse(b"GET /v1/metrics?format=json HTTP/1.1\r\nX-Request-Id: abc-123\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(request.path, "/v1/metrics");
        assert_eq!(request.query.as_deref(), Some("format=json"));
        assert_eq!(request.trace.as_deref(), Some("abc-123"));

        let request = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(request.query.is_none());
        assert!(request.trace.is_none(), "no header, no trace");
    }

    #[test]
    fn clean_eof_is_none_and_defects_are_typed() {
        assert!(parse(b"").unwrap().is_none(), "clean EOF between requests");
        assert!(matches!(
            parse(b"GET /x\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        let bodyless_post = parse(b"POST /v1/shutdown HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(
            bodyless_post.body.is_empty(),
            "no Content-Length means an empty body, not an error"
        );
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Unsupported(_))
        ));
        let oversized = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_FRAME_LEN + 1
        );
        assert!(matches!(
            parse(oversized.as_bytes()),
            Err(HttpError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn expect_continue_is_acknowledged_before_the_body() {
        let mut reader = BufReader::new(
            &b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\nok"[..],
        );
        let mut interim = Vec::new();
        let request = read_request(&mut reader, &mut interim).unwrap().unwrap();
        assert_eq!(request.body, b"ok");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    fn get(
        engine: &QueryEngine,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> (HttpResponse, proto::Action) {
        respond(
            engine,
            &HttpRequest {
                method: method.to_string(),
                path: path.to_string(),
                query: None,
                trace: None,
                deadline_ms: None,
                keep_alive: true,
                body: body.to_vec(),
            },
        )
    }

    #[test]
    fn routing_answers_each_route_and_status() {
        let engine = QueryEngine::default();

        let (health, action) = get(&engine, "GET", "/healthz", b"");
        assert_eq!(health.status, 200);
        assert_eq!(
            health
                .body
                .as_json()
                .unwrap()
                .get("ok")
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(action, proto::Action::Continue);

        // HEAD probes (common load-balancer default) route like GET; the
        // body is suppressed at write time, not here.
        let (head, _) = get(&engine, "HEAD", "/healthz", b"");
        assert_eq!(head.status, 200);
        let (head, _) = get(&engine, "HEAD", "/v1/stats", b"");
        assert_eq!(head.status, 200);

        let (solve, _) = get(
            &engine,
            "POST",
            "/v1/solve",
            br#"{"kind":"min_cover_size","cotree":"(j a b c)"}"#,
        );
        assert_eq!(solve.status, 200);
        assert_eq!(
            solve
                .body
                .as_json()
                .unwrap()
                .get("response")
                .and_then(|r| r.get("answer"))
                .and_then(|a| a.get("size"))
                .and_then(Json::as_u64),
            Some(1)
        );

        let (batch, _) = get(
            &engine,
            "POST",
            "/v1/batch",
            br#"{"requests":[{"kind":"recognize","cotree":"(j a b)"}]}"#,
        );
        assert_eq!(batch.status, 200);
        assert!(
            matches!(batch.body.as_json().unwrap().get("responses"), Some(Json::Arr(r)) if r.len() == 1)
        );

        let (stats, _) = get(&engine, "GET", "/v1/stats", b"");
        assert_eq!(stats.status, 200);
        assert!(stats
            .body
            .as_json()
            .unwrap()
            .get("stats")
            .and_then(|s| s.get("hits"))
            .is_some());

        // Save-now routes into the same dispatch; without persistence
        // configured it is a 200 carrying a typed error body.
        let (snapshot, action) = get(&engine, "POST", "/v1/snapshot", b"");
        assert_eq!(snapshot.status, 200);
        assert_eq!(
            snapshot
                .body
                .as_json()
                .unwrap()
                .get("code")
                .and_then(Json::as_str),
            Some("snapshot_unconfigured")
        );
        assert_eq!(action, proto::Action::Continue);
        let (snapshot, _) = get(&engine, "GET", "/v1/snapshot", b"");
        assert_eq!(snapshot.status, 405);
        assert_eq!(snapshot.allow, Some("POST"));

        let (shutdown, action) = get(&engine, "POST", "/v1/shutdown", b"");
        assert_eq!(shutdown.status, 200);
        assert_eq!(action, proto::Action::Shutdown);
        assert_eq!(
            shutdown
                .body
                .as_json()
                .unwrap()
                .get("type")
                .and_then(Json::as_str),
            Some("shutdown_ok")
        );
    }

    #[test]
    fn metrics_route_serves_prometheus_text_and_json() {
        let engine = QueryEngine::default();
        let (solve, _) = get(
            &engine,
            "POST",
            "/v1/solve",
            br#"{"kind":"min_cover_size","cotree":"(j a b c)"}"#,
        );
        assert_eq!(solve.status, 200);

        // Default flavour: Prometheus text exposition, not JSON.
        let (metrics, action) = get(&engine, "GET", "/v1/metrics", b"");
        assert_eq!(metrics.status, 200);
        assert_eq!(action, proto::Action::Continue);
        assert!(metrics.body.as_json().is_none(), "prometheus body is text");
        assert_eq!(
            metrics.body.content_type(),
            "text/plain; version=0.0.4; charset=utf-8"
        );
        let text = metrics.body.render();
        assert!(text.contains("pc_requests_total{"), "{text}");
        assert!(text.ends_with('\n'), "exposition must end with a newline");

        // `?format=json` answers the framed protocol's metrics payload.
        let request = HttpRequest {
            method: "GET".to_string(),
            path: "/v1/metrics".to_string(),
            query: Some("format=json".to_string()),
            trace: None,
            deadline_ms: None,
            keep_alive: true,
            body: Vec::new(),
        };
        let (metrics, _) = respond(&engine, &request);
        let payload = metrics.body.as_json().expect("json body");
        assert_eq!(payload.get("type").and_then(Json::as_str), Some("metrics"));
        assert_eq!(
            payload
                .get("metrics")
                .and_then(|m| m.get("requests_total"))
                .and_then(Json::as_u64),
            Some(1),
            "the solve above must be booked: {payload}"
        );

        let (metrics, _) = get(&engine, "POST", "/v1/metrics", b"");
        assert_eq!(metrics.status, 405);
        assert_eq!(metrics.allow, Some("GET, HEAD"));
    }

    #[test]
    fn trace_routes_list_fetch_export_and_reject_methods() {
        let engine = QueryEngine::default();
        let request = HttpRequest {
            method: "POST".to_string(),
            path: "/v1/solve".to_string(),
            query: None,
            trace: Some("t-http".to_string()),
            deadline_ms: None,
            keep_alive: true,
            body: br#"{"kind":"full_cover","cotree":"(u a b c)"}"#.to_vec(),
        };
        let (solve, _) = respond(&engine, &request);
        assert_eq!(solve.status, 200);

        // The flight-recorder index lists the solve's trace.
        let (list, _) = get(&engine, "GET", "/v1/trace", b"");
        assert_eq!(list.status, 200);
        let body = list.body.as_json().expect("json body");
        assert_eq!(body.get("type").and_then(Json::as_str), Some("trace"));
        let traces = body.get("traces").expect("traces payload");
        assert!(
            traces.get("retained").and_then(Json::as_u64) >= Some(1),
            "{traces}"
        );

        // Fetching by id answers the full trace with its stage spans.
        let (one, _) = get(&engine, "GET", "/v1/trace/t-http", b"");
        assert_eq!(one.status, 200);
        let trace = one
            .body
            .as_json()
            .and_then(|b| b.get("trace"))
            .cloned()
            .expect("trace payload");
        assert_eq!(trace.get("trace_id").and_then(Json::as_str), Some("t-http"));
        assert!(
            matches!(trace.get("spans"), Some(Json::Arr(spans)) if !spans.is_empty()),
            "{trace}"
        );

        // `?format=chrome` serves raw Chrome trace-event JSON.
        let chrome_request = HttpRequest {
            method: "GET".to_string(),
            path: "/v1/trace/t-http".to_string(),
            query: Some("format=chrome".to_string()),
            trace: None,
            deadline_ms: None,
            keep_alive: true,
            body: Vec::new(),
        };
        let (chrome, _) = respond(&engine, &chrome_request);
        assert_eq!(chrome.status, 200);
        let export = chrome.body.as_json().expect("chrome body is json");
        let Some(Json::Arr(events)) = export.get("traceEvents") else {
            panic!("missing traceEvents: {export}");
        };
        assert!(!events.is_empty());
        for key in ["ph", "ts", "dur", "name"] {
            assert!(events[0].get(key).is_some(), "missing {key}: {export}");
        }

        // Unknown ids are a 404 with the typed error body.
        let (missing, _) = get(&engine, "GET", "/v1/trace/absent", b"");
        assert_eq!(missing.status, 404);
        assert_eq!(
            missing
                .body
                .as_json()
                .unwrap()
                .get("code")
                .and_then(Json::as_str),
            Some("trace_not_found")
        );

        // Both trace routes are GET-only.
        let (rejected, _) = get(&engine, "POST", "/v1/trace", b"");
        assert_eq!(rejected.status, 405);
        assert_eq!(rejected.allow, Some("GET, HEAD"));
        let (rejected, _) = get(&engine, "DELETE", "/v1/trace/t-http", b"");
        assert_eq!(rejected.status, 405);
        assert_eq!(rejected.allow, Some("GET, HEAD"));
    }

    #[test]
    fn replies_echo_the_request_id_header() {
        let engine = QueryEngine::default();
        let request = HttpRequest {
            method: "POST".to_string(),
            path: "/v1/solve".to_string(),
            query: None,
            trace: Some("req-7".to_string()),
            deadline_ms: None,
            keep_alive: true,
            body: br#"{"kind":"min_cover_size","cotree":"(j a b)"}"#.to_vec(),
        };
        let (response, _) = respond(&engine, &request);
        let body = response.body.as_json().expect("json body");
        assert_eq!(
            body.get("trace_id").and_then(Json::as_str),
            Some("req-7"),
            "top-level echo: {body}"
        );
        assert_eq!(
            body.get("response")
                .and_then(|r| r.get("meta"))
                .and_then(|m| m.get("trace_id"))
                .and_then(Json::as_str),
            Some("req-7"),
            "response metadata echo: {body}"
        );

        // Error bodies carry a trace too — synthesized without the header.
        let (response, _) = get(&engine, "GET", "/nope", b"");
        let trace = response
            .body
            .as_json()
            .and_then(|b| b.get("trace_id"))
            .and_then(Json::as_str)
            .map(str::to_string);
        assert!(
            trace.is_some_and(|t| t.starts_with("pc-")),
            "404 body must carry a synthesized trace"
        );
    }

    #[test]
    fn error_statuses_follow_the_taxonomy() {
        let engine = QueryEngine::default();
        let code = |r: &HttpResponse| {
            r.body
                .as_json()
                .unwrap()
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };

        let (response, _) = get(&engine, "GET", "/nope", b"");
        assert_eq!(
            (response.status, code(&response)),
            (404, "not_found".into())
        );

        let (response, _) = get(&engine, "POST", "/healthz", b"");
        assert_eq!(response.status, 405);
        assert_eq!(response.allow, Some("GET, HEAD"));
        let (response, _) = get(&engine, "GET", "/v1/solve", b"");
        assert_eq!(response.status, 405);
        assert_eq!(response.allow, Some("POST"));

        let (response, _) = get(&engine, "POST", "/v1/solve", b"not json");
        assert_eq!((response.status, code(&response)), (400, "bad_json".into()));
        let (response, _) = get(&engine, "POST", "/v1/solve", br#"{"kind":"launch"}"#);
        assert_eq!(
            (response.status, code(&response)),
            (400, "bad_message".into())
        );
        let (response, _) = get(&engine, "POST", "/v1/batch", br#"{"no_requests":true}"#);
        assert_eq!(
            (response.status, code(&response)),
            (400, "bad_message".into())
        );

        // A per-job failure (P4 is not a cograph) is still HTTP 200 — the
        // error lives inside the response object, exactly like a batch line.
        let (response, _) = get(
            &engine,
            "POST",
            "/v1/solve",
            br#"{"kind":"recognize","edge_list":"0 1\n1 2\n2 3"}"#,
        );
        assert_eq!(response.status, 200);
        assert_eq!(
            response
                .body
                .as_json()
                .unwrap()
                .get("response")
                .and_then(|r| r.get("ok"))
                .and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let response = HttpResponse::ok(Json::obj(vec![("ok", Json::Bool(true))]));
        let mut bytes = Vec::new();
        write_response(&mut bytes, &response, true).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}\n"), "{text}");

        let mut bytes = Vec::new();
        write_response(&mut bytes, &response, false).unwrap();
        assert!(String::from_utf8(bytes)
            .unwrap()
            .contains("Connection: close\r\n"));

        // HEAD: identical headers (Content-Length included), no body.
        let mut bytes = Vec::new();
        write_response_parts(&mut bytes, &response, "{\"ok\":true}\n", true, false).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n"), "headers only: {text}");
    }

    #[test]
    fn deadline_header_is_parsed_and_expired_requests_fail_typed() {
        let request = parse(b"POST /v1/solve HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.deadline_ms, Some(250));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nX-Deadline-Ms: soon\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));

        // An already-expired deadline short-circuits the pipeline: the
        // request dispatches (200) but the job fails `deadline_exceeded`.
        let engine = QueryEngine::default();
        let request = HttpRequest {
            method: "POST".to_string(),
            path: "/v1/solve".to_string(),
            query: None,
            trace: None,
            deadline_ms: Some(0),
            keep_alive: true,
            body: br#"{"kind":"min_cover_size","cotree":"(j a b)"}"#.to_vec(),
        };
        let (response, _) = respond(&engine, &request);
        assert_eq!(response.status, 200);
        let body = response.body.as_json().expect("json body");
        assert_eq!(
            body.get("response")
                .and_then(|r| r.get("error"))
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("deadline_exceeded"),
            "{body}"
        );
        assert_eq!(engine.metrics_report().deadline_exceeded, 1);
    }

    #[test]
    fn overload_sheds_map_to_503_with_a_retry_after_header() {
        let engine = QueryEngine::new(crate::engine::EngineConfig {
            max_inflight: 1,
            ..crate::engine::EngineConfig::default()
        });
        let permit = engine.try_admit().expect("fill the gate");
        let (response, _) = get(
            &engine,
            "POST",
            "/v1/solve",
            br#"{"kind":"min_cover_size","cotree":"(j a b)"}"#,
        );
        assert_eq!(response.status, 503);
        assert_eq!(
            response.retry_after_ms,
            Some(crate::engine::DEFAULT_RETRY_AFTER_MS)
        );
        let body = response.body.as_json().expect("json body");
        assert_eq!(
            body.get("code").and_then(Json::as_str),
            Some("overloaded"),
            "{body}"
        );
        assert_eq!(
            body.get("retry_after_ms").and_then(Json::as_u64),
            Some(crate::engine::DEFAULT_RETRY_AFTER_MS)
        );
        drop(permit);
        let (response, _) = get(
            &engine,
            "POST",
            "/v1/solve",
            br#"{"kind":"min_cover_size","cotree":"(j a b)"}"#,
        );
        assert_eq!(response.status, 200, "released permit admits again");

        // The Retry-After header is serialized in whole seconds, rounded
        // up, and never understates the millisecond hint.
        let mut bytes = Vec::new();
        write_response(&mut bytes, &overloaded_response(100), false).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
    }

    #[test]
    fn overload_detection_reads_both_reply_shapes() {
        let v1 = Json::parse(r#"{"type":"error","code":"overloaded","retry_after_ms":250}"#);
        assert_eq!(overload_retry_hint(&v1.unwrap()), Some(250));
        let v2 = Json::parse(r#"{"ok":false,"error":{"code":"overloaded"}}"#);
        assert_eq!(
            overload_retry_hint(&v2.unwrap()),
            Some(crate::engine::DEFAULT_RETRY_AFTER_MS),
            "missing hint falls back to the default"
        );
        for benign in [
            r#"{"type":"error","code":"bad_json"}"#,
            r#"{"ok":false,"error":{"code":"deadline_exceeded"}}"#,
            r#"{"type":"response","response":{"ok":false}}"#,
        ] {
            assert_eq!(overload_retry_hint(&Json::parse(benign).unwrap()), None);
        }
    }

    /// Satellite: an oversized *declared* Content-Length is refused at
    /// header-parse time — before any body byte is read and before the
    /// body buffer is allocated.
    #[test]
    fn oversized_declared_length_is_rejected_before_the_body() {
        /// A reader that panics if the parser ever tries to read past the
        /// headers — proof no body byte is consumed (and therefore no
        /// body-sized buffer could have been filled).
        struct HeadersOnly {
            headers: io::Cursor<Vec<u8>>,
        }
        impl io::Read for HeadersOnly {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = self.headers.read(buf)?;
                if n == 0 {
                    panic!("parser read past the headers of an oversized request");
                }
                Ok(n)
            }
        }
        let text = format!(
            "POST /v1/solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_FRAME_LEN + 1
        );
        let mut reader = BufReader::new(HeadersOnly {
            headers: io::Cursor::new(text.into_bytes()),
        });
        let mut sink = Vec::new();
        let error = read_request(&mut reader, &mut sink).unwrap_err();
        match error {
            HttpError::BodyTooLarge { len, max } => {
                assert_eq!(len, MAX_FRAME_LEN + 1);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("wrong error: {other:?}"),
        }
        let (status, _, code) = error_status(&error).expect("server-rendered");
        assert_eq!((status, code), (413, "body_too_large"));
    }

    /// An exhausted per-connection request budget answers 503 and closes.
    #[cfg(unix)]
    #[test]
    fn request_budget_exhaustion_sheds_and_closes() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let shutdown = crate::daemon::ShutdownSignal::new();
        let server_shutdown = shutdown.clone();
        let server = std::thread::spawn(move || {
            let engine = QueryEngine::default();
            let (conn, _) = listener.accept().expect("accept");
            // Budget of one: the connect-time healthz probe spends it.
            serve_conn_opts(
                conn,
                &engine,
                &server_shutdown,
                &crate::faults::Faults::default(),
                1,
            );
            engine.metrics_report().rejected_overload
        });
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let request = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b)".to_string()),
        );
        match client.solve(&request) {
            Err(HttpError::Status {
                status,
                code,
                retry_after_ms,
                ..
            }) => {
                assert_eq!(status, 503);
                assert_eq!(code, "overloaded");
                assert!(retry_after_ms.is_some());
            }
            other => panic!("expected a 503 shed, got {other:?}"),
        }
        let rejected = server.join().expect("server thread");
        assert_eq!(rejected, 1, "the shed is booked in telemetry");
    }

    /// End-to-end over a real TCP loopback: client and serve_conn speak to
    /// each other, keep-alive across requests, shutdown propagates.
    #[cfg(unix)]
    #[test]
    fn client_and_server_round_trip_over_tcp() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let shutdown = crate::daemon::ShutdownSignal::new();
        let server_shutdown = shutdown.clone();
        let server = std::thread::spawn(move || {
            let engine = QueryEngine::default();
            let (conn, _) = listener.accept().expect("accept");
            serve_conn(conn, &engine, &server_shutdown);
        });

        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let request = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b c)".to_string()),
        );
        let first = client.solve(&request).expect("solve");
        assert_eq!(
            first
                .get("answer")
                .and_then(|a| a.get("size"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // Same keep-alive connection: the repeat is a cache hit.
        let second = client.solve(&request).expect("warm solve");
        assert_eq!(
            second
                .get("meta")
                .and_then(|m| m.get("cache"))
                .and_then(Json::as_str),
            Some("hit")
        );
        let stats = client.stats().expect("stats");
        assert!(stats.get("hits").and_then(Json::as_u64).unwrap_or(0) >= 1);
        client.shutdown().expect("shutdown");
        // The acknowledgement is flushed *before* the server thread
        // triggers the signal — join first so the assertion can't race it.
        server.join().expect("server thread");
        assert!(shutdown.is_triggered(), "shutdown signal propagated");
    }
}
