//! Hierarchical request spans and the bounded in-memory flight recorder.
//!
//! The telemetry registry ([`crate::telemetry`]) answers *how the service is
//! doing* in aggregate; this module answers *what one specific request did*.
//! Every request may carry a [`SpanCollector`] on its
//! [`crate::telemetry::RequestCtx`]: the engine and its subsystems append
//! child spans (pipeline stages, cache shard lookups, admission and
//! session-lock waits, snapshot checkpoints, per-round pool batches) as
//! offsets from the request's start. Recording is off the hot path — a span
//! is one `Vec` push under a lock that is never contended except by the
//! pool's round batches — and nothing is retained until the request
//! finishes, when [`crate::engine::QueryEngine`] commits the whole trace to
//! the [`FlightRecorder`] in one call.
//!
//! The recorder is a bounded ring (default [`DEFAULT_TRACE_CAPACITY`]
//! traces) with **tail sampling**: traces that errored, were shed as
//! overloaded, or exceeded their deadline are always kept ("protected"),
//! the rolling slowest-N are kept, and the remaining traffic is sampled one
//! in [`TraceConfig::sample_every`]. Eviction prefers the oldest
//! unprotected, not-currently-slowest entry, so a burst of healthy traffic
//! cannot flush the evidence of an incident out of the buffer.
//!
//! Traces export three ways: JSON summaries ([`FlightRecorder::list_json`]),
//! one full trace ([`FinishedTrace::to_json`]), and Chrome trace-event JSON
//! ([`FinishedTrace::to_chrome_json`]) loadable in `chrome://tracing` or
//! Perfetto. All three are served over both transports — see
//! [`crate::http`] (`GET /v1/trace`), [`crate::proto`] (the `trace` verb)
//! and [`crate::v2`] (the `trace_*` op family).

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default capacity of the flight-recorder ring buffer, in traces.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Default size of the rolling slowest-N set that tail sampling always
/// retains alongside protected (errored / overloaded / deadline-exceeded)
/// traces.
pub const DEFAULT_SLOWEST_KEPT: usize = 16;

/// One completed child span of a request: a named interval measured as
/// microsecond offsets from the request's root span start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What the interval covers (`stage:solve`, `pool:round`,
    /// `admission:wait`, ...). Namespaced by a `prefix:` so consumers can
    /// group without parsing free text.
    pub name: String,
    /// Start offset from the root span, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Optional key/value annotations (round index, steal count, shard
    /// index, ...), kept as strings so the span stays allocation-cheap and
    /// schema-free.
    pub detail: Vec<(String, String)>,
}

impl Span {
    /// Builds a span with no annotations.
    pub fn new(name: impl Into<String>, start_us: u64, dur_us: u64) -> Span {
        Span {
            name: name.into(),
            start_us,
            dur_us,
            detail: Vec::new(),
        }
    }

    /// Adds one key/value annotation (builder style).
    pub fn with_detail(mut self, key: impl Into<String>, value: impl Into<String>) -> Span {
        self.detail.push((key.into(), value.into()));
        self
    }

    /// The span as a JSON object (`name` / `start_us` / `dur_us` /
    /// `detail`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::str(self.name.clone())),
            ("start_us".to_string(), Json::num(self.start_us)),
            ("dur_us".to_string(), Json::num(self.dur_us)),
        ];
        if !self.detail.is_empty() {
            fields.push((
                "detail".to_string(),
                Json::Obj(
                    self.detail
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }

    /// The span as one Chrome trace-event object (`ph:"X"` complete event).
    fn chrome_event(&self, tid: u64) -> Json {
        let mut args: Vec<(String, Json)> = self
            .detail
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
            .collect();
        if args.is_empty() {
            // chrome://tracing tolerates a missing `args`, but Perfetto's
            // JSON importer is happier with an (empty) object present.
            args = Vec::new();
        }
        Json::obj(vec![
            ("ph", Json::str("X")),
            ("ts", Json::num(self.start_us)),
            ("dur", Json::num(self.dur_us)),
            ("name", Json::str(self.name.clone())),
            ("pid", Json::num(1u64)),
            ("tid", Json::num(tid)),
            ("args", Json::Obj(args)),
        ])
    }
}

/// Per-request span sink, carried on
/// [`crate::telemetry::RequestCtx::collector`].
///
/// Created at request entry ([`FlightRecorder::begin`]) and shared by
/// `Arc` with every subsystem the request touches; the pool's worker
/// threads never see it — per-round records are drained by the engine
/// thread and appended here after the parallel section, so the hot path
/// stays lock-free.
#[derive(Debug)]
pub struct SpanCollector {
    started: Instant,
    spans: Mutex<Vec<Span>>,
}

impl SpanCollector {
    /// Opens a collector whose clock starts now.
    pub fn start() -> Arc<SpanCollector> {
        Arc::new(SpanCollector {
            started: Instant::now(),
            spans: Mutex::new(Vec::with_capacity(16)),
        })
    }

    /// Microseconds elapsed since the root span opened. Use as the
    /// `start_us` of a child span about to begin.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Records a span that started at `start_us` (a prior
    /// [`SpanCollector::elapsed_us`] reading) and ends now.
    pub fn finish(&self, name: &str, start_us: u64) {
        let end = self.elapsed_us();
        self.push(Span::new(name, start_us, end.saturating_sub(start_us)));
    }

    /// Records a fully-formed span (used for annotated spans and for
    /// batches imported from subsystems like the pool).
    pub fn push(&self, span: Span) {
        if let Ok(mut spans) = self.spans.lock() {
            spans.push(span);
        }
    }

    /// Records many fully-formed spans under one lock acquisition.
    pub fn push_all(&self, batch: Vec<Span>) {
        if let Ok(mut spans) = self.spans.lock() {
            spans.extend(batch);
        }
    }

    /// Drains the collected spans, ordered by start offset.
    pub fn take(&self) -> Vec<Span> {
        let mut spans = self
            .spans
            .lock()
            .map(|mut guard| std::mem::take(&mut *guard))
            .unwrap_or_default();
        spans.sort_by_key(|span| span.start_us);
        spans
    }
}

/// A completed, committed request trace as retained by the
/// [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedTrace {
    /// The request's trace ID (the join key across logs, metrics and
    /// traces).
    pub trace_id: String,
    /// Query kind (or pseudo-kind for non-query verbs), for display.
    pub kind: String,
    /// Outcome string (`ok` / `invalid` / `internal` / ... or
    /// `deadline_exceeded` / `overloaded`).
    pub outcome: String,
    /// Wall-clock total of the root span, microseconds.
    pub total_us: u64,
    /// Commit time as Unix milliseconds, for display ordering.
    pub unix_ms: u64,
    /// Monotonic commit sequence number (recorder-local).
    pub seq: u64,
    /// Whether tail sampling protects this trace from preferential
    /// eviction (errored / overloaded / deadline-exceeded requests).
    pub protected: bool,
    /// The child spans, ordered by start offset.
    pub spans: Vec<Span>,
}

impl FinishedTrace {
    /// One-line summary object for trace listings.
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("trace_id", Json::str(self.trace_id.clone())),
            ("kind", Json::str(self.kind.clone())),
            ("outcome", Json::str(self.outcome.clone())),
            ("total_us", Json::num(self.total_us)),
            ("unix_ms", Json::num(self.unix_ms)),
            ("seq", Json::num(self.seq)),
            ("protected", Json::Bool(self.protected)),
            ("spans", Json::num(self.spans.len() as u64)),
        ])
    }

    /// The full trace as a JSON object, spans included.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_id", Json::str(self.trace_id.clone())),
            ("kind", Json::str(self.kind.clone())),
            ("outcome", Json::str(self.outcome.clone())),
            ("total_us", Json::num(self.total_us)),
            ("unix_ms", Json::num(self.unix_ms)),
            ("seq", Json::num(self.seq)),
            ("protected", Json::Bool(self.protected)),
            (
                "spans",
                Json::Arr(self.spans.iter().map(Span::to_json).collect()),
            ),
        ])
    }

    /// The trace in Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// shape), loadable in `chrome://tracing` or Perfetto. The root span is
    /// the first event; every event carries `ph` / `ts` / `dur` / `name`.
    pub fn to_chrome_json(&self) -> Json {
        let root = Span::new(format!("request:{}", self.kind), 0, self.total_us)
            .with_detail("trace_id", self.trace_id.clone())
            .with_detail("outcome", self.outcome.clone());
        let mut events = vec![root.chrome_event(1)];
        for span in &self.spans {
            // Pool round batches get their own track so barrier structure
            // is visible under the request lane.
            let tid = if span.name.starts_with("pool:") { 2 } else { 1 };
            events.push(span.chrome_event(tid));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }
}

/// Flight-recorder configuration, embedded in
/// [`crate::engine::EngineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off means no collectors are allocated and the
    /// request hot path never takes a span timestamp.
    pub enabled: bool,
    /// Ring capacity in traces.
    pub capacity: usize,
    /// Keep one in this many unprotected, not-slowest traces (1 keeps
    /// every trace the ring has room for; 10 keeps every tenth).
    pub sample_every: u64,
    /// Size of the rolling slowest-N set retained regardless of sampling.
    pub slowest_kept: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            capacity: DEFAULT_TRACE_CAPACITY,
            sample_every: 1,
            slowest_kept: DEFAULT_SLOWEST_KEPT,
        }
    }
}

impl TraceConfig {
    /// A disabled configuration (no collectors, no retention).
    pub fn off() -> TraceConfig {
        TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        }
    }
}

/// The bounded, tail-sampled ring of finished traces.
///
/// All mutation happens in [`FlightRecorder::commit`] — one lock
/// acquisition per finished request, nothing on the hot path.
#[derive(Debug)]
pub struct FlightRecorder {
    config: TraceConfig,
    seq: AtomicU64,
    sample_counter: AtomicU64,
    sampled_out: AtomicU64,
    evicted: AtomicU64,
    inner: Mutex<VecDeque<FinishedTrace>>,
}

impl FlightRecorder {
    /// Builds a recorder for a configuration. A zero capacity is clamped
    /// to 1 so `commit` never divides the ring away.
    pub fn new(mut config: TraceConfig) -> FlightRecorder {
        config.capacity = config.capacity.max(1);
        config.sample_every = config.sample_every.max(1);
        FlightRecorder {
            config,
            seq: AtomicU64::new(0),
            sample_counter: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether tracing is on at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Opens a span collector for a new request, or `None` when tracing is
    /// disabled (the hot path then never touches the trace clock).
    pub fn begin(&self) -> Option<Arc<SpanCollector>> {
        if self.config.enabled {
            Some(SpanCollector::start())
        } else {
            None
        }
    }

    /// Commits one finished trace, applying tail sampling and ring
    /// eviction. `protected` marks errored / overloaded /
    /// deadline-exceeded requests that must always be retained.
    pub fn commit(
        &self,
        trace_id: &str,
        kind: &str,
        outcome: &str,
        total_us: u64,
        protected: bool,
        spans: Vec<Span>,
    ) {
        if !self.config.enabled {
            return;
        }
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let Ok(mut ring) = self.inner.lock() else {
            return;
        };
        if !protected && !self.qualifies_as_slow(&ring, total_us) {
            let tick = self.sample_counter.fetch_add(1, Ordering::Relaxed);
            if tick % self.config.sample_every != 0 {
                self.sampled_out.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let trace = FinishedTrace {
            trace_id: trace_id.to_string(),
            kind: kind.to_string(),
            outcome: outcome.to_string(),
            total_us,
            unix_ms,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            protected,
            spans,
        };
        ring.push_back(trace);
        while ring.len() > self.config.capacity {
            self.evict_one(&mut ring);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether a duration lands in the current slowest-N set (always true
    /// while the set is not yet full).
    fn qualifies_as_slow(&self, ring: &VecDeque<FinishedTrace>, total_us: u64) -> bool {
        let n = self.config.slowest_kept;
        if n == 0 {
            return false;
        }
        if ring.len() < n {
            return true;
        }
        total_us >= self.slowest_threshold(ring)
    }

    /// The N-th largest total among retained traces (the floor a new trace
    /// must meet to displace the slowest-N set).
    fn slowest_threshold(&self, ring: &VecDeque<FinishedTrace>) -> u64 {
        let n = self.config.slowest_kept.min(ring.len());
        if n == 0 {
            return u64::MAX;
        }
        let mut totals: Vec<u64> = ring.iter().map(|t| t.total_us).collect();
        totals.sort_unstable_by(|a, b| b.cmp(a));
        totals[n - 1]
    }

    /// Evicts one trace: the oldest entry that is neither protected nor in
    /// the current slowest-N set, falling back to the oldest overall so
    /// memory stays bounded even when everything is protected.
    fn evict_one(&self, ring: &mut VecDeque<FinishedTrace>) {
        let threshold = self.slowest_threshold(ring);
        let victim = ring
            .iter()
            .position(|t| !t.protected && t.total_us < threshold)
            .unwrap_or(0);
        ring.remove(victim);
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().map(|ring| ring.len()).unwrap_or(0)
    }

    /// Whether the recorder holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One retained trace by ID (the most recent commit wins if a client
    /// reused an ID).
    pub fn get(&self, trace_id: &str) -> Option<FinishedTrace> {
        let ring = self.inner.lock().ok()?;
        ring.iter().rev().find(|t| t.trace_id == trace_id).cloned()
    }

    /// Summaries of every retained trace, newest first, wrapped with
    /// recorder counters:
    /// `{"traces": [...], "retained": N, "capacity": C, "sampled_out": S,
    /// "evicted": E, "enabled": bool}`.
    pub fn list_json(&self) -> Json {
        let summaries = self
            .inner
            .lock()
            .map(|ring| {
                ring.iter()
                    .rev()
                    .map(FinishedTrace::summary_json)
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        Json::obj(vec![
            ("retained", Json::num(summaries.len() as u64)),
            ("capacity", Json::num(self.config.capacity as u64)),
            (
                "sampled_out",
                Json::num(self.sampled_out.load(Ordering::Relaxed)),
            ),
            ("evicted", Json::num(self.evicted.load(Ordering::Relaxed))),
            ("enabled", Json::Bool(self.config.enabled)),
            ("traces", Json::Arr(summaries)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_recorder(capacity: usize, slowest: usize) -> FlightRecorder {
        FlightRecorder::new(TraceConfig {
            enabled: true,
            capacity,
            sample_every: 1,
            slowest_kept: slowest,
        })
    }

    #[test]
    fn collector_records_ordered_spans() {
        let collector = SpanCollector::start();
        let t0 = collector.elapsed_us();
        collector.finish("stage:ingest", t0);
        collector.push(Span::new("stage:solve", 50, 10).with_detail("n", "8"));
        collector.push(Span::new("stage:recognize", 5, 3));
        let spans = collector.take();
        assert_eq!(spans.len(), 3);
        assert!(spans.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        assert_eq!(spans[2].detail, vec![("n".to_string(), "8".to_string())]);
        // A second take is empty: commit consumes the collector's spans.
        assert!(collector.take().is_empty());
    }

    #[test]
    fn ring_evicts_oldest_unprotected_first() {
        let recorder = small_recorder(3, 0);
        recorder.commit("t-old", "recognize", "ok", 10, false, vec![]);
        recorder.commit("t-err", "recognize", "internal", 10, true, vec![]);
        recorder.commit("t-new1", "recognize", "ok", 10, false, vec![]);
        recorder.commit("t-new2", "recognize", "ok", 10, false, vec![]);
        // Capacity 3: t-old (oldest unprotected) is evicted, the protected
        // error trace survives.
        assert_eq!(recorder.len(), 3);
        assert!(recorder.get("t-old").is_none());
        assert!(recorder.get("t-err").is_some());
        assert!(recorder.get("t-new1").is_some());
        assert!(recorder.get("t-new2").is_some());
    }

    #[test]
    fn all_error_traces_survive_a_healthy_flood() {
        let recorder = small_recorder(8, 2);
        for i in 0..4 {
            recorder.commit(&format!("err-{i}"), "q", "internal", 5, true, vec![]);
        }
        for i in 0..100 {
            recorder.commit(&format!("ok-{i}"), "q", "ok", 1, false, vec![]);
        }
        for i in 0..4 {
            assert!(
                recorder.get(&format!("err-{i}")).is_some(),
                "error trace err-{i} must never be evicted by healthy traffic"
            );
        }
        assert_eq!(recorder.len(), 8);
    }

    #[test]
    fn slowest_n_set_is_retained() {
        let recorder = small_recorder(6, 3);
        // Three slow outliers early, then a flood of fast traces.
        recorder.commit("slow-1", "q", "ok", 900, false, vec![]);
        recorder.commit("slow-2", "q", "ok", 800, false, vec![]);
        recorder.commit("slow-3", "q", "ok", 700, false, vec![]);
        for i in 0..50 {
            recorder.commit(&format!("fast-{i}"), "q", "ok", 1 + i, false, vec![]);
        }
        for id in ["slow-1", "slow-2", "slow-3"] {
            assert!(
                recorder.get(id).is_some(),
                "slowest-N member {id} must survive the flood"
            );
        }
    }

    #[test]
    fn sampling_drops_the_configured_fraction_but_never_errors() {
        let recorder = FlightRecorder::new(TraceConfig {
            enabled: true,
            capacity: 1000,
            sample_every: 10,
            slowest_kept: 0,
        });
        for i in 0..100 {
            recorder.commit(&format!("ok-{i}"), "q", "ok", 1, false, vec![]);
        }
        for i in 0..7 {
            recorder.commit(&format!("err-{i}"), "q", "internal", 1, true, vec![]);
        }
        // 1-in-10 of the healthy hundred, plus every error.
        assert_eq!(recorder.len(), 10 + 7);
        for i in 0..7 {
            assert!(recorder.get(&format!("err-{i}")).is_some());
        }
    }

    #[test]
    fn disabled_recorder_retains_nothing_and_hands_out_no_collectors() {
        let recorder = FlightRecorder::new(TraceConfig::off());
        assert!(recorder.begin().is_none());
        recorder.commit("t", "q", "internal", 1, true, vec![]);
        assert!(recorder.is_empty());
    }

    #[test]
    fn chrome_export_has_required_keys_and_a_root_event() {
        let trace = FinishedTrace {
            trace_id: "pc-abc".to_string(),
            kind: "min_cover_size".to_string(),
            outcome: "ok".to_string(),
            total_us: 120,
            unix_ms: 0,
            seq: 0,
            protected: false,
            spans: vec![
                Span::new("stage:solve", 10, 100),
                Span::new("pool:round", 20, 30).with_detail("round", "0"),
            ],
        };
        let chrome = trace.to_chrome_json();
        let Some(Json::Arr(events)) = chrome.get("traceEvents") else {
            panic!("missing traceEvents: {chrome}");
        };
        assert_eq!(events.len(), 3, "root + two child spans");
        for event in events {
            for key in ["ph", "ts", "dur", "name"] {
                assert!(event.get(key).is_some(), "event missing {key}: {event}");
            }
        }
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_str),
            Some("pc-abc")
        );
        // Pool spans ride a separate track.
        assert_eq!(events[2].get("tid").and_then(Json::as_u64), Some(2));
        // The export round-trips through the parser (valid JSON).
        assert!(Json::parse(&chrome.to_string()).is_ok());
    }

    #[test]
    fn list_is_newest_first_and_carries_counters() {
        let recorder = small_recorder(4, 0);
        recorder.commit("a", "q", "ok", 1, false, vec![]);
        recorder.commit("b", "q", "ok", 2, false, vec![]);
        let list = recorder.list_json();
        let Some(Json::Arr(traces)) = list.get("traces") else {
            panic!("missing traces: {list}");
        };
        assert_eq!(
            traces[0].get("trace_id").and_then(Json::as_str),
            Some("b"),
            "newest first"
        );
        assert_eq!(list.get("retained").and_then(Json::as_u64), Some(2));
        assert_eq!(list.get("capacity").and_then(Json::as_u64), Some(4));
    }
}
