//! Leveled, rate-limited, JSON-lines structured logging.
//!
//! Replaces the daemon's ad-hoc `eprintln!` diagnostics with one emitter
//! whose every line is a single JSON object on stderr, so log collectors
//! need no parsing heuristics and every line carries the request's
//! `trace_id` — the join key shared with `/v1/metrics` aggregates and the
//! [`crate::trace`] flight recorder.
//!
//! ```text
//! {"ts_unix_ms":1754550000000,"level":"warn","event":"slow_request","trace_id":"pc-1f...","total_us":52000}
//! ```
//!
//! The level is a process-global atomic, set from `serve --log-level` or
//! the `PC_LOG` environment variable (`error` / `warn` / `info` / `debug` /
//! `off`); the default is `info`. Noisy repeat events go through
//! [`rate_limited`], which suppresses re-emission of the same event name
//! within a 100 ms window (the same budget the telemetry slow-log gate
//! uses) so a failure loop cannot flood stderr.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Severity of a log line, in increasing verbosity order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what it was asked to (data loss risk,
    /// persistent failure).
    Error = 1,
    /// Something is degraded but the daemon compensates (slow requests,
    /// sheds, checkpoint retries).
    Warn = 2,
    /// Lifecycle milestones (startup, shutdown, snapshot saves).
    Info = 3,
    /// Per-request chatter for debugging sessions.
    Debug = 4,
}

impl Level {
    /// Stable lowercase name used on the wire and in CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (`off` yields `None`, meaning log nothing).
    pub fn parse(name: &str) -> Result<Option<Level>, String> {
        match name.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(None),
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            other => Err(format!(
                "unknown log level '{other}' (use off|error|warn|info|debug)"
            )),
        }
    }
}

/// The process-global threshold: lines above this verbosity are dropped.
/// 0 encodes `off`.
static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Per-event-slot last-emission clock for [`rate_limited`], in
/// milliseconds since process start (slot 0 of the array is the epoch
/// holder's `OnceLock`).
static RATE_SLOTS: [AtomicU64; 16] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; 16]
};

/// Suppression window for [`rate_limited`] — matches the telemetry
/// slow-log gate's budget.
pub const RATE_LIMIT_MS: u64 = 100;

fn process_clock_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    // +1 so "never emitted" (slot value 0) is distinguishable from an
    // emission in the first millisecond.
    epoch.elapsed().as_millis() as u64 + 1
}

/// Sets the global level (`None` silences everything).
pub fn set_level(level: Option<Level>) {
    LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current global level (`None` when logging is off).
pub fn level() -> Option<Level> {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        _ => None,
    }
}

/// Applies the `PC_LOG` environment variable, if set and valid. Returns
/// the error string for an invalid value (the caller decides whether that
/// is fatal; the daemon treats it as a startup error).
pub fn init_from_env() -> Result<(), String> {
    match std::env::var("PC_LOG") {
        Ok(value) => Level::parse(&value).map(set_level),
        Err(_) => Ok(()),
    }
}

/// Whether a line at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    let threshold = LEVEL.load(Ordering::Relaxed);
    threshold != 0 && (level as u8) <= threshold
}

/// Renders one log line (without the trailing newline). Pure — exists so
/// tests can assert on the exact bytes that would hit stderr.
pub fn render_line(
    level: Level,
    event: &str,
    trace_id: Option<&str>,
    fields: &[(&str, Json)],
) -> String {
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut obj = vec![
        ("ts_unix_ms".to_string(), Json::num(ts)),
        ("level".to_string(), Json::str(level.as_str())),
        ("event".to_string(), Json::str(event)),
    ];
    if let Some(trace) = trace_id {
        obj.push(("trace_id".to_string(), Json::str(trace)));
    }
    for (key, value) in fields {
        obj.push((key.to_string(), value.clone()));
    }
    Json::Obj(obj).to_string()
}

/// Emits one structured line to stderr if the level allows it.
pub fn log(level: Level, event: &str, trace_id: Option<&str>, fields: &[(&str, Json)]) {
    if !enabled(level) {
        return;
    }
    eprintln!("{}", render_line(level, event, trace_id, fields));
}

/// [`log`], but suppressing repeats of the same `event` within
/// [`RATE_LIMIT_MS`]. Returns whether the line was emitted, so callers can
/// keep a suppressed-count if they care.
pub fn rate_limited(
    level: Level,
    event: &str,
    trace_id: Option<&str>,
    fields: &[(&str, Json)],
) -> bool {
    if !enabled(level) {
        return false;
    }
    let slot = &RATE_SLOTS[hash_event(event) % RATE_SLOTS.len()];
    let now = process_clock_ms();
    let last = slot.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < RATE_LIMIT_MS {
        return false;
    }
    if slot
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        // Another thread just emitted this event; treat that as our
        // emission within the window.
        return false;
    }
    eprintln!("{}", render_line(level, event, trace_id, fields));
    true
}

fn hash_event(event: &str) -> usize {
    // FNV-1a, tiny and deterministic; collisions just share a rate slot.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in event.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("warn").unwrap(), Some(Level::Warn));
        assert_eq!(Level::parse("WARNING").unwrap(), Some(Level::Warn));
        assert_eq!(Level::parse("off").unwrap(), None);
        assert!(Level::parse("verbose").is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn lines_are_single_json_objects_carrying_the_trace_id() {
        let line = render_line(
            Level::Warn,
            "slow_request",
            Some("pc-0123456789abcdef"),
            &[
                ("total_us", Json::num(52_000u64)),
                ("kind", Json::str("recognize")),
            ],
        );
        let parsed = Json::parse(&line).expect("log line must be valid JSON");
        assert_eq!(parsed.get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(
            parsed.get("event").and_then(Json::as_str),
            Some("slow_request")
        );
        assert_eq!(
            parsed.get("trace_id").and_then(Json::as_str),
            Some("pc-0123456789abcdef")
        );
        assert_eq!(parsed.get("total_us").and_then(Json::as_u64), Some(52_000));
        assert!(parsed.get("ts_unix_ms").and_then(Json::as_u64).is_some());
        assert!(!line.contains('\n'), "one line per record");
    }

    #[test]
    fn gating_respects_the_global_level() {
        let prior = level();
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(None);
        assert!(!enabled(Level::Error));
        set_level(prior);
    }

    #[test]
    fn repeats_inside_the_window_are_suppressed() {
        let prior = level();
        set_level(Some(Level::Debug));
        // A unique event name so parallel tests sharing the slot array
        // are unlikely to collide.
        let event = "rate_limit_unit_test_event_xyzzy";
        assert!(rate_limited(Level::Debug, event, None, &[]));
        assert!(!rate_limited(Level::Debug, event, None, &[]));
        set_level(prior);
    }
}
