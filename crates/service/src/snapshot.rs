//! Persistent warm-cache snapshots: the cotree cache on disk.
//!
//! Every restart of the daemon used to start cold, re-paying recognition
//! and the paper's cotree computations for every graph the previous process
//! had already served. The cache's resident state is small and
//! reconstructible — a canonical cotree (term notation), its memoised
//! scalar answers and an optional graph-fingerprint link per entry — so
//! this module persists exactly that and reloads it on `serve`, turning
//! restarts, deploys and crashes into warm starts.
//!
//! ## Format (`pcsnap1`)
//!
//! A snapshot is a text file of newline-terminated records:
//!
//! ```text
//! pcsnap1 <entry-count>
//! {"term":"(j 0 1 2)","key":"89abcdef01234567","min_cover":1,"fps":["0123456789abcdef"]}
//! ...one JSON object per entry...
//! pcsum <16-hex FNV-1a of every preceding byte>
//! ```
//!
//! * the header carries the format magic + version and the entry count;
//! * each entry stores the cotree in *labelled* term notation
//!   ([`cograph::Cotree::to_term`] — exact leaf labels, exact child order),
//!   its canonical key, whichever scalars were memoised (`min_cover`,
//!   `ham_path`, `ham_cycle`) and the fingerprints of ingested graphs
//!   linked to it;
//! * the footer closes the file with a checksum over everything above it,
//!   so truncation and bit rot are both detectable.
//!
//! Entries appear shard by shard in least → most recently used order:
//! re-importing in file order reproduces each shard's eviction order.
//! Linked graphs are **not** stored — a linked entry's cotree materialises
//! the exact ingested graph (`Cotree::to_graph`), which the loader
//! re-derives and re-fingerprints.
//!
//! ## Integrity: never serve wrong answers from disk
//!
//! Loading re-parses every term, re-validates the cotree's structural
//! invariants, **recomputes the canonical key** and compares it against the
//! stored one, re-derives and cross-checks every graph-fingerprint link,
//! and recomputes every stored memoised scalar with a fresh solver run,
//! comparing each against what the file claims. Any mismatch,
//! truncation or checksum failure rejects the whole file:
//! [`load_or_quarantine`] renames it to `<path>.corrupt` and reports a cold
//! start instead of serving answers it cannot vouch for.
//!
//! ## Atomicity
//!
//! [`save`] writes to a temporary file in the snapshot's directory, syncs
//! it, then renames it over the target — a crash mid-checkpoint leaves the
//! previous snapshot intact, never a half-written one.

use crate::cache::{canonical_key, graph_fingerprint, CotreeCache, MemoisedScalars, SolveEntry};
use crate::ingest::parse_cotree_term_labelled;
use crate::json::Json;
use cograph::Cotree;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot format version spoken by this build (the `1` in `pcsnap1`).
pub const SNAPSHOT_VERSION: u64 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the per-file checksum of the `pcsum` footer.
///
/// Public so integrity tests can re-seal a deliberately tampered file and
/// prove that the *semantic* checks (canonical key, scalar cross-check)
/// catch what the checksum alone would not.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Everything that can go wrong saving, loading or inspecting a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The header is not `pcsnap<version> <count>` for a version this
    /// build speaks.
    BadHeader(String),
    /// The file ends before the announced entries and checksum footer.
    Truncated(String),
    /// The stored checksum does not match the file's bytes.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// An entry failed parsing or integrity verification.
    Entry {
        /// 1-based line of the offending entry.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A save was requested but the engine has no snapshot path configured.
    NotConfigured,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadHeader(msg) => write!(f, "bad snapshot header: {msg}"),
            SnapshotError::Truncated(msg) => write!(f, "truncated snapshot: {msg}"),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: footer says {stored:016x}, bytes hash to {computed:016x}"
            ),
            SnapshotError::Entry { line, message } => write!(f, "line {line}: {message}"),
            SnapshotError::NotConfigured => {
                write!(
                    f,
                    "no snapshot path configured (serve with --snapshot PATH)"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// What [`save`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Entries written.
    pub entries: usize,
    /// Graph-fingerprint links written.
    pub links: usize,
    /// File size in bytes.
    pub bytes: u64,
    /// Wall time of the whole save (serialise + write + fsync + rename)
    /// in microseconds, feeding the checkpoint-duration histogram.
    pub elapsed_micros: u64,
}

/// What [`load`] imported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries imported into the cache.
    pub entries: usize,
    /// Graph-fingerprint links re-established.
    pub links: usize,
    /// Entries whose scalars were cross-checked against a fresh solve.
    pub scalar_checked: usize,
}

/// What [`inspect`] found (a full parse + verification, no cache import).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InspectReport {
    /// Format version of the file.
    pub version: u64,
    /// Entries in the file.
    pub entries: usize,
    /// Graph-fingerprint links in the file.
    pub links: usize,
    /// Sum of vertex counts over all entries.
    pub total_vertices: usize,
    /// Entries carrying at least one memoised scalar.
    pub memoised: usize,
    /// Entries whose scalars were cross-checked against a fresh solve.
    pub scalar_checked: usize,
    /// File size in bytes.
    pub bytes: u64,
}

/// Outcome of [`load_or_quarantine`]: how the cache starts.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No snapshot file exists — a clean cold start.
    ColdStart,
    /// The snapshot verified and was imported — a warm start.
    Warm(LoadReport),
    /// The file could not be *read* (permissions, transient I/O). The
    /// cache starts cold but the file is left exactly where it is: a
    /// wrong-user start or a flaky mount must not destroy warm state that
    /// a corrected restart could still load.
    Unreadable(SnapshotError),
    /// The snapshot failed verification; it was moved aside and the cache
    /// starts cold rather than serving unverifiable answers.
    Quarantined {
        /// Why the file was rejected.
        error: SnapshotError,
        /// Where the corrupt file was moved (`<path>.corrupt`), when the
        /// rename itself succeeded.
        moved_to: Option<PathBuf>,
    },
}

/// One parsed-and-verified entry, ready to import or summarise.
struct ParsedEntry {
    cotree: Cotree,
    scalars: MemoisedScalars,
    /// The verified graph link: the fingerprint and the graph it names
    /// (re-derived from the cotree), when the entry had one.
    link: Option<(u64, pcgraph::Graph)>,
    /// How many fingerprint records the entry carried (all equal once
    /// verified, so one graph serves them all).
    fingerprints: usize,
    /// The entry was evicted from the canonical map before the save and
    /// survives only through its graph link: import must re-establish the
    /// link without promoting the entry back into the canonical LRU.
    link_only: bool,
}

struct ParsedSnapshot {
    version: u64,
    entries: Vec<ParsedEntry>,
    scalar_checked: usize,
}

/// Serialises the cache and writes it to `path` atomically (tmp + rename).
pub fn save(cache: &CotreeCache, path: &Path) -> Result<SaveReport, SnapshotError> {
    let save_started = std::time::Instant::now();
    let exported = cache.export();
    let mut records: Vec<String> = Vec::with_capacity(exported.len());
    let mut links = 0usize;
    for exported in &exported {
        let entry = &exported.entry;
        let mut fields = vec![
            ("term", Json::str(entry.cotree.to_term())),
            ("key", Json::str(format!("{:016x}", entry.key))),
        ];
        let scalars = entry.memoised_scalars();
        if let Some(size) = scalars.min_cover_size {
            fields.push(("min_cover", Json::num(size as u64)));
        }
        if let Some(path) = scalars.ham_path {
            fields.push(("ham_path", Json::Bool(path)));
        }
        if let Some(cycle) = scalars.ham_cycle {
            fields.push(("ham_cycle", Json::Bool(cycle)));
        }
        // Only links the loader can re-derive and verify are persisted: the
        // fingerprint must be the one of the graph the cotree materialises.
        // Links fed through the raw cache API with foreign fingerprints
        // (impossible via the engine) are dropped, keeping the invariant
        // that a file written by `save` always verifies on load.
        let reloadable: Vec<u64> = match linkable_graph(&entry.cotree) {
            Some(graph) => {
                let real = graph_fingerprint(&graph);
                exported
                    .fingerprints
                    .iter()
                    .copied()
                    .filter(|&fp| fp == real)
                    .collect()
            }
            None => Vec::new(),
        };
        if !exported.canonical && reloadable.is_empty() {
            // Reachable neither by key nor by a reloadable link: a restart
            // could never serve it, so persisting it is pure noise.
            continue;
        }
        if !reloadable.is_empty() {
            links += reloadable.len();
            fields.push((
                "fps",
                Json::Arr(
                    reloadable
                        .iter()
                        .map(|fp| Json::str(format!("{fp:016x}")))
                        .collect(),
                ),
            ));
        }
        if !exported.canonical {
            // The entry had already been evicted from the canonical map and
            // survives only through its graph link; the loader must
            // re-establish the link without re-promoting the entry into the
            // canonical LRU (which would evict genuinely warm entries).
            fields.push(("link_only", Json::Bool(true)));
        }
        records.push(Json::obj(fields).to_string());
    }
    let mut body = format!("pcsnap{SNAPSHOT_VERSION} {}\n", records.len());
    let entries = records.len();
    for record in records {
        body.push_str(&record);
        body.push('\n');
    }
    let sum = checksum(body.as_bytes());
    body.push_str(&format!("pcsum {sum:016x}\n"));
    let bytes = write_atomic(path, body.as_bytes())?;
    Ok(SaveReport {
        entries,
        links,
        bytes,
        elapsed_micros: save_started.elapsed().as_micros() as u64,
    })
}

/// The graph a cached entry's link points at, when it is re-derivable: the
/// cotree's leaf labels must be exactly `0..n` (always true for entries the
/// engine linked, since recognition labels leaves with the graph's own
/// vertex ids).
fn linkable_graph(cotree: &Cotree) -> Option<pcgraph::Graph> {
    let n = cotree.num_vertices();
    if cotree.vertices().iter().any(|&v| v as usize >= n) {
        return None;
    }
    Some(cotree.to_graph())
}

/// Writes `bytes` to a same-directory temp file, syncs, renames over
/// `path`. Returns the byte count written.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<u64, SnapshotError> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            SnapshotError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("snapshot path {} has no file name", path.display()),
            ))
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if let Err(error) = result {
        let _ = fs::remove_file(&tmp);
        return Err(SnapshotError::Io(error));
    }
    Ok(bytes.len() as u64)
}

/// Parses and fully verifies a snapshot's bytes (checksum, header, every
/// entry's canonical key, graph links and memoised scalars).
fn parse_and_verify(bytes: &[u8]) -> Result<ParsedSnapshot, SnapshotError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| SnapshotError::BadHeader("snapshot is not UTF-8".to_string()))?;
    // Footer first: its absence is the signature of a truncated file, and
    // the checksum must vouch for the bytes before anything is parsed.
    let Some(stripped) = text.strip_suffix('\n') else {
        return Err(SnapshotError::Truncated(
            "file does not end with a newline".to_string(),
        ));
    };
    // `body` is a sub-slice of the input (header + entry lines, trailing
    // newline included) — no copy of a potentially large file just to
    // checksum it.
    let (body, footer) = match stripped.rsplit_once('\n') {
        Some((head, footer)) => (&text[..head.len() + 1], footer),
        // A one-line file can only be a bare header with zero entries and
        // no footer: still truncated.
        None => (&text[..0], stripped),
    };
    let Some(stored) = footer.strip_prefix("pcsum ") else {
        return Err(SnapshotError::Truncated(format!(
            "missing 'pcsum' footer (file ends with {footer:?})"
        )));
    };
    let stored = u64::from_str_radix(stored.trim(), 16)
        .map_err(|_| SnapshotError::Truncated(format!("unparseable checksum {stored:?}")))?;
    let computed = checksum(body.as_bytes());
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    let mut lines = body.lines();
    let header = lines
        .next()
        .ok_or_else(|| SnapshotError::Truncated("empty file".to_string()))?;
    let rest = header
        .strip_prefix("pcsnap")
        .ok_or_else(|| SnapshotError::BadHeader(format!("not a snapshot file: {header:?}")))?;
    let (version, count) = rest
        .split_once(' ')
        .ok_or_else(|| SnapshotError::BadHeader(format!("malformed header {header:?}")))?;
    let version: u64 = version
        .parse()
        .map_err(|_| SnapshotError::BadHeader(format!("malformed header {header:?}")))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadHeader(format!(
            "snapshot version {version} (this build speaks pcsnap{SNAPSHOT_VERSION})"
        )));
    }
    let count: usize = count
        .parse()
        .map_err(|_| SnapshotError::BadHeader(format!("bad entry count in header {header:?}")))?;

    let mut entries = Vec::new();
    for (idx, line) in lines.enumerate() {
        // Header is line 1; the first entry is line 2.
        entries.push(parse_entry(line, idx + 2)?);
    }
    if entries.len() != count {
        return Err(SnapshotError::Truncated(format!(
            "header announces {count} entries, found {}",
            entries.len()
        )));
    }

    // Scalar cross-check: recompute every stored memoised answer with a
    // fresh solver run. The solvers are linear on the cotree — the same
    // order as the parsing and key recomputation already paid above — so
    // checking everything is cheap, and it is what makes the "never a
    // wrong answer served from disk" guarantee unconditional rather than
    // probabilistic.
    let mut scalar_checked = 0usize;
    for (idx, parsed) in entries.iter().enumerate() {
        let stored = parsed.scalars;
        if stored == MemoisedScalars::default() {
            continue;
        }
        scalar_checked += 1;
        let fresh = SolveEntry::new(parsed.cotree.clone());
        let line = idx + 2;
        if let Some(size) = stored.min_cover_size {
            if size != fresh.min_cover_size() {
                return Err(SnapshotError::Entry {
                    line,
                    message: format!(
                        "stored min_cover {size} != recomputed {}",
                        fresh.min_cover_size()
                    ),
                });
            }
        }
        if let Some(path) = stored.ham_path {
            if path != fresh.has_hamiltonian_path() {
                return Err(SnapshotError::Entry {
                    line,
                    message: format!(
                        "stored ham_path {path} != recomputed {}",
                        fresh.has_hamiltonian_path()
                    ),
                });
            }
        }
        if let Some(cycle) = stored.ham_cycle {
            if cycle != fresh.has_hamiltonian_cycle() {
                return Err(SnapshotError::Entry {
                    line,
                    message: format!(
                        "stored ham_cycle {cycle} != recomputed {}",
                        fresh.has_hamiltonian_cycle()
                    ),
                });
            }
        }
    }
    Ok(ParsedSnapshot {
        version,
        entries,
        scalar_checked,
    })
}

/// Parses one entry line and verifies everything verifiable without a
/// solver run: term validity, canonical-key recomputation, link integrity.
fn parse_entry(line: &str, line_no: usize) -> Result<ParsedEntry, SnapshotError> {
    let entry_error = |message: String| SnapshotError::Entry {
        line: line_no,
        message,
    };
    let value = Json::parse(line).map_err(|e| entry_error(format!("entry is not JSON: {e}")))?;
    let term = value
        .get("term")
        .and_then(Json::as_str)
        .ok_or_else(|| entry_error("entry missing string field 'term'".to_string()))?;
    let cotree = parse_cotree_term_labelled(term)
        .map_err(|e| entry_error(format!("bad cotree term: {e}")))?;
    cotree
        .validate()
        .map_err(|e| entry_error(format!("invalid cotree: {e}")))?;
    let stored_key = value
        .get("key")
        .and_then(Json::as_str)
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| entry_error("entry missing 16-hex field 'key'".to_string()))?;
    let real_key = canonical_key(&cotree);
    if stored_key != real_key {
        return Err(entry_error(format!(
            "stored canonical key {stored_key:016x} != recomputed {real_key:016x}"
        )));
    }
    let scalars = MemoisedScalars {
        min_cover_size: match value.get("min_cover") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                entry_error("field 'min_cover' must be a non-negative integer".to_string())
            })? as usize),
        },
        ham_path: scalar_bool(&value, "ham_path", line_no)?,
        ham_cycle: scalar_bool(&value, "ham_cycle", line_no)?,
    };
    // A cover needs at least one path: zero can never have been memoised.
    if scalars.min_cover_size == Some(0) {
        return Err(entry_error("stored min_cover is zero".to_string()));
    }
    let fingerprints = match value.get("fps") {
        None => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                    .ok_or_else(|| {
                        entry_error("field 'fps' must hold 16-hex fingerprints".to_string())
                    })
            })
            .collect::<Result<Vec<u64>, _>>()?,
        Some(_) => return Err(entry_error("field 'fps' must be an array".to_string())),
    };
    let link_only = scalar_bool(&value, "link_only", line_no)?.unwrap_or(false);
    if link_only && fingerprints.is_empty() {
        return Err(entry_error(
            "link-only entry without any graph links".to_string(),
        ));
    }
    let link = if fingerprints.is_empty() {
        None
    } else {
        let graph = linkable_graph(&cotree).ok_or_else(|| {
            entry_error("entry has graph links but non-dense vertex labels".to_string())
        })?;
        let real_fp = graph_fingerprint(&graph);
        for &fp in &fingerprints {
            if fp != real_fp {
                return Err(entry_error(format!(
                    "stored graph fingerprint {fp:016x} != recomputed {real_fp:016x}"
                )));
            }
        }
        Some((real_fp, graph))
    };
    Ok(ParsedEntry {
        cotree,
        scalars,
        link,
        fingerprints: fingerprints.len(),
        link_only,
    })
}

fn scalar_bool(
    value: &Json,
    field: &'static str,
    line_no: usize,
) -> Result<Option<bool>, SnapshotError> {
    match value.get(field) {
        None => Ok(None),
        Some(v) => v.as_bool().map(Some).ok_or(SnapshotError::Entry {
            line: line_no,
            message: format!("field '{field}' must be a boolean"),
        }),
    }
}

/// Loads and verifies a snapshot, importing every entry into the cache.
///
/// All-or-nothing: verification runs over the whole file *before* anything
/// touches the cache, so a defect found halfway cannot leave a partial
/// import behind.
pub fn load(cache: &CotreeCache, path: &Path) -> Result<LoadReport, SnapshotError> {
    let parsed = parse_and_verify(&fs::read(path)?)?;
    let entries = parsed.entries.len();
    let mut links = 0usize;
    for entry in parsed.entries {
        let solve = Arc::new(SolveEntry::from_parts(entry.cotree, entry.scalars));
        match entry.link {
            None => {
                cache.insert_entry(None, solve);
            }
            Some((fp, graph)) => {
                links += entry.fingerprints;
                if entry.link_only {
                    // Evicted-but-linked before the save: restore only the
                    // link, exactly the reachability it had.
                    cache.link_graph(fp, Arc::new(graph), solve);
                } else {
                    cache.insert_entry(Some((fp, Arc::new(graph))), solve);
                }
            }
        }
    }
    Ok(LoadReport {
        entries,
        links,
        scalar_checked: parsed.scalar_checked,
    })
}

/// Parses and verifies a snapshot without touching any cache — the
/// `pathcover-cli snapshot inspect` back-end.
pub fn inspect(path: &Path) -> Result<InspectReport, SnapshotError> {
    let bytes = fs::read(path)?;
    let parsed = parse_and_verify(&bytes)?;
    Ok(InspectReport {
        version: parsed.version,
        entries: parsed.entries.len(),
        links: parsed.entries.iter().map(|e| e.fingerprints).sum(),
        total_vertices: parsed.entries.iter().map(|e| e.cotree.num_vertices()).sum(),
        memoised: parsed
            .entries
            .iter()
            .filter(|e| e.scalars != MemoisedScalars::default())
            .count(),
        scalar_checked: parsed.scalar_checked,
        bytes: bytes.len() as u64,
    })
}

/// Where a rejected snapshot is moved: `<path>.corrupt`.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut quarantined = path.as_os_str().to_owned();
    quarantined.push(".corrupt");
    PathBuf::from(quarantined)
}

/// A quarantine target that does not clobber earlier evidence: the base
/// `<path>.corrupt` when free, else `<path>.corrupt.1`, `.2`, … — a crash
/// loop must not destroy the very file kept for post-mortem. Gives up and
/// reuses the base only after an absurd number of quarantined files.
fn fresh_quarantine_path(path: &Path) -> PathBuf {
    let base = quarantine_path(path);
    if !base.exists() {
        return base;
    }
    for n in 1..1000u32 {
        let candidate = PathBuf::from(format!("{}.{n}", base.display()));
        if !candidate.exists() {
            return candidate;
        }
    }
    base
}

/// Loads a snapshot if one exists, quarantining it on any *verification*
/// failure. This is the serve-time entry point: it never fails — the worst
/// outcome is a cold start, with the bad file preserved for post-mortem.
/// Read errors (permissions, transient I/O) leave the file untouched:
/// quarantine is reserved for files proven defective, not files this
/// process happened to be unable to read. Stale temp files left behind by
/// saves the process never finished (crash/SIGKILL between write and
/// rename) are swept here.
pub fn load_or_quarantine(cache: &CotreeCache, path: &Path) -> LoadOutcome {
    sweep_stale_tmp(path);
    match load(cache, path) {
        Ok(report) => LoadOutcome::Warm(report),
        Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => LoadOutcome::ColdStart,
        Err(error @ SnapshotError::Io(_)) => LoadOutcome::Unreadable(error),
        Err(error) => {
            let target = fresh_quarantine_path(path);
            let moved_to = match fs::rename(path, &target) {
                Ok(()) => Some(target),
                Err(_) => None,
            };
            LoadOutcome::Quarantined { error, moved_to }
        }
    }
}

/// Removes temp files from saves that never reached their rename — each
/// crash mid-checkpoint would otherwise leave a full-size orphan behind.
/// Only this snapshot's own pattern (`.<name>.tmp.<pid>.<seq>`) is
/// touched; running two daemons against one snapshot path is unsupported
/// (their saves would already race), so a live writer's temp file is not a
/// concern here.
fn sweep_stale_tmp(path: &Path) {
    let (Some(parent), Some(file_name)) = (path.parent(), path.file_name()) else {
        return;
    };
    let parent = if parent.as_os_str().is_empty() {
        Path::new(".")
    } else {
        parent
    };
    let prefix = format!(".{}.tmp.", file_name.to_string_lossy());
    let Ok(dir) = fs::read_dir(parent) else {
        return;
    };
    for entry in dir.flatten() {
        if entry.file_name().to_string_lossy().starts_with(&prefix) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::canonical_key;
    use crate::ingest::parse_cotree_term;
    use std::sync::atomic::AtomicU32;

    fn temp_snapshot(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("pcsnap-test-{}-{tag}-{n}.snap", std::process::id()))
    }

    /// Removes the snapshot and its quarantine twin.
    fn cleanup(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(quarantine_path(path));
    }

    /// A cache warmed the way the engine warms one: a graph-linked entry
    /// with memoised scalars, a term-ingested entry, an untouched entry.
    fn warmed_cache() -> CotreeCache {
        let cache = CotreeCache::new(64);
        let linked = parse_cotree_term("(j a b c)").unwrap();
        let graph = Arc::new(linked.to_graph());
        let fp = graph_fingerprint(&graph);
        let entry = cache.insert(Some((fp, graph)), linked);
        entry.min_cover_size();
        entry.has_hamiltonian_path();
        let memoised = cache.insert(None, parse_cotree_term("(u (j a b) (j c d e))").unwrap());
        memoised.has_hamiltonian_cycle();
        cache.insert(None, parse_cotree_term("(u a b)").unwrap());
        cache
    }

    /// Rewrites the footer after a deliberate body edit, so the semantic
    /// integrity checks are what rejects the file, not the checksum.
    fn reseal(path: &Path, edit: impl FnOnce(String) -> String) {
        let text = fs::read_to_string(path).unwrap();
        let (body, _footer) = text
            .trim_end_matches('\n')
            .rsplit_once('\n')
            .expect("snapshot has a footer");
        let mut body = edit(format!("{body}\n"));
        let sum = checksum(body.as_bytes());
        body.push_str(&format!("pcsum {sum:016x}\n"));
        fs::write(path, body).unwrap();
    }

    fn assert_quarantined(path: &Path, outcome: LoadOutcome) -> SnapshotError {
        let LoadOutcome::Quarantined { error, moved_to } = outcome else {
            panic!("expected quarantine, got {outcome:?}");
        };
        assert_eq!(
            moved_to.as_deref(),
            Some(quarantine_path(path).as_path()),
            "corrupt file must be moved to <path>.corrupt"
        );
        assert!(!path.exists(), "original must be gone after quarantine");
        assert!(quarantine_path(path).exists(), "quarantined copy kept");
        error
    }

    #[test]
    fn round_trip_preserves_entries_scalars_and_links() {
        let path = temp_snapshot("roundtrip");
        let cache = warmed_cache();
        let report = save(&cache, &path).unwrap();
        assert_eq!(report.entries, 3);
        assert_eq!(report.links, 1);
        assert!(report.bytes > 0);

        let restored = CotreeCache::new(64);
        let loaded = load(&restored, &path).unwrap();
        assert_eq!(loaded.entries, 3);
        assert_eq!(loaded.links, 1);
        assert_eq!(loaded.scalar_checked, 2, "both memoised entries re-solved");

        // The graph link answers without recognition...
        let linked = parse_cotree_term("(j a b c)").unwrap();
        let graph = linked.to_graph();
        let entry = restored
            .lookup_graph(graph_fingerprint(&graph), &graph)
            .expect("graph link survived the restart");
        // ...and the memoised scalars came back pre-seeded.
        assert_eq!(
            entry.memoised_scalars(),
            MemoisedScalars {
                min_cover_size: Some(1),
                ham_path: Some(true),
                ham_cycle: None,
            }
        );
        // Cotree-keyed lookups hit too.
        let term_tree = parse_cotree_term("(u (j a b) (j c d e))").unwrap();
        let hit = restored
            .lookup_key(canonical_key(&term_tree), &term_tree)
            .expect("canonical entry survived");
        assert_eq!(hit.memoised_scalars().ham_cycle, Some(false));
        cleanup(&path);
    }

    #[test]
    fn empty_cache_round_trips() {
        let path = temp_snapshot("empty");
        let cache = CotreeCache::new(8);
        let report = save(&cache, &path).unwrap();
        assert_eq!(report.entries, 0);
        let restored = CotreeCache::new(8);
        let loaded = load(&restored, &path).unwrap();
        assert_eq!(loaded.entries, 0);
        assert_eq!(restored.stats().entries, 0);
        cleanup(&path);
    }

    #[test]
    fn lru_order_survives_the_round_trip() {
        let path = temp_snapshot("lru");
        // Single shard, capacity 2: eviction order is observable.
        let cache = CotreeCache::with_shards(2, 1);
        let cold = parse_cotree_term("(u a b)").unwrap();
        let hot = parse_cotree_term("(j a b)").unwrap();
        let cold_key = cache.insert(None, cold.clone()).key;
        let hot_key = cache.insert(None, hot.clone()).key;
        assert!(cache.lookup_key(cold_key, &cold).is_some(), "touch");
        // Now `hot` is the LRU one despite being inserted later.
        save(&cache, &path).unwrap();

        let restored = CotreeCache::with_shards(2, 1);
        load(&restored, &path).unwrap();
        restored.insert(None, parse_cotree_term("(u a b c)").unwrap());
        assert!(
            restored.lookup_key(cold_key, &cold).is_some(),
            "recently-used entry survives capacity pressure after reload"
        );
        assert!(
            restored.lookup_key(hot_key, &hot).is_none(),
            "LRU entry is the one evicted after reload"
        );
        cleanup(&path);
    }

    #[test]
    fn link_only_entries_do_not_evict_warm_canonical_entries_on_import() {
        // The state of a capacity-1 shard after churn: `warm` is the
        // canonical resident, `evicted` survives only through its graph
        // link. Importing must reproduce exactly that — re-promoting the
        // link-only entry into the canonical map would evict `warm`.
        let path = temp_snapshot("linkonly");
        let cache = CotreeCache::with_shards(1, 1);
        let evicted = parse_cotree_term("(j a b c)").unwrap();
        let evicted_graph = Arc::new(evicted.to_graph());
        let fp = graph_fingerprint(&evicted_graph);
        cache.insert(Some((fp, evicted_graph.clone())), evicted.clone());
        let warm = parse_cotree_term("(u a b)").unwrap();
        let warm_key = cache.insert(None, warm.clone()).key;
        assert!(cache
            .lookup_key(canonical_key(&evicted), &evicted)
            .is_none());
        let report = save(&cache, &path).unwrap();
        assert_eq!(report.entries, 2);

        let restored = CotreeCache::with_shards(1, 1);
        load(&restored, &path).unwrap();
        assert!(
            restored.lookup_key(warm_key, &warm).is_some(),
            "canonical resident must survive the import"
        );
        assert!(
            restored
                .lookup_key(canonical_key(&evicted), &evicted)
                .is_none(),
            "link-only entry must not be promoted into the canonical map"
        );
        assert!(
            restored.lookup_graph(fp, &evicted_graph).is_some(),
            "the graph link itself is restored"
        );
        cleanup(&path);
    }

    #[test]
    fn repeated_quarantine_keeps_earlier_evidence() {
        let path = temp_snapshot("evidence");
        let cache = CotreeCache::new(8);
        for round in ["first corruption", "second corruption"] {
            fs::write(&path, round).unwrap();
            let outcome = load_or_quarantine(&cache, &path);
            let LoadOutcome::Quarantined { moved_to, .. } = outcome else {
                panic!("expected quarantine on {round}");
            };
            assert!(moved_to.is_some(), "{round} moved aside");
        }
        let base = quarantine_path(&path);
        let second = PathBuf::from(format!("{}.1", base.display()));
        assert_eq!(fs::read(&base).unwrap(), b"first corruption");
        assert_eq!(fs::read(&second).unwrap(), b"second corruption");
        let _ = fs::remove_file(&second);
        cleanup(&path);
    }

    #[test]
    fn stale_tmp_files_are_swept_at_serve_time() {
        let path = temp_snapshot("sweep");
        save(&warmed_cache(), &path).unwrap();
        // An orphan from a save that never reached its rename (crash
        // between write and rename), plus an unrelated neighbour that must
        // survive the sweep.
        let orphan = path.with_file_name(format!(
            ".{}.tmp.12345.0",
            path.file_name().unwrap().to_string_lossy()
        ));
        fs::write(&orphan, b"half-written").unwrap();
        let unrelated = path.with_file_name(format!(
            "other-{}",
            path.file_name().unwrap().to_string_lossy()
        ));
        fs::write(&unrelated, b"not ours").unwrap();
        let cache = CotreeCache::new(8);
        assert!(matches!(
            load_or_quarantine(&cache, &path),
            LoadOutcome::Warm(_)
        ));
        assert!(!orphan.exists(), "orphaned tmp file swept");
        assert!(unrelated.exists(), "unrelated files untouched");
        let _ = fs::remove_file(&unrelated);
        cleanup(&path);
    }

    #[test]
    fn missing_file_is_a_clean_cold_start() {
        let path = temp_snapshot("missing");
        let cache = CotreeCache::new(8);
        assert!(matches!(
            load_or_quarantine(&cache, &path),
            LoadOutcome::ColdStart
        ));
        assert_eq!(cache.stats().entries, 0);
        assert!(!quarantine_path(&path).exists());
    }

    #[test]
    fn truncated_file_quarantines_and_starts_cold() {
        let path = temp_snapshot("truncated");
        save(&warmed_cache(), &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let cache = CotreeCache::new(8);
        let error = assert_quarantined(&path, load_or_quarantine(&cache, &path));
        assert!(
            matches!(
                error,
                SnapshotError::Truncated(_) | SnapshotError::ChecksumMismatch { .. }
            ),
            "got {error:?}"
        );
        assert_eq!(cache.stats().entries, 0, "nothing imported");
        cleanup(&path);
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let path = temp_snapshot("bitrot");
        save(&warmed_cache(), &path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit inside the first entry line (past the header).
        let pos = bytes.iter().position(|&b| b == b'\n').unwrap() + 5;
        bytes[pos] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        let cache = CotreeCache::new(8);
        let error = assert_quarantined(&path, load_or_quarantine(&cache, &path));
        assert!(
            matches!(error, SnapshotError::ChecksumMismatch { .. }),
            "got {error:?}"
        );
        assert_eq!(cache.stats().entries, 0);
        cleanup(&path);
    }

    #[test]
    fn future_version_header_is_refused() {
        let path = temp_snapshot("version");
        let body = "pcsnap2 0\n";
        let sum = checksum(body.as_bytes());
        fs::write(&path, format!("{body}pcsum {sum:016x}\n")).unwrap();
        let cache = CotreeCache::new(8);
        let error = assert_quarantined(&path, load_or_quarantine(&cache, &path));
        assert!(
            matches!(error, SnapshotError::BadHeader(_)),
            "got {error:?}"
        );
        cleanup(&path);
    }

    #[test]
    fn scalar_mismatch_is_caught_by_the_resolve_cross_check() {
        let path = temp_snapshot("scalars");
        save(&warmed_cache(), &path).unwrap();
        // A wrong memoised answer with a *valid* checksum: only the
        // re-solve cross-check can catch this.
        reseal(&path, |body| {
            assert!(body.contains("\"min_cover\":1"), "fixture drifted: {body}");
            body.replace("\"min_cover\":1", "\"min_cover\":2")
        });
        let cache = CotreeCache::new(8);
        let error = assert_quarantined(&path, load_or_quarantine(&cache, &path));
        match error {
            SnapshotError::Entry { message, .. } => {
                assert!(message.contains("min_cover"), "message: {message}")
            }
            other => panic!("expected an entry integrity error, got {other:?}"),
        }
        assert_eq!(cache.stats().entries, 0, "all-or-nothing: nothing imported");
        cleanup(&path);
    }

    #[test]
    fn canonical_key_mismatch_is_caught() {
        let path = temp_snapshot("key");
        save(&warmed_cache(), &path).unwrap();
        reseal(&path, |body| {
            let key_at = body.find("\"key\":\"").expect("an entry key") + 7;
            let mut edited = body.into_bytes();
            // Rewrite one hex digit of the stored key.
            edited[key_at] = if edited[key_at] == b'0' { b'1' } else { b'0' };
            String::from_utf8(edited).unwrap()
        });
        let cache = CotreeCache::new(8);
        let error = assert_quarantined(&path, load_or_quarantine(&cache, &path));
        match error {
            SnapshotError::Entry { message, .. } => {
                assert!(message.contains("canonical key"), "message: {message}")
            }
            other => panic!("expected an entry integrity error, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_caught() {
        let path = temp_snapshot("fingerprint");
        save(&warmed_cache(), &path).unwrap();
        reseal(&path, |body| {
            let fp_at = body.find("\"fps\":[\"").expect("a graph link") + 8;
            let mut edited = body.into_bytes();
            edited[fp_at] = if edited[fp_at] == b'0' { b'1' } else { b'0' };
            String::from_utf8(edited).unwrap()
        });
        let cache = CotreeCache::new(8);
        let error = assert_quarantined(&path, load_or_quarantine(&cache, &path));
        match error {
            SnapshotError::Entry { message, .. } => {
                assert!(message.contains("fingerprint"), "message: {message}")
            }
            other => panic!("expected an entry integrity error, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn inspect_reports_without_importing() {
        let path = temp_snapshot("inspect");
        save(&warmed_cache(), &path).unwrap();
        let report = inspect(&path).unwrap();
        assert_eq!(report.version, SNAPSHOT_VERSION);
        assert_eq!(report.entries, 3);
        assert_eq!(report.links, 1);
        assert_eq!(report.memoised, 2);
        assert_eq!(report.total_vertices, 3 + 5 + 2);
        assert_eq!(report.scalar_checked, 2);
        assert!(report.bytes > 0);
        cleanup(&path);
    }

    #[test]
    fn atomic_save_replaces_not_appends() {
        let path = temp_snapshot("atomic");
        let cache = warmed_cache();
        save(&cache, &path).unwrap();
        let first = fs::read(&path).unwrap();
        // Saving again over the same path yields a fresh, loadable file.
        save(&cache, &path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), first);
        let restored = CotreeCache::new(64);
        assert_eq!(load(&restored, &path).unwrap().entries, 3);
        cleanup(&path);
    }
}
