//! The version-2 request envelope: one typed shape for every operation.
//!
//! Version 1 grew one wire shape per verb — `{"type":"solve",...}` frames,
//! `POST /v1/solve` bodies, `{"type":"batch",...}` — and the session verbs
//! of [`crate::session`] would have added six more. Version 2 replaces the
//! zoo with a single envelope:
//!
//! ```json
//! {"api_version": 2, "op": "solve",
//!  "target": {"edge_list": "0 1\n"},
//!  "params": {"kind": "min_cover_size"},
//!  "trace_id": "client-chosen"}
//! ```
//!
//! * **`op`** names the operation: `solve`, `batch`, `stats`, `metrics`,
//!   `snapshot`, `shutdown`, the session verbs `session_create`,
//!   `session_add_vertex`, `session_add_edges`, `session_remove_edge`,
//!   `session_query`, `session_drop`, or the flight-recorder verbs
//!   `trace_list` and `trace_get` (see [`crate::trace`]).
//! * **`target`** names the graph the op acts on — either an inline graph
//!   (`edge_list` / `dimacs` / `cotree`, exactly the v1 spellings) or a
//!   daemon-resident session handle `{"session": "sess-..."}`. `solve`
//!   accepts both: solving against a session handle is identical to
//!   `session_query`.
//! * **`params`** carries op-specific arguments (`kind`, `neighbors`,
//!   `edges`, ...).
//! * **`trace_id`** is the usual request correlation id.
//!
//! Every reply is `{"api_version": 2, "op": ..., "ok": true, "result":
//! ...}` or `{"api_version": 2, "op": ..., "ok": false, "error": {"code",
//! "message", "p4"?}}`, always with a top-level `trace_id`. Per-job
//! failures of `solve` / `batch` / `session_query` stay *inside* the
//! result's response objects (exactly as in v1); the envelope's `ok`
//! reports whether the operation itself ran.
//!
//! The envelope is served on both transports: `POST /v2/query` over HTTP
//! and `pcp2`-tagged frames on the framed socket (the frame header's
//! version selects the dialect per frame, so one connection can mix both).
//! The v1 surfaces are thin shims: [`crate::proto::dispatch_ctx`] maps each
//! legacy request onto an [`Op`], runs it through [`execute_op`] — the one
//! dispatcher — and re-wraps the identical result payload in the legacy
//! reply shape.

use crate::engine::QueryEngine;
use crate::error::ServiceError;
use crate::json::Json;
use crate::model::{GraphSpec, QueryKind, QueryRequest};
use crate::proto::{self, Action};
use crate::telemetry::RequestCtx;
use pcgraph::VertexId;

/// The envelope's `api_version` (and the frame tag `pcp2`).
pub const API_VERSION: u64 = 2;

/// What an operation acts on.
#[derive(Debug, Clone)]
pub enum Target {
    /// An inline graph, in any of the v1 spellings.
    Inline(GraphSpec),
    /// A daemon-resident session handle.
    Session(String),
}

/// One decoded v2 operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// Answer one query against an inline graph or a session handle.
    Solve {
        /// The graph (inline) or session to solve against.
        target: Target,
        /// What to compute.
        kind: QueryKind,
        /// Caller-chosen id echoed in the response object.
        id: Option<String>,
    },
    /// Answer a batch of queries (inline graphs and/or a shared graph).
    Batch {
        /// Graph shared by requests using [`GraphSpec::Shared`].
        shared: Option<GraphSpec>,
        /// The queries, answered in order.
        requests: Vec<QueryRequest>,
    },
    /// The cache/uptime/stage statistics object.
    Stats,
    /// The full metrics report.
    Metrics,
    /// Persist the warm cache now.
    Snapshot,
    /// Stop the daemon.
    Shutdown,
    /// Create a session, empty or seeded from an inline graph target.
    SessionCreate {
        /// Optional seed graph.
        graph: Option<GraphSpec>,
    },
    /// Insert one vertex (with its neighborhood) into a session.
    SessionAddVertex {
        /// The session handle.
        handle: String,
        /// Neighbors of the new vertex among the existing vertices.
        neighbors: Vec<VertexId>,
    },
    /// Add edges between existing session vertices.
    SessionAddEdges {
        /// The session handle.
        handle: String,
        /// The edges to add (duplicates of existing edges are ignored).
        edges: Vec<(VertexId, VertexId)>,
    },
    /// Remove one edge from a session.
    SessionRemoveEdge {
        /// The session handle.
        handle: String,
        /// The edge to remove.
        edge: (VertexId, VertexId),
    },
    /// Answer one query against the session's resident cotree.
    SessionQuery {
        /// The session handle.
        handle: String,
        /// What to compute.
        kind: QueryKind,
    },
    /// Drop a session, releasing its handle.
    SessionDrop {
        /// The session handle.
        handle: String,
    },
    /// List the flight recorder's retained trace summaries.
    TraceList,
    /// Fetch one retained trace in full.
    TraceGet {
        /// The trace id to fetch.
        id: String,
        /// Emit Chrome trace-event JSON instead of the native shape
        /// (`params.format: "chrome"`).
        chrome: bool,
    },
}

impl Op {
    /// The wire name, echoed as the reply's `op` field.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Solve { .. } => "solve",
            Op::Batch { .. } => "batch",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Snapshot => "snapshot",
            Op::Shutdown => "shutdown",
            Op::SessionCreate { .. } => "session_create",
            Op::SessionAddVertex { .. } => "session_add_vertex",
            Op::SessionAddEdges { .. } => "session_add_edges",
            Op::SessionRemoveEdge { .. } => "session_remove_edge",
            Op::SessionQuery { .. } => "session_query",
            Op::SessionDrop { .. } => "session_drop",
            Op::TraceList => "trace_list",
            Op::TraceGet { .. } => "trace_get",
        }
    }
}

/// An operation-level failure: either a typed engine error (carrying its
/// structured wire body, `p4` witness included) or a snapshot-persistence
/// failure (which has protocol-level codes but no [`ServiceError`] variant).
#[derive(Debug)]
pub enum OpError {
    /// A typed engine/session error.
    Service(ServiceError),
    /// A snapshot save failure (`snapshot_unconfigured` / `snapshot_failed`).
    Snapshot {
        /// The stable error code.
        code: &'static str,
        /// The human-readable message.
        message: String,
    },
    /// A `trace_get` miss: the id was never retained, was sampled out, or
    /// has been evicted from the ring.
    TraceNotFound {
        /// The requested trace id.
        id: String,
    },
}

impl OpError {
    /// The stable error code.
    pub fn code(&self) -> &'static str {
        match self {
            OpError::Service(e) => e.code(),
            OpError::Snapshot { code, .. } => code,
            OpError::TraceNotFound { .. } => "trace_not_found",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            OpError::Service(e) => e.to_string(),
            OpError::Snapshot { message, .. } => message.clone(),
            OpError::TraceNotFound { id } => {
                format!(
                    "no retained trace with id '{id}' (evicted, sampled out, or never recorded)"
                )
            }
        }
    }

    /// The structured wire body (`code` / `message` / `p4`?), via the
    /// shared [`ServiceError::wire_body`] builder.
    pub fn wire_body(&self) -> Json {
        match self {
            OpError::Service(e) => e.wire_body(),
            OpError::Snapshot { .. } | OpError::TraceNotFound { .. } => Json::obj(vec![
                ("code", Json::str(self.code())),
                ("message", Json::str(self.message())),
            ]),
        }
    }
}

fn bad(message: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest(message.into())
}

/// Whether an op does engine work and must pass the admission gate.
/// Observability (`stats` / `metrics` / `trace_list` / `trace_get`),
/// `shutdown`, `snapshot`, and `session_drop` stay ungated: under overload
/// an operator must still be able to look and drain, and clients must
/// still be able to *release* resources.
fn needs_admission(op: &Op) -> bool {
    matches!(
        op,
        Op::Solve { .. }
            | Op::Batch { .. }
            | Op::SessionCreate { .. }
            | Op::SessionAddVertex { .. }
            | Op::SessionAddEdges { .. }
            | Op::SessionRemoveEdge { .. }
            | Op::SessionQuery { .. }
    )
}

/// Decodes a v2 envelope into a typed [`Op`].
///
/// `api_version`, when present, must be `2` (the transports already
/// selected the dialect — this catches a v1 body posted to a v2 surface).
pub fn parse_envelope(value: &Json) -> Result<Op, ServiceError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(bad("envelope must be a JSON object"));
    }
    if let Some(version) = value.get("api_version") {
        if version.as_u64() != Some(API_VERSION) {
            return Err(bad(format!(
                "envelope api_version must be {API_VERSION}, got {version}"
            )));
        }
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'op'"))?;
    let params = match value.get("params") {
        None | Some(Json::Null) => &Json::Null,
        Some(params @ Json::Obj(_)) => params,
        Some(other) => return Err(bad(format!("'params' must be an object, got {other}"))),
    };
    let target = parse_target(value.get("target"))?;
    match op {
        "solve" => Ok(Op::Solve {
            target: target.ok_or_else(|| {
                bad("'solve' needs a target: an inline graph or {\"session\": handle}")
            })?,
            kind: param_kind(params)?,
            id: param_id(params)?,
        }),
        "batch" => {
            let (shared, requests) =
                proto::batch_fields(params).map_err(|e| bad(format!("batch params: {e}")))?;
            Ok(Op::Batch { shared, requests })
        }
        "stats" => Ok(Op::Stats),
        "metrics" => Ok(Op::Metrics),
        "snapshot" => Ok(Op::Snapshot),
        "shutdown" => Ok(Op::Shutdown),
        "session_create" => {
            let graph = match target {
                None => None,
                Some(Target::Inline(spec)) => Some(spec),
                Some(Target::Session(_)) => {
                    return Err(bad("session_create seeds from an inline graph target, \
                                    not a session handle"))
                }
            };
            Ok(Op::SessionCreate { graph })
        }
        "session_add_vertex" => Ok(Op::SessionAddVertex {
            handle: session_target(target, op)?,
            neighbors: param_vertex_array(params, "neighbors")?,
        }),
        "session_add_edges" => Ok(Op::SessionAddEdges {
            handle: session_target(target, op)?,
            edges: param_edge_array(params, "edges")?,
        }),
        "session_remove_edge" => {
            let mut edges = param_edge_array(params, "edge")?;
            if edges.len() != 1 {
                return Err(bad("'edge' must be a single [u, v] pair"));
            }
            Ok(Op::SessionRemoveEdge {
                handle: session_target(target, op)?,
                edge: edges.pop().expect("length checked"),
            })
        }
        "session_query" => Ok(Op::SessionQuery {
            handle: session_target(target, op)?,
            kind: param_kind(params)?,
        }),
        "session_drop" => Ok(Op::SessionDrop {
            handle: session_target(target, op)?,
        }),
        "trace_list" => Ok(Op::TraceList),
        "trace_get" => Ok(Op::TraceGet {
            id: params
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("trace_get params need a string field 'id'"))?
                .to_string(),
            chrome: param_trace_format(params)?,
        }),
        other => Err(bad(format!("unknown op '{other}'"))),
    }
}

/// Decodes the `target` field: absent, a session handle, or an inline
/// graph in the v1 spellings.
fn parse_target(value: Option<&Json>) -> Result<Option<Target>, ServiceError> {
    let value = match value {
        None | Some(Json::Null) => return Ok(None),
        Some(value) => value,
    };
    if !matches!(value, Json::Obj(_)) {
        return Err(bad("'target' must be an object"));
    }
    if let Some(handle) = value.get("session") {
        let handle = handle
            .as_str()
            .ok_or_else(|| bad("target field 'session' must be a string"))?;
        if GraphSpec::from_json_fields(value)?.is_some() {
            return Err(bad(
                "target names both a session and an inline graph; pick one",
            ));
        }
        return Ok(Some(Target::Session(handle.to_string())));
    }
    match GraphSpec::from_json_fields(value)? {
        Some(spec) => Ok(Some(Target::Inline(spec))),
        None => Err(bad(
            "target needs 'session' or one of 'edge_list'/'dimacs'/'cotree'",
        )),
    }
}

fn session_target(target: Option<Target>, op: &str) -> Result<String, ServiceError> {
    match target {
        Some(Target::Session(handle)) => Ok(handle),
        _ => Err(bad(format!(
            "'{op}' needs a session target: {{\"session\": handle}}"
        ))),
    }
}

/// Decodes `params.format` for `trace_get`: absent or `"json"` keeps the
/// native shape, `"chrome"` selects Chrome trace-event JSON.
fn param_trace_format(params: &Json) -> Result<bool, ServiceError> {
    match params.get("format") {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Str(s)) if s == "json" => Ok(false),
        Some(Json::Str(s)) if s == "chrome" => Ok(true),
        Some(other) => Err(bad(format!(
            "unknown trace format {other} (use \"json\" or \"chrome\")"
        ))),
    }
}

fn param_kind(params: &Json) -> Result<QueryKind, ServiceError> {
    let name = params
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("params need a string field 'kind'"))?;
    QueryKind::parse(name).ok_or_else(|| {
        bad(format!(
            "unknown kind '{name}' (expected one of {})",
            QueryKind::ALL.map(|k| k.as_str()).join(", ")
        ))
    })
}

fn param_id(params: &Json) -> Result<Option<String>, ServiceError> {
    match params.get("id") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(id @ Json::Num(_)) => Ok(Some(id.to_string())),
        Some(other) => Err(bad(format!(
            "field 'id' must be a string or number, got {other}"
        ))),
    }
}

fn vertex_id(value: &Json, field: &str) -> Result<VertexId, ServiceError> {
    let id = value
        .as_u64()
        .ok_or_else(|| bad(format!("'{field}' entries must be non-negative integers")))?;
    VertexId::try_from(id).map_err(|_| bad(format!("vertex id {id} in '{field}' is out of range")))
}

fn param_vertex_array(params: &Json, field: &str) -> Result<Vec<VertexId>, ServiceError> {
    match params.get(field) {
        // An isolated vertex has no neighbors: the field may be omitted.
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Arr(items)) => items.iter().map(|v| vertex_id(v, field)).collect(),
        Some(other) => Err(bad(format!("'{field}' must be an array, got {other}"))),
    }
}

fn param_edge_array(params: &Json, field: &str) -> Result<Vec<(VertexId, VertexId)>, ServiceError> {
    let Some(Json::Arr(items)) = params.get(field) else {
        return Err(bad(format!("params need an array field '{field}'")));
    };
    let items: &[Json] = items;
    // `edge` is a single pair; `edges` is an array of pairs. Accept a bare
    // pair for `edge` so clients need not double-nest.
    if field == "edge" && items.len() == 2 && items.iter().all(|v| v.as_u64().is_some()) {
        return Ok(vec![(
            vertex_id(&items[0], field)?,
            vertex_id(&items[1], field)?,
        )]);
    }
    items
        .iter()
        .map(|pair| match pair {
            Json::Arr(uv) if uv.len() == 2 => {
                Ok((vertex_id(&uv[0], field)?, vertex_id(&uv[1], field)?))
            }
            other => Err(bad(format!(
                "'{field}' entries must be [u, v] pairs, got {other}"
            ))),
        })
        .collect()
}

/// Runs one operation against the engine, producing the v2 `result`
/// payload (or an [`OpError`]) and the follow-up connection action.
///
/// This is the single dispatcher both API versions share:
/// [`dispatch_envelope`] wraps the outcome in the v2 envelope, and the v1
/// [`crate::proto::dispatch_ctx`] wraps the *identical* payload in the
/// legacy per-verb reply shapes.
///
/// Work ops pass the engine's admission gate first; past the
/// `max_inflight` cap they fail with a recoverable `overloaded` error
/// (carrying `retry_after_ms`) without touching the pipeline.
pub fn execute_op(
    engine: &QueryEngine,
    op: &Op,
    ctx: &RequestCtx,
) -> (Result<Json, OpError>, Action) {
    // Open the request's root span here — before admission — so the trace
    // of an admitted request includes its admission wait, and a *shed*
    // request still leaves a (protected) trace in the flight recorder.
    let ctx = &engine.traced_ctx(ctx);
    let _permit = if needs_admission(op) {
        let admit_wait = ctx.span_start();
        match engine.try_admit() {
            Ok(permit) => {
                ctx.finish_span("admission:wait", admit_wait);
                Some(permit)
            }
            Err(error) => {
                ctx.finish_span("admission:wait", admit_wait);
                if let Some(collector) = &ctx.collector {
                    engine.recorder().commit(
                        &ctx.trace_id,
                        op.name(),
                        error.code(),
                        collector.elapsed_us(),
                        true,
                        collector.take(),
                    );
                }
                return (Err(OpError::Service(error)), Action::Continue);
            }
        }
    } else {
        None
    };
    let result = match op {
        Op::Solve {
            target: Target::Inline(spec),
            kind,
            id,
        } => {
            let request = QueryRequest {
                id: id.clone(),
                kind: *kind,
                graph: spec.clone(),
            };
            Ok(engine.execute_ctx(&request, ctx).to_json())
        }
        Op::Solve {
            target: Target::Session(handle),
            kind,
            ..
        } => session_query_result(engine, handle, *kind, ctx),
        Op::SessionQuery { handle, kind } => session_query_result(engine, handle, *kind, ctx),
        Op::Batch { shared, requests } => {
            let responses = engine.execute_batch_ctx(shared.as_ref(), requests, ctx);
            Ok(Json::obj(vec![(
                "responses",
                Json::Arr(responses.iter().map(|r| r.to_json()).collect()),
            )]))
        }
        Op::Stats => Ok(proto::stats_payload(engine)),
        Op::Metrics => Ok(proto::metrics_payload(engine)),
        Op::Snapshot => {
            let checkpoint = ctx.span_start();
            let result = match engine.save_snapshot() {
                Ok(report) => Ok(proto::snapshot_payload(engine, &report)),
                Err(error @ crate::snapshot::SnapshotError::NotConfigured) => {
                    Err(OpError::Snapshot {
                        code: "snapshot_unconfigured",
                        message: error.to_string(),
                    })
                }
                Err(error) => Err(OpError::Snapshot {
                    code: "snapshot_failed",
                    message: error.to_string(),
                }),
            };
            ctx.finish_span("snapshot:checkpoint", checkpoint);
            if let Some(collector) = &ctx.collector {
                let (outcome, protected) = match &result {
                    Ok(_) => ("ok", false),
                    Err(error) => (error.code(), true),
                };
                engine.recorder().commit(
                    &ctx.trace_id,
                    "snapshot",
                    outcome,
                    collector.elapsed_us(),
                    protected,
                    collector.take(),
                );
            }
            result
        }
        Op::Shutdown => Ok(Json::obj(vec![])),
        Op::SessionCreate { graph } => engine
            .session_create(graph.as_ref())
            .map(|state| session_state_json(&state))
            .map_err(OpError::Service),
        Op::SessionAddVertex { handle, neighbors } => engine
            .session_add_vertex(handle, neighbors)
            .map(|state| session_state_json(&state))
            .map_err(OpError::Service),
        Op::SessionAddEdges { handle, edges } => engine
            .session_add_edges(handle, edges)
            .map(|state| session_state_json(&state))
            .map_err(OpError::Service),
        Op::SessionRemoveEdge { handle, edge } => engine
            .session_remove_edge(handle, edge.0, edge.1)
            .map(|state| session_state_json(&state))
            .map_err(OpError::Service),
        Op::SessionDrop { handle } => engine
            .session_drop(handle)
            .map(|()| {
                Json::obj(vec![
                    ("handle", Json::str(handle.clone())),
                    ("dropped", Json::Bool(true)),
                ])
            })
            .map_err(OpError::Service),
        Op::TraceList => Ok(engine.recorder().list_json()),
        Op::TraceGet { id, chrome } => match engine.recorder().get(id) {
            Some(trace) => Ok(if *chrome {
                trace.to_chrome_json()
            } else {
                trace.to_json()
            }),
            None => Err(OpError::TraceNotFound { id: id.clone() }),
        },
    };
    let action = if matches!(op, Op::Shutdown) {
        Action::Shutdown
    } else {
        Action::Continue
    };
    (result, action)
}

/// Answers a query against a session's resident cotree. Per-job failures
/// stay inside the response object exactly as they do for inline solves,
/// but a missing handle is an *operation*-level failure — there is no
/// graph the response could be about — so it surfaces as the envelope's
/// (or the v1 shim's) typed error instead.
fn session_query_result(
    engine: &QueryEngine,
    handle: &str,
    kind: QueryKind,
    ctx: &RequestCtx,
) -> Result<Json, OpError> {
    let response = engine.session_query_ctx(handle, kind, ctx);
    match &response.outcome {
        Err(error @ ServiceError::SessionNotFound(_)) => Err(OpError::Service(error.clone())),
        _ => Ok(response.to_json()),
    }
}

/// The `result` payload of every session mutation / creation: the handle
/// and the post-op graph shape, how the cotree was maintained
/// (`incremental` / `rebuild` / `noop`), and — for insertions — the id
/// assigned to the new vertex.
fn session_state_json(state: &crate::session::SessionState) -> Json {
    let mut fields = vec![
        ("handle", Json::str(state.handle.clone())),
        ("vertices", Json::num(state.vertices as u64)),
        ("edges", Json::num(state.edges as u64)),
        ("mutations", Json::num(state.mutations)),
        ("maintenance", Json::str(state.maintenance.as_str())),
    ];
    if let Some(v) = state.new_vertex {
        fields.push(("new_vertex", Json::num(v as u64)));
    }
    Json::obj(fields)
}

/// Serves one decoded v2 envelope end to end: parse, execute, wrap in the
/// v2 reply shape, attach the trace. Both transports call this — `POST
/// /v2/query` bodies and `pcp2` frame payloads are the same bytes.
pub fn dispatch_envelope(engine: &QueryEngine, value: &Json, ctx: &RequestCtx) -> (Json, Action) {
    let op = match parse_envelope(value) {
        Ok(op) => op,
        Err(error) => {
            return (
                error_envelope(None, &OpError::Service(error), ctx),
                Action::Continue,
            )
        }
    };
    let (result, action) = execute_op(engine, &op, ctx);
    let reply = match result {
        Ok(result) => proto::attach_trace(
            Json::obj(vec![
                ("api_version", Json::num(API_VERSION)),
                ("op", Json::str(op.name())),
                ("ok", Json::Bool(true)),
                ("result", result),
            ]),
            ctx,
        ),
        Err(error) => error_envelope(Some(op.name()), &error, ctx),
    };
    (reply, action)
}

/// A v2 error envelope for an operation failure (or, with `op: None`, for
/// an envelope that never parsed).
pub fn error_envelope(op: Option<&str>, error: &OpError, ctx: &RequestCtx) -> Json {
    proto::attach_trace(
        Json::obj(vec![
            ("api_version", Json::num(API_VERSION)),
            ("op", op.map_or(Json::Null, Json::str)),
            ("ok", Json::Bool(false)),
            ("error", error.wire_body()),
        ]),
        ctx,
    )
}

/// A v2 error envelope for a protocol-level defect (bad JSON in a `pcp2`
/// frame, an oversized reply): the framed transport's counterpart of the
/// v1 `{"type":"error"}` reply.
pub fn protocol_error_envelope(code: &str, message: &str, ctx: &RequestCtx) -> Json {
    proto::attach_trace(
        Json::obj(vec![
            ("api_version", Json::num(API_VERSION)),
            ("op", Json::Null),
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj(vec![
                    ("code", Json::str(code)),
                    ("message", Json::str(message)),
                ]),
            ),
        ]),
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Stage;

    fn engine() -> QueryEngine {
        QueryEngine::default()
    }

    fn dispatch(engine: &QueryEngine, envelope: &str) -> Json {
        let value = Json::parse(envelope).expect("test envelope is valid JSON");
        let (reply, _) = dispatch_envelope(engine, &value, &RequestCtx::with_trace("t-v2"));
        reply
    }

    #[test]
    fn solve_by_inline_graph_and_by_session_handle_agree() {
        let engine = engine();
        let reply = dispatch(
            &engine,
            r#"{"api_version":2,"op":"solve","target":{"cotree":"(j a b c)"},
                "params":{"kind":"min_cover_size","id":7}}"#,
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("op").and_then(Json::as_str), Some("solve"));
        assert_eq!(reply.get("api_version").and_then(Json::as_u64), Some(2));
        let result = reply.get("result").expect("result");
        assert_eq!(result.get("id").and_then(Json::as_str), Some("7"));
        assert_eq!(
            result
                .get("answer")
                .and_then(|a| a.get("size"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(reply.get("trace_id").and_then(Json::as_str), Some("t-v2"));

        // The same K3 grown in a session: solving against the handle gives
        // the same answer, and `solve` ≡ `session_query` for that target.
        let created = dispatch(
            &engine,
            r#"{"api_version":2,"op":"session_create","target":{"edge_list":"0 1\n0 2\n1 2\n"}}"#,
        );
        assert_eq!(created.get("ok").and_then(Json::as_bool), Some(true));
        let handle = created
            .get("result")
            .and_then(|r| r.get("handle"))
            .and_then(Json::as_str)
            .expect("handle")
            .to_string();
        for op in ["solve", "session_query"] {
            let reply = dispatch(
                &engine,
                &format!(
                    r#"{{"op":"{op}","target":{{"session":"{handle}"}},
                        "params":{{"kind":"min_cover_size"}}}}"#
                ),
            );
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{op}");
            assert_eq!(
                reply
                    .get("result")
                    .and_then(|r| r.get("answer"))
                    .and_then(|a| a.get("size"))
                    .and_then(Json::as_u64),
                Some(1),
                "{op}"
            );
        }
    }

    #[test]
    fn session_lifecycle_over_the_envelope() {
        let engine = engine();
        let created = dispatch(&engine, r#"{"op":"session_create"}"#);
        let handle = created
            .get("result")
            .and_then(|r| r.get("handle"))
            .and_then(Json::as_str)
            .expect("handle")
            .to_string();

        // Grow P3: 0, then 1-0, then 2-1.
        for neighbors in ["[]", "[0]", "[1]"] {
            let reply = dispatch(
                &engine,
                &format!(
                    r#"{{"op":"session_add_vertex","target":{{"session":"{handle}"}},
                        "params":{{"neighbors":{neighbors}}}}}"#
                ),
            );
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(
                reply
                    .get("result")
                    .and_then(|r| r.get("maintenance"))
                    .and_then(Json::as_str),
                Some("incremental")
            );
        }

        // Completing the P4 is refused with the certificate, envelope-level.
        let reply = dispatch(
            &engine,
            &format!(
                r#"{{"op":"session_add_vertex","target":{{"session":"{handle}"}},
                    "params":{{"neighbors":[2]}}}}"#
            ),
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        let error = reply.get("error").expect("error body");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some("not_a_cograph")
        );
        assert!(
            matches!(error.get("p4"), Some(Json::Arr(p4)) if p4.len() == 4),
            "p4 witness missing: {reply}"
        );

        // Edge mutations route through too; the handle still answers.
        let reply = dispatch(
            &engine,
            &format!(
                r#"{{"op":"session_add_edges","target":{{"session":"{handle}"}},
                    "params":{{"edges":[[0,2]]}}}}"#
            ),
        );
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "{reply}"
        );
        let reply = dispatch(
            &engine,
            &format!(
                r#"{{"op":"session_remove_edge","target":{{"session":"{handle}"}},
                    "params":{{"edge":[0,2]}}}}"#
            ),
        );
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "{reply}"
        );

        let reply = dispatch(
            &engine,
            &format!(r#"{{"op":"session_drop","target":{{"session":"{handle}"}}}}"#),
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            reply
                .get("result")
                .and_then(|r| r.get("dropped"))
                .and_then(Json::as_bool),
            Some(true)
        );
        // Dropped means gone.
        let reply = dispatch(
            &engine,
            &format!(
                r#"{{"op":"session_query","target":{{"session":"{handle}"}},
                    "params":{{"kind":"recognize"}}}}"#
            ),
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            reply
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("session_not_found")
        );
    }

    #[test]
    fn envelope_defects_are_typed_bad_requests() {
        let engine = engine();
        for (envelope, fragment) in [
            (r#"{"op":"solve"}"#, "needs a target"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"no_op":1}"#, "missing string field 'op'"),
            (
                r#"{"op":"solve","api_version":1,"target":{"edge_list":"0 1"}}"#,
                "api_version",
            ),
            (
                r#"{"op":"solve","target":{"edge_list":"0 1"},"params":{"kind":"sideways"}}"#,
                "unknown kind",
            ),
            (
                r#"{"op":"session_query","target":{"edge_list":"0 1"},"params":{"kind":"recognize"}}"#,
                "needs a session target",
            ),
            (
                r#"{"op":"session_add_vertex","target":{"session":"s"},"params":{"neighbors":[-1]}}"#,
                "non-negative",
            ),
            (
                r#"{"op":"solve","target":{"session":"s","edge_list":"0 1"},"params":{"kind":"recognize"}}"#,
                "pick one",
            ),
        ] {
            let reply = dispatch(&engine, envelope);
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(false),
                "{envelope}"
            );
            let message = reply
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("");
            assert!(
                message.contains(fragment),
                "for {envelope}: expected '{fragment}' in '{message}'"
            );
        }
    }

    #[test]
    fn v1_verbs_are_shims_over_the_same_dispatcher() {
        // The v1 reply's inner payload must be byte-identical to the v2
        // result for every shared verb (same engine state on both sides:
        // solve twice so both observe a cache hit, then compare).
        let engine = engine();
        let query = QueryRequest::new(
            QueryKind::FullCover,
            GraphSpec::CotreeTerm("(u (j a b) c)".to_string()),
        );
        engine.execute(&query); // warm: both reads below are cache hits
        let ctx = RequestCtx::with_trace("t-eq");

        let (v1, _) = proto::dispatch_ctx(&engine, &proto::Request::Solve(query.clone()), &ctx);
        let v2 = dispatch(
            &engine,
            r#"{"op":"solve","target":{"cotree":"(u (j a b) c)"},
                "params":{"kind":"full_cover"}}"#,
        );
        let strip = |value: &Json| strip_volatile(value).to_string();
        assert_eq!(
            strip(v1.get("response").expect("v1 payload")),
            strip(v2.get("result").expect("v2 payload")),
            "v1 solve and v2 solve must carry identical payloads"
        );

        // Stats: same payload builder, compared end to end.
        let (v1, _) = proto::dispatch_ctx(&engine, &proto::Request::Stats, &ctx);
        let v2 = dispatch(&engine, r#"{"op":"stats"}"#);
        assert_eq!(
            strip(v1.get("stats").expect("v1 stats")),
            strip(v2.get("result").expect("v2 stats")),
        );
    }

    #[test]
    fn session_query_over_envelope_never_marks_the_recognize_stage() {
        let engine = engine();
        let created = dispatch(&engine, r#"{"op":"session_create"}"#);
        let handle = created
            .get("result")
            .and_then(|r| r.get("handle"))
            .and_then(Json::as_str)
            .expect("handle")
            .to_string();
        for neighbors in ["[]", "[0]", "[0,1]"] {
            let reply = dispatch(
                &engine,
                &format!(
                    r#"{{"op":"session_add_vertex","target":{{"session":"{handle}"}},
                        "params":{{"neighbors":{neighbors}}}}}"#
                ),
            );
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        }
        let reply = dispatch(
            &engine,
            &format!(
                r#"{{"op":"session_query","target":{{"session":"{handle}"}},
                    "params":{{"kind":"hamiltonian_path"}}}}"#
            ),
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let report = engine.metrics_report();
        assert_eq!(
            report.stages[Stage::Recognize.index()].count,
            0,
            "session traffic must never hit the batch recognize stage"
        );
        assert_eq!(report.sessions.recognize_incremental, 3);
    }

    #[test]
    fn admission_gate_sheds_work_ops_but_not_observability() {
        let engine = QueryEngine::new(crate::engine::EngineConfig {
            max_inflight: 1,
            ..crate::engine::EngineConfig::default()
        });
        let _held = engine.try_admit().expect("take the only slot");
        let reply = dispatch(
            &engine,
            r#"{"op":"solve","target":{"cotree":"(j a b)"},"params":{"kind":"min_cover_size"}}"#,
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        let error = reply.get("error").expect("error body");
        assert_eq!(error.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            error.get("retry_after_ms").and_then(Json::as_u64),
            Some(crate::engine::DEFAULT_RETRY_AFTER_MS),
            "overload rejections must carry the backoff hint: {reply}"
        );
        // session_create is work too.
        let reply = dispatch(&engine, r#"{"op":"session_create"}"#);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        // stats and metrics stay live under full overload.
        for op in ["stats", "metrics"] {
            let reply = dispatch(&engine, &format!(r#"{{"op":"{op}"}}"#));
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{op}");
        }
        drop(_held);
        let reply = dispatch(
            &engine,
            r#"{"op":"solve","target":{"cotree":"(j a b)"},"params":{"kind":"min_cover_size"}}"#,
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(engine.metrics_report().rejected_overload, 2);
    }

    #[test]
    fn trace_ops_list_and_fetch_retained_traces() {
        let engine = engine();
        let solved = dispatch(
            &engine,
            r#"{"op":"solve","target":{"cotree":"(j a b c)"},"params":{"kind":"full_cover"}}"#,
        );
        assert_eq!(solved.get("ok").and_then(Json::as_bool), Some(true));

        let list = dispatch(&engine, r#"{"op":"trace_list"}"#);
        assert_eq!(list.get("ok").and_then(Json::as_bool), Some(true));
        let result = list.get("result").expect("result");
        assert!(result.get("retained").and_then(Json::as_u64).unwrap_or(0) >= 1);
        let Some(Json::Arr(traces)) = result.get("traces") else {
            panic!("missing traces array: {list}");
        };
        let id = traces[0]
            .get("trace_id")
            .and_then(Json::as_str)
            .expect("summary has trace_id")
            .to_string();
        assert_eq!(id, "t-v2", "the dispatched solve's trace id is retained");

        let fetched = dispatch(
            &engine,
            &format!(r#"{{"op":"trace_get","params":{{"id":"{id}"}}}}"#),
        );
        assert_eq!(fetched.get("ok").and_then(Json::as_bool), Some(true));
        let spans = fetched.get("result").and_then(|r| r.get("spans"));
        assert!(
            matches!(spans, Some(Json::Arr(s)) if !s.is_empty()),
            "full trace carries spans: {fetched}"
        );

        let chrome = dispatch(
            &engine,
            &format!(r#"{{"op":"trace_get","params":{{"id":"{id}","format":"chrome"}}}}"#),
        );
        assert!(
            chrome
                .get("result")
                .and_then(|r| r.get("traceEvents"))
                .is_some(),
            "chrome format carries traceEvents: {chrome}"
        );

        let missing = dispatch(&engine, r#"{"op":"trace_get","params":{"id":"absent"}}"#);
        assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            missing
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("trace_not_found")
        );
    }

    #[test]
    fn shed_requests_leave_protected_traces_with_the_admission_span() {
        let engine = QueryEngine::new(crate::engine::EngineConfig {
            max_inflight: 1,
            ..crate::engine::EngineConfig::default()
        });
        let held = engine.try_admit().expect("take the only slot");
        let reply = dispatch(
            &engine,
            r#"{"op":"solve","target":{"cotree":"(j a b)"},"params":{"kind":"min_cover_size"}}"#,
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        drop(held);
        let trace = engine.recorder().get("t-v2").expect("shed trace retained");
        assert!(trace.protected, "overload sheds must be protected");
        assert_eq!(trace.outcome, "overloaded");
        assert!(
            trace.spans.iter().any(|s| s.name == "admission:wait"),
            "shed trace records the admission attempt: {:?}",
            trace.spans
        );
    }

    /// Drops the timing fields and the trace id, the only fields allowed
    /// to differ between two runs of the same request.
    fn strip_volatile(value: &Json) -> Json {
        match value {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| {
                        k != "solve_us" && k != "total_us" && k != "trace_id" && k != "uptime_secs"
                    })
                    .map(|(k, v)| (k.clone(), strip_volatile(v)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(strip_volatile).collect()),
            other => other.clone(),
        }
    }
}
