//! A minimal JSON tree, parser and printer.
//!
//! The build environment has no crates.io access (so no `serde_json`), and
//! the service's needs are small: parse one query object per input line and
//! emit one response object per output line. This module implements exactly
//! that — a [`Json`] value tree, a strict recursive-descent parser and a
//! printer with proper string escaping. Object key order is preserved.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values up to 2^53 survive
    /// exactly, which covers every count this service emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integral number.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Parses one JSON document from `text` (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.pos)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            pos: start,
            message: format!("invalid number '{text}'"),
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&c) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this service's
                            // inputs; map lone surrogates to the replacement
                            // character instead of erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_query_object() {
        let text = r#"{"id":"q1","kind":"full_cover","edge_list":"0 1\n1 2"}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.get("id").and_then(Json::as_str), Some("q1"));
        assert_eq!(
            value.get("edge_list").and_then(Json::as_str),
            Some("0 1\n1 2")
        );
        let printed = value.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), value);
    }

    #[test]
    fn numbers_arrays_and_literals() {
        let value = Json::parse(r#"{"xs":[1,2.5,-3],"ok":true,"none":null}"#).unwrap();
        match value.get("xs") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0].as_u64(), Some(1));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(value.get("none"), Some(&Json::Null));
    }

    #[test]
    fn escapes_survive_round_trip() {
        let original = Json::str("line1\nline2\t\"quoted\" \\ \u{1}");
        let reparsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn unicode_strings_round_trip() {
        let value = Json::parse(r#""héllo ✓""#).unwrap();
        assert_eq!(value.as_str(), Some("héllo ✓"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn error_carries_position() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.pos, 4);
    }
}
