//! The wire protocol of the `pcservice` daemon.
//!
//! A versioned, length-framed JSON protocol over any byte stream. Every
//! frame is
//!
//! ```text
//! pcp1 <len>\n
//! <len bytes of JSON>\n
//! ```
//!
//! — a header line carrying the protocol magic (`pcp` + version) and the
//! payload length in decimal bytes, then exactly that many bytes of JSON,
//! then one newline. The trailing newline keeps a captured session readable
//! as JSON lines (`socat` transcripts paste straight into docs) while the
//! explicit length lets payloads contain newlines and lets the reader
//! allocate exactly once.
//!
//! The version tag selects the payload dialect per frame: `pcp1` frames
//! carry the per-verb messages below, `pcp2` frames carry the
//! [`crate::v2`] request envelope (one `{op, target, params, trace_id}`
//! shape for every operation, sessions included). Replies use the tag of
//! the request they answer, so one connection can interleave both; the
//! `hello` reply advertises `supported_versions` so clients can probe.
//!
//! ## Messages
//!
//! Client → server frames are objects tagged by a `"type"` field —
//! [`Request::Hello`], [`Request::Solve`], [`Request::Batch`],
//! [`Request::Stats`], [`Request::Metrics`], [`Request::Snapshot`],
//! [`Request::Shutdown`] — and every one is answered by exactly one reply
//! frame (`hello`, `response`, `batch`, `stats`, `metrics`, `snapshot_ok`,
//! `shutdown_ok` or `error`). Query and response payloads reuse the
//! JSON-lines shapes of [`QueryRequest::from_json`] and
//! [`QueryResponse::to_json`], so a daemon session speaks the same dialect
//! as `pathcover-cli batch` files. Requests may carry a `trace_id` field;
//! the server echoes it (or a synthesized ID) as a top-level `trace_id` on
//! every reply — see [`crate::telemetry`].
//!
//! ## Error taxonomy
//!
//! [`ProtoError`] separates *recoverable* defects — a frame whose payload is
//! malformed JSON or a bad message, where the length framing kept the stream
//! in sync — from *fatal* ones (I/O failure, bad magic, oversized frame)
//! after which the byte stream cannot be trusted. Servers answer recoverable
//! errors with an `error` reply and keep the connection; fatal errors close
//! the connection — never the server (see [`crate::daemon`]).

use crate::cache::ShardStats;
use crate::engine::QueryEngine;
use crate::json::{Json, JsonError};
use crate::model::{GraphSpec, QueryRequest, QueryResponse};
use crate::snapshot::{SaveReport, SNAPSHOT_VERSION};
use crate::telemetry::{RequestCtx, Stage};
use crate::v2;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Protocol version spoken by this build's legacy (per-verb) dialect.
pub const PROTO_VERSION: u64 = 1;

/// Every frame dialect this build serves: `pcp1` (the legacy per-verb
/// messages below) and `pcp2` (the [`crate::v2`] request envelope). The
/// dialect is chosen per *frame*, not per connection, and the server
/// replies with the tag the request used.
pub const SUPPORTED_VERSIONS: [u64; 2] = [PROTO_VERSION, crate::v2::API_VERSION];

/// Hard cap on a message payload's size (16 MiB). A peer announcing more is
/// fatally rejected before any allocation happens.
///
/// This is the single home of the cap: the framed protocol enforces it on
/// both `read_frame` and `write_frame`, and [`crate::http`] reuses it as the
/// `Content-Length` bound, so every transport refuses the same payloads.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Maximum header line length (`pcp<version> <len>\n` is ~30 bytes; anything
/// longer is garbage, not a header).
const MAX_HEADER_BYTES: usize = 64;

/// Server identification string sent in the `hello` reply.
pub const SERVER_NAME: &str = concat!("pcservice/", env!("CARGO_PKG_VERSION"));

/// Everything that can go wrong at the protocol layer.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed (includes read timeouts).
    Io(io::Error),
    /// The peer closed the stream at a frame boundary (clean EOF).
    Closed,
    /// The frame header was not `pcp<version> <len>`.
    BadHeader(String),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u64),
    /// The announced payload length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The payload was not valid JSON (stream still in sync).
    BadJson(JsonError),
    /// The payload was valid JSON but not a valid message (stream still in
    /// sync).
    BadMessage(String),
    /// The server answered with an `error` reply (client side only).
    Remote {
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
        /// Server-suggested backoff before retrying, in milliseconds
        /// (carried by `overloaded` rejections).
        retry_after_ms: Option<u64>,
    },
}

impl ProtoError {
    /// `true` when the byte stream is still framed correctly and the
    /// connection can keep serving after an `error` reply.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            ProtoError::BadJson(_) | ProtoError::BadMessage(_) | ProtoError::Remote { .. }
        )
    }

    /// Stable machine-readable tag used in `error` replies.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Io(_) => "io",
            ProtoError::Closed => "closed",
            ProtoError::BadHeader(_) => "bad_header",
            ProtoError::UnsupportedVersion(_) => "unsupported_version",
            ProtoError::FrameTooLarge { .. } => "frame_too_large",
            ProtoError::BadJson(_) => "bad_json",
            ProtoError::BadMessage(_) => "bad_message",
            ProtoError::Remote { .. } => "remote",
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::BadHeader(line) => write!(f, "bad frame header: {line:?}"),
            ProtoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTO_VERSION})"
                )
            }
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte cap")
            }
            ProtoError::BadJson(e) => write!(f, "frame payload is not JSON: {e}"),
            ProtoError::BadMessage(msg) => write!(f, "bad message: {msg}"),
            ProtoError::Remote { code, message, .. } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one frame (header, payload, terminator) and flushes.
///
/// The [`MAX_FRAME_LEN`] cap is enforced on this side too: a payload the
/// peer would fatally reject is refused with [`io::ErrorKind::InvalidData`]
/// *before* any bytes hit the stream, so the connection stays in sync and
/// the caller can substitute a small `error` reply instead.
pub fn write_frame<W: Write>(w: &mut W, payload: &Json) -> io::Result<()> {
    write_frame_v(w, payload, PROTO_VERSION)
}

/// [`write_frame`] with an explicit dialect tag: `version` 1 writes a
/// `pcp1` frame (the legacy per-verb messages), 2 a `pcp2` frame (the
/// [`crate::v2`] envelope). The dialect is chosen per frame, not per
/// connection — the server replies in whichever dialect each request used.
pub fn write_frame_v<W: Write>(w: &mut W, payload: &Json, version: u64) -> io::Result<()> {
    let body = payload.to_string();
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN} byte cap (split the batch)",
                body.len()
            ),
        ));
    }
    write!(w, "pcp{version} {}\n{body}\n", body.len())?;
    w.flush()
}

/// Reads one `pcp1` frame, returning its decoded JSON payload.
///
/// Framing defects (bad magic, oversized length, truncated payload) are
/// fatal; a payload that is not valid JSON is recoverable because exactly
/// `len + 1` bytes were consumed either way. A well-formed frame in a
/// different supported dialect (`pcp2`) is refused with
/// [`ProtoError::UnsupportedVersion`] — version-1 clients use this reader;
/// the version-agnostic server loop uses [`read_frame_raw`].
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<Json, ProtoError> {
    let (version, body) = read_frame_raw(r)?;
    if version != PROTO_VERSION {
        return Err(ProtoError::UnsupportedVersion(version));
    }
    Json::parse(&body).map_err(ProtoError::BadJson)
}

/// Reads one frame in any supported dialect (`pcp1` / `pcp2`), returning
/// the header's version tag and the raw payload text, not yet parsed.
///
/// The caller picks the dialect off the version: the daemon decodes
/// version-1 payloads as [`Request`] messages and version-2 payloads as
/// [`crate::v2`] envelopes, and replies with the same tag. Versions outside
/// the supported set are refused *before* the payload is read — their
/// framing cannot be trusted, so the connection must die in sync.
pub fn read_frame_raw<R: BufRead>(r: &mut R) -> Result<(u64, String), ProtoError> {
    let mut header: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = r.read(&mut byte)?;
        if n == 0 {
            if header.is_empty() {
                return Err(ProtoError::Closed);
            }
            return Err(ProtoError::BadHeader(
                String::from_utf8_lossy(&header).into_owned(),
            ));
        }
        if byte[0] == b'\n' {
            break;
        }
        header.push(byte[0]);
        if header.len() > MAX_HEADER_BYTES {
            return Err(ProtoError::BadHeader(
                String::from_utf8_lossy(&header).into_owned(),
            ));
        }
    }
    let text = std::str::from_utf8(&header)
        .map_err(|_| ProtoError::BadHeader(String::from_utf8_lossy(&header).into_owned()))?;
    let bad = || ProtoError::BadHeader(text.to_string());
    let rest = text.strip_prefix("pcp").ok_or_else(bad)?;
    let (version, len) = rest.split_once(' ').ok_or_else(bad)?;
    let version: u64 = version.parse().map_err(|_| bad())?;
    if !SUPPORTED_VERSIONS.contains(&version) {
        return Err(ProtoError::UnsupportedVersion(version));
    }
    let len: usize = len.parse().map_err(|_| bad())?;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut body = vec![0u8; len + 1];
    r.read_exact(&mut body)?;
    if body.pop() != Some(b'\n') {
        return Err(ProtoError::BadHeader(
            "frame missing terminator".to_string(),
        ));
    }
    let text = String::from_utf8(body)
        .map_err(|_| ProtoError::BadMessage("frame payload is not UTF-8".to_string()))?;
    Ok((version, text))
}

/// A decoded client → server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Version handshake; must be the first frame of a connection.
    Hello {
        /// The client's protocol version.
        proto: u64,
    },
    /// Execute one query.
    Solve(QueryRequest),
    /// Execute a batch of queries, optionally against a shared graph.
    Batch {
        /// Graph shared by requests using [`GraphSpec::Shared`].
        shared: Option<GraphSpec>,
        /// The queries, answered in order.
        requests: Vec<QueryRequest>,
    },
    /// Snapshot the engine's cache counters.
    Stats,
    /// Fetch the full metrics report (see [`crate::telemetry`]).
    Metrics,
    /// Persist the warm cache to the configured snapshot file right now
    /// (see [`crate::snapshot`]).
    Snapshot,
    /// List the flight recorder's retained trace summaries
    /// (`{"type":"trace"}`) or fetch one trace in full
    /// (`{"type":"trace","id":"pc-..."}`, optionally with
    /// `"format":"chrome"` — see [`crate::trace`]).
    Trace {
        /// The trace to fetch; `None` lists summaries.
        id: Option<String>,
        /// Emit Chrome trace-event JSON for a single-trace fetch.
        chrome: bool,
    },
    /// Stop the daemon (it finishes this reply, then exits its accept loop).
    Shutdown,
}

impl Request {
    /// Decodes a request frame payload.
    pub fn from_json(value: &Json) -> Result<Request, ProtoError> {
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::BadMessage("missing string field 'type'".to_string()))?;
        match kind {
            "hello" => {
                let proto = value.get("proto").and_then(Json::as_u64).ok_or_else(|| {
                    ProtoError::BadMessage("hello needs a numeric 'proto' field".to_string())
                })?;
                Ok(Request::Hello { proto })
            }
            "solve" => {
                let request = QueryRequest::from_json(value)
                    .map_err(|e| ProtoError::BadMessage(e.to_string()))?;
                Ok(Request::Solve(request))
            }
            "batch" => {
                let (shared, requests) = batch_fields(value)?;
                Ok(Request::Batch { shared, requests })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "snapshot" => Ok(Request::Snapshot),
            "trace" => {
                let id = match value.get("id") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(s.clone()),
                    Some(other) => {
                        return Err(ProtoError::BadMessage(format!(
                            "'id' must be a string, got {other}"
                        )))
                    }
                };
                let chrome = match value.get("format") {
                    None | Some(Json::Null) => false,
                    Some(Json::Str(s)) if s == "json" => false,
                    Some(Json::Str(s)) if s == "chrome" => true,
                    Some(other) => {
                        return Err(ProtoError::BadMessage(format!(
                            "unknown trace format {other} (use \"json\" or \"chrome\")"
                        )))
                    }
                };
                Ok(Request::Trace { id, chrome })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::BadMessage(format!(
                "unknown message type '{other}'"
            ))),
        }
    }

    /// Encodes the request as a frame payload (client side).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { proto } => Json::obj(vec![
                ("type", Json::str("hello")),
                ("proto", Json::num(*proto)),
            ]),
            Request::Solve(request) => {
                let mut fields = vec![("type".to_string(), Json::str("solve"))];
                if let Json::Obj(query_fields) = request.to_json() {
                    fields.extend(query_fields);
                }
                Json::Obj(fields)
            }
            Request::Batch { shared, requests } => {
                let mut fields = vec![("type", Json::str("batch"))];
                let shared_json = shared.as_ref().and_then(GraphSpec::to_json);
                if let Some(spec) = shared_json {
                    fields.push(("shared", spec));
                }
                fields.push((
                    "requests",
                    Json::Arr(requests.iter().map(QueryRequest::to_json).collect()),
                ));
                Json::obj(fields)
            }
            Request::Stats => Json::obj(vec![("type", Json::str("stats"))]),
            Request::Metrics => Json::obj(vec![("type", Json::str("metrics"))]),
            Request::Snapshot => Json::obj(vec![("type", Json::str("snapshot"))]),
            Request::Trace { id, chrome } => {
                let mut fields = vec![("type", Json::str("trace"))];
                if let Some(id) = id {
                    fields.push(("id", Json::str(id.clone())));
                }
                if *chrome {
                    fields.push(("format", Json::str("chrome")));
                }
                Json::obj(fields)
            }
            Request::Shutdown => Json::obj(vec![("type", Json::str("shutdown"))]),
        }
    }
}

/// Decodes the batch fields (`shared` + `requests`) of a message object.
///
/// Shared by the framed [`Request::from_json`] decoder and the
/// [`crate::http`] `POST /v1/batch` route, so both transports accept exactly
/// the same batch payloads.
pub fn batch_fields(value: &Json) -> Result<(Option<GraphSpec>, Vec<QueryRequest>), ProtoError> {
    let shared = match value.get("shared") {
        None | Some(Json::Null) => None,
        Some(spec) => {
            Some(GraphSpec::from_json(spec).map_err(|e| ProtoError::BadMessage(e.to_string()))?)
        }
    };
    let Some(Json::Arr(items)) = value.get("requests") else {
        return Err(ProtoError::BadMessage(
            "batch needs an array field 'requests'".to_string(),
        ));
    };
    let requests = items
        .iter()
        .map(|item| {
            QueryRequest::from_json(item).map_err(|e| ProtoError::BadMessage(e.to_string()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((shared, requests))
}

/// After dispatching a request: keep serving this connection or begin
/// daemon shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep reading frames.
    Continue,
    /// The peer asked the daemon to stop.
    Shutdown,
}

/// Serves one decoded request against an engine, producing the reply frame
/// payload and the follow-up action, under a synthesized [`RequestCtx`].
/// This is the whole server semantics; [`crate::daemon`] only adds the
/// transport around it. Transports that carry a client trace ID use
/// [`dispatch_ctx`] instead.
pub fn dispatch(engine: &QueryEngine, request: &Request) -> (Json, Action) {
    dispatch_ctx(engine, request, &RequestCtx::generate())
}

/// [`dispatch`] under a caller-supplied [`RequestCtx`]: the context's trace
/// ID is threaded through the engine (so response metadata and slow-log
/// lines carry it) and echoed as a top-level `trace_id` field of every
/// reply, `error` replies included.
///
/// Since the v2 envelope landed, this is a *shim*: every verb (except the
/// `hello` handshake, which has no v2 counterpart) is mapped onto a
/// [`crate::v2::Op`], executed by [`crate::v2::execute_op`] — the one
/// dispatcher both API versions share — and the identical result payload
/// is re-wrapped in the legacy per-verb reply shape.
pub fn dispatch_ctx(engine: &QueryEngine, request: &Request, ctx: &RequestCtx) -> (Json, Action) {
    let op = match request {
        Request::Hello { proto } => {
            let reply = if *proto == PROTO_VERSION {
                hello_reply()
            } else {
                error_reply(
                    "unsupported_version",
                    &format!("server speaks pcp{PROTO_VERSION}, client sent pcp{proto}"),
                )
            };
            return (attach_trace(reply, ctx), Action::Continue);
        }
        Request::Solve(query) => v2::Op::Solve {
            target: v2::Target::Inline(query.graph.clone()),
            kind: query.kind,
            id: query.id.clone(),
        },
        Request::Batch { shared, requests } => v2::Op::Batch {
            shared: shared.clone(),
            requests: requests.clone(),
        },
        Request::Stats => v2::Op::Stats,
        Request::Metrics => v2::Op::Metrics,
        Request::Snapshot => v2::Op::Snapshot,
        Request::Trace { id: None, .. } => v2::Op::TraceList,
        Request::Trace {
            id: Some(id),
            chrome,
        } => v2::Op::TraceGet {
            id: id.clone(),
            chrome: *chrome,
        },
        Request::Shutdown => v2::Op::Shutdown,
    };
    let (result, action) = v2::execute_op(engine, &op, ctx);
    (attach_trace(legacy_reply(&op, result), ctx), action)
}

/// Re-wraps a shared-dispatcher outcome in the legacy v1 reply shape for
/// its verb. The payloads inside are the [`crate::v2::execute_op`] results,
/// untouched — byte-identity between the API versions is by construction.
fn legacy_reply(op: &v2::Op, result: Result<Json, v2::OpError>) -> Json {
    let result = match result {
        // v1 has no envelope to flag `ok` on: operation-level failures are
        // `error` replies (engine-level failures ride inside the response
        // objects, exactly as in v2 results). The reply is built from the
        // shared wire body, so structured fields — `retry_after_ms` on
        // `overloaded` rejections — reach v1 clients too.
        Err(error) => {
            let mut fields = vec![("type".to_string(), Json::str("error"))];
            if let Json::Obj(body) = error.wire_body() {
                fields.extend(body);
            }
            return Json::Obj(fields);
        }
        Ok(result) => result,
    };
    match op {
        v2::Op::Solve { .. } => {
            Json::obj(vec![("type", Json::str("response")), ("response", result)])
        }
        v2::Op::Batch { .. } => Json::obj(vec![
            ("type", Json::str("batch")),
            (
                "responses",
                result
                    .get("responses")
                    .cloned()
                    .unwrap_or(Json::Arr(vec![])),
            ),
        ]),
        v2::Op::Stats => Json::obj(vec![("type", Json::str("stats")), ("stats", result)]),
        v2::Op::Metrics => Json::obj(vec![("type", Json::str("metrics")), ("metrics", result)]),
        v2::Op::Snapshot => {
            let mut fields = vec![("type".to_string(), Json::str("snapshot_ok"))];
            if let Json::Obj(result_fields) = result {
                fields.extend(result_fields);
            }
            Json::Obj(fields)
        }
        v2::Op::Shutdown => shutdown_reply(),
        v2::Op::TraceList => Json::obj(vec![("type", Json::str("trace")), ("traces", result)]),
        v2::Op::TraceGet { .. } => Json::obj(vec![("type", Json::str("trace")), ("trace", result)]),
        // Session verbs exist only in the v2 envelope; no v1 request maps
        // onto them.
        _ => error_reply("bad_message", "operation has no v1 reply shape"),
    }
}

/// Appends the context's trace ID as a top-level `trace_id` reply field.
pub fn attach_trace(reply: Json, ctx: &RequestCtx) -> Json {
    match reply {
        Json::Obj(mut fields) => {
            if !fields.iter().any(|(key, _)| key == "trace_id") {
                fields.push(("trace_id".to_string(), Json::str(ctx.trace_id.clone())));
            }
            Json::Obj(fields)
        }
        other => other,
    }
}

/// The client-supplied `trace_id` field of a raw request frame, if any —
/// read by the transport *before* [`Request::from_json`] so even a frame
/// that fails to decode gets its error reply correlated.
pub fn request_trace(value: &Json) -> Option<&str> {
    value.get("trace_id").and_then(Json::as_str)
}

/// The client-supplied `deadline_ms` field of a raw request frame, if any
/// — read by the transport at the same edge as [`request_trace`] and
/// turned into the [`RequestCtx`] deadline before dispatch.
pub fn request_deadline_ms(value: &Json) -> Option<u64> {
    value.get("deadline_ms").and_then(Json::as_u64)
}

/// The fields of a completed save, shared verbatim between the v1
/// `snapshot_ok` reply and the v2 `snapshot` result.
pub fn snapshot_payload(engine: &QueryEngine, report: &SaveReport) -> Json {
    let path = engine
        .snapshot_meta()
        .map(|meta| Json::str(meta.path.display().to_string()))
        .unwrap_or(Json::Null);
    Json::obj(vec![
        ("entries", Json::num(report.entries as u64)),
        ("links", Json::num(report.links as u64)),
        ("bytes", Json::num(report.bytes)),
        ("path", path),
    ])
}

/// The `snapshot_ok` reply describing a completed save.
pub fn snapshot_reply(engine: &QueryEngine, report: &SaveReport) -> Json {
    let mut fields = vec![("type".to_string(), Json::str("snapshot_ok"))];
    if let Json::Obj(payload) = snapshot_payload(engine, report) {
        fields.extend(payload);
    }
    Json::Obj(fields)
}

/// The server's `hello` reply. `proto` names the legacy dialect (what a
/// version-1 client expects to match on); `supported_versions` advertises
/// every frame dialect this build serves, so newer clients can discover
/// `pcp2` without a second handshake.
pub fn hello_reply() -> Json {
    Json::obj(vec![
        ("type", Json::str("hello")),
        ("proto", Json::num(PROTO_VERSION)),
        (
            "supported_versions",
            Json::Arr(SUPPORTED_VERSIONS.iter().map(|&v| Json::num(v)).collect()),
        ),
        ("server", Json::str(SERVER_NAME)),
    ])
}

/// Wraps one query response in a `response` reply.
pub fn response_reply(response: &QueryResponse) -> Json {
    Json::obj(vec![
        ("type", Json::str("response")),
        ("response", response.to_json()),
    ])
}

/// Wraps a batch's responses in a `batch` reply.
pub fn batch_reply(responses: &[QueryResponse]) -> Json {
    Json::obj(vec![
        ("type", Json::str("batch")),
        (
            "responses",
            Json::Arr(responses.iter().map(QueryResponse::to_json).collect()),
        ),
    ])
}

fn shard_stats_json(shard: &ShardStats) -> Json {
    Json::obj(vec![
        ("hits", Json::num(shard.hits)),
        ("misses", Json::num(shard.misses)),
        ("evictions", Json::num(shard.evictions)),
        ("entries", Json::num(shard.entries as u64)),
        ("hit_rate", Json::Num(shard.hit_rate())),
    ])
}

/// Build/version identification of this daemon, carried in the stats
/// payload so fleet operators can tell heterogeneous daemons apart: the
/// crate version, the framed protocol dialect (`pcp<N>`) and the snapshot
/// file format (`pcsnap<N>`).
pub fn version_payload() -> Json {
    Json::obj(vec![
        ("crate", Json::str(env!("CARGO_PKG_VERSION"))),
        ("server", Json::str(SERVER_NAME)),
        ("proto", Json::str(format!("pcp{PROTO_VERSION}"))),
        (
            "snapshot_format",
            Json::str(format!("pcsnap{SNAPSHOT_VERSION}")),
        ),
    ])
}

/// The bare stats object carried inside a `stats` reply: the aggregated and
/// per-shard cache counters, the daemon's uptime, build/version info,
/// per-stage latency summaries (count/mean/p50/p90/p99, see
/// [`crate::telemetry`]), and — when persistence is attached — the snapshot
/// metadata (`path`, `loaded_entries`, `last_checkpoint_unix`);
/// `"snapshot"` is `null` otherwise.
pub fn stats_payload(engine: &QueryEngine) -> Json {
    let stats = engine.cache_stats();
    let shards = engine.cache_shard_stats();
    let report = engine.metrics_report();
    let snapshot = match engine.snapshot_meta() {
        Some(meta) => Json::obj(vec![
            ("path", Json::str(meta.path.display().to_string())),
            ("loaded_entries", Json::num(meta.loaded_entries as u64)),
            (
                "last_checkpoint_unix",
                meta.last_checkpoint_unix.map_or(Json::Null, Json::num),
            ),
            (
                "consecutive_failures",
                Json::num(report.snapshot_consecutive_failures),
            ),
        ]),
        None => Json::Null,
    };
    let stages = Json::Obj(
        Stage::ALL
            .iter()
            .enumerate()
            .map(|(i, stage)| (stage.as_str().to_string(), report.stages[i].summary_json()))
            .collect(),
    );
    Json::obj(vec![
        ("hits", Json::num(stats.hits)),
        ("misses", Json::num(stats.misses)),
        ("evictions", Json::num(stats.evictions)),
        ("entries", Json::num(stats.entries as u64)),
        ("shards", Json::num(stats.shards as u64)),
        ("hit_rate", Json::Num(stats.hit_rate())),
        (
            "per_shard",
            Json::Arr(shards.iter().map(shard_stats_json).collect()),
        ),
        ("uptime_secs", Json::num(engine.uptime_secs())),
        ("requests_total", Json::num(report.total_requests())),
        ("stages", stages),
        ("sessions", sessions_payload(engine)),
        ("version", version_payload()),
        ("snapshot", snapshot),
    ])
}

/// The live-session block of the stats payload: the handle count plus one
/// object per resident handle (`handle` / `vertices` / `edges` /
/// `mutations` / `idle_secs`). Collecting it sweeps the idle-TTL reaper
/// first, so stats never report already-expired handles. Sessions are
/// daemon-resident state, deliberately *excluded* from `pcsnap1` cache
/// snapshots — this block is where operators see them instead.
pub fn sessions_payload(engine: &QueryEngine) -> Json {
    let infos = engine.session_stats();
    Json::obj(vec![
        ("live", Json::num(infos.len() as u64)),
        (
            "handles",
            Json::Arr(
                infos
                    .iter()
                    .map(|info| {
                        Json::obj(vec![
                            ("handle", Json::str(info.handle.clone())),
                            ("vertices", Json::num(info.vertices as u64)),
                            ("edges", Json::num(info.edges as u64)),
                            ("mutations", Json::num(info.mutations)),
                            ("idle_secs", Json::num(info.idle_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Wraps the engine's stats in a `stats` reply.
pub fn stats_reply(engine: &QueryEngine) -> Json {
    Json::obj(vec![
        ("type", Json::str("stats")),
        ("stats", stats_payload(engine)),
    ])
}

/// The full metrics report payload (the
/// [`crate::telemetry::MetricsReport::to_json`] shape plus version info),
/// shared verbatim between the v1 `metrics` reply and the v2 result.
pub fn metrics_payload(engine: &QueryEngine) -> Json {
    let mut metrics = engine.metrics_report().to_json();
    if let Json::Obj(fields) = &mut metrics {
        fields.push(("version".to_string(), version_payload()));
    }
    metrics
}

/// Wraps the engine's full metrics report in a `metrics` reply.
pub fn metrics_reply(engine: &QueryEngine) -> Json {
    Json::obj(vec![
        ("type", Json::str("metrics")),
        ("metrics", metrics_payload(engine)),
    ])
}

/// The `shutdown_ok` reply.
pub fn shutdown_reply() -> Json {
    Json::obj(vec![("type", Json::str("shutdown_ok"))])
}

/// An `error` reply. Used both for [`ProtoError`]s and for version refusals.
pub fn error_reply(code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("type", Json::str("error")),
        ("code", Json::str(code)),
        ("message", Json::str(message)),
    ])
}

/// Checks a reply frame's `"type"` tag, converting `error` replies into
/// [`ProtoError::Remote`].
fn expect_reply(value: Json, expected: &str) -> Result<Json, ProtoError> {
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::BadMessage("reply missing 'type'".to_string()))?;
    if kind == "error" {
        return Err(ProtoError::Remote {
            code: value
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            message: value
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            retry_after_ms: value.get("retry_after_ms").and_then(Json::as_u64),
        });
    }
    if kind != expected {
        return Err(ProtoError::BadMessage(format!(
            "expected '{expected}' reply, got '{kind}'"
        )));
    }
    Ok(value)
}

/// Bounded retry with jittered exponential backoff for *idempotent*
/// client calls that were shed with an `overloaded` rejection.
///
/// Shared by [`Client`] (framed) and [`crate::http::Client`]; both retry
/// only reads and pure computations (`solve` / `batch` / `stats` /
/// `metrics`), never `shutdown` or `snapshot`. The server's
/// `retry_after_ms` hint, when present, is honored as the *minimum* wait
/// for that attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// First-attempt backoff in milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based): the larger of the
    /// exponential backoff and the server's `retry_after_ms` hint, capped,
    /// plus up to 50% deterministic-free jitter so a shed fleet does not
    /// retry in lockstep.
    pub fn backoff(&self, attempt: u32, server_hint_ms: Option<u64>) -> std::time::Duration {
        let expo = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(16).min(63));
        let base = expo
            .max(server_hint_ms.unwrap_or(0))
            .min(self.max_backoff_ms)
            .max(1);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        let mut z = nanos ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        let jitter = z % (base / 2 + 1);
        std::time::Duration::from_millis(base + jitter)
    }
}

/// Whether a failed call should be retried under a policy: only
/// `overloaded` rejections qualify — the server explicitly promised the
/// request is safe to repeat.
fn retryable_overload(error: &ProtoError) -> Option<Option<u64>> {
    match error {
        ProtoError::Remote {
            code,
            retry_after_ms,
            ..
        } if code == "overloaded" => Some(*retry_after_ms),
        _ => None,
    }
}

/// A protocol client over any bidirectional byte stream.
///
/// The transport is generic: [`crate::daemon`] instantiates it over a unix
/// socket, tests can run it over an in-memory pipe. Construction performs
/// the `hello` handshake. With a [`RetryPolicy`] attached
/// ([`Client::with_retry`]), idempotent calls shed with `overloaded` are
/// retried with backoff; the default is no retrying.
pub struct Client<S: io::Read + io::Write> {
    stream: io::BufReader<S>,
    retry: Option<RetryPolicy>,
}

impl<S: io::Read + io::Write> Client<S> {
    /// Performs the `hello` handshake and returns the connected client.
    pub fn connect(stream: S) -> Result<Self, ProtoError> {
        let mut client = Client {
            stream: io::BufReader::new(stream),
            retry: None,
        };
        let hello = Request::Hello {
            proto: PROTO_VERSION,
        };
        let reply = client.round_trip(&hello.to_json(), "hello")?;
        let proto = reply.get("proto").and_then(Json::as_u64).unwrap_or(0);
        if proto != PROTO_VERSION {
            return Err(ProtoError::UnsupportedVersion(proto));
        }
        Ok(client)
    }

    /// Attaches a retry policy for idempotent calls (`solve` / `batch` /
    /// `stats` / `metrics`) shed with `overloaded`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    fn round_trip(&mut self, payload: &Json, expected: &str) -> Result<Json, ProtoError> {
        if let Err(error) = write_frame(self.stream.get_mut(), payload) {
            // The daemon may have rejected this connection at accept time
            // (connection cap) and closed it after writing one typed
            // rejection frame. Our write raced that close — prefer the
            // buffered rejection (a recoverable `overloaded` the caller
            // can retry against) over a bare broken pipe.
            return match read_frame(&mut self.stream) {
                Ok(reply) => expect_reply(reply, expected),
                Err(_) => Err(error.into()),
            };
        }
        let reply = read_frame(&mut self.stream)?;
        expect_reply(reply, expected)
    }

    /// [`Client::round_trip`] with overload retries, used only by the
    /// idempotent calls. The connection stays live across attempts — an
    /// `overloaded` reply is recoverable by construction.
    fn round_trip_retry(&mut self, payload: &Json, expected: &str) -> Result<Json, ProtoError> {
        let mut attempt = 0u32;
        loop {
            let result = self.round_trip(payload, expected);
            let delay = match (&self.retry, &result) {
                (Some(policy), Err(error)) if attempt < policy.max_retries => {
                    retryable_overload(error).map(|hint| policy.backoff(attempt, hint))
                }
                _ => None,
            };
            match delay {
                Some(delay) => {
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                None => return result,
            }
        }
    }

    /// Executes one query remotely; returns the response object (the
    /// [`QueryResponse::to_json`] shape).
    pub fn solve(&mut self, request: &QueryRequest) -> Result<Json, ProtoError> {
        let reply =
            self.round_trip_retry(&Request::Solve(request.clone()).to_json(), "response")?;
        reply
            .get("response")
            .cloned()
            .ok_or_else(|| ProtoError::BadMessage("response reply missing payload".to_string()))
    }

    /// Executes a batch remotely; returns the response objects in request
    /// order.
    pub fn batch(
        &mut self,
        shared: Option<GraphSpec>,
        requests: Vec<QueryRequest>,
    ) -> Result<Vec<Json>, ProtoError> {
        let reply =
            self.round_trip_retry(&Request::Batch { shared, requests }.to_json(), "batch")?;
        match reply.get("responses") {
            Some(Json::Arr(items)) => Ok(items.clone()),
            _ => Err(ProtoError::BadMessage(
                "batch reply missing 'responses' array".to_string(),
            )),
        }
    }

    /// Fetches the daemon's cache statistics object.
    pub fn stats(&mut self) -> Result<Json, ProtoError> {
        let reply = self.round_trip_retry(&Request::Stats.to_json(), "stats")?;
        reply
            .get("stats")
            .cloned()
            .ok_or_else(|| ProtoError::BadMessage("stats reply missing payload".to_string()))
    }

    /// Fetches the daemon's full metrics report object (the
    /// [`crate::telemetry::MetricsReport::to_json`] shape).
    pub fn metrics(&mut self) -> Result<Json, ProtoError> {
        let reply = self.round_trip_retry(&Request::Metrics.to_json(), "metrics")?;
        reply
            .get("metrics")
            .cloned()
            .ok_or_else(|| ProtoError::BadMessage("metrics reply missing payload".to_string()))
    }

    /// Fetches trace summaries from the daemon's flight recorder
    /// (`id: None`), or one retained trace in full; `chrome` selects
    /// Chrome trace-event JSON for a single-trace fetch (see
    /// [`crate::trace`]).
    pub fn trace(&mut self, id: Option<&str>, chrome: bool) -> Result<Json, ProtoError> {
        let request = Request::Trace {
            id: id.map(str::to_string),
            chrome,
        };
        let reply = self.round_trip_retry(&request.to_json(), "trace")?;
        let field = if id.is_some() { "trace" } else { "traces" };
        reply
            .get(field)
            .cloned()
            .ok_or_else(|| ProtoError::BadMessage(format!("trace reply missing '{field}' payload")))
    }

    /// Asks the daemon to persist its warm cache right now; returns the
    /// `snapshot_ok` object (`entries` / `links` / `bytes` / `path`). A
    /// daemon serving without `--snapshot` answers with a
    /// `snapshot_unconfigured` error reply ([`ProtoError::Remote`]).
    pub fn save_snapshot(&mut self) -> Result<Json, ProtoError> {
        self.round_trip(&Request::Snapshot.to_json(), "snapshot_ok")
    }

    /// Asks the daemon to shut down; returns after the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        self.round_trip(&Request::Shutdown.to_json(), "shutdown_ok")?;
        Ok(())
    }

    /// Sends one [`crate::v2`] envelope as a `pcp2` frame and returns the
    /// v2 reply envelope verbatim (`ok` / `result` / `error` are the
    /// caller's to inspect — v2 failures are in-band, not [`ProtoError`]s).
    ///
    /// The dialect is per frame, so v1 calls and v2 envelopes can be mixed
    /// freely on one connected client.
    pub fn query_v2(&mut self, envelope: &Json) -> Result<Json, ProtoError> {
        write_frame_v(self.stream.get_mut(), envelope, v2::API_VERSION)?;
        let (version, body) = read_frame_raw(&mut self.stream)?;
        if version != v2::API_VERSION {
            return Err(ProtoError::BadMessage(format!(
                "expected a pcp{} reply, got pcp{version}",
                v2::API_VERSION
            )));
        }
        Json::parse(&body).map_err(ProtoError::BadJson)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QueryKind;

    fn frame_bytes(payload: &Json) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_round_trip() {
        let payload = Json::obj(vec![
            ("type", Json::str("solve")),
            ("cotree", Json::str("(j a b)\nwith a newline")),
        ]);
        let bytes = frame_bytes(&payload);
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(
            text.starts_with("pcp1 "),
            "header carries the version: {text}"
        );
        let mut reader = io::BufReader::new(&bytes[..]);
        assert_eq!(read_frame(&mut reader).unwrap(), payload);
        // The stream is exactly consumed: the next read is a clean EOF.
        assert!(matches!(read_frame(&mut reader), Err(ProtoError::Closed)));
    }

    #[test]
    fn back_to_back_frames_stay_in_sync() {
        let a = Json::obj(vec![("type", Json::str("stats"))]);
        let b = Json::obj(vec![("type", Json::str("shutdown"))]);
        let mut bytes = frame_bytes(&a);
        bytes.extend(frame_bytes(&b));
        let mut reader = io::BufReader::new(&bytes[..]);
        assert_eq!(read_frame(&mut reader).unwrap(), a);
        assert_eq!(read_frame(&mut reader).unwrap(), b);
    }

    #[test]
    fn bad_json_payload_is_recoverable_and_keeps_sync() {
        let mut bytes = b"pcp1 9\nnot json!\n".to_vec();
        bytes.extend(frame_bytes(&Json::obj(vec![("type", Json::str("stats"))])));
        let mut reader = io::BufReader::new(&bytes[..]);
        let err = read_frame(&mut reader).unwrap_err();
        assert!(matches!(err, ProtoError::BadJson(_)));
        assert!(err.is_recoverable());
        // The malformed payload was fully consumed; the next frame parses.
        assert!(read_frame(&mut reader).is_ok());
    }

    #[test]
    fn framing_defects_are_fatal() {
        for (bytes, name) in [
            (b"GET / HTTP/1.1\r\n".to_vec(), "http"),
            (b"pcp1 notanumber\n".to_vec(), "bad length"),
            (b"xyz1 5\nabcde\n".to_vec(), "bad magic"),
            (vec![b'p'; 200], "unterminated header"),
        ] {
            let mut reader = io::BufReader::new(&bytes[..]);
            let err = read_frame(&mut reader).unwrap_err();
            assert!(!err.is_recoverable(), "{name} must be fatal, got {err:?}");
        }
        // A `pcp2` frame is a supported dialect: the raw reader accepts it
        // (and stays in sync), but the v1-only reader still refuses it.
        let mut reader = io::BufReader::new(&b"pcp2 2\n{}\n"[..]);
        assert_eq!(read_frame_raw(&mut reader).unwrap(), (2, "{}".to_string()));
        let mut reader = io::BufReader::new(&b"pcp2 2\n{}\n"[..]);
        assert!(matches!(
            read_frame(&mut reader),
            Err(ProtoError::UnsupportedVersion(2))
        ));
        // Unknown versions stay fatal, rejected before the payload.
        let mut reader = io::BufReader::new(&b"pcp3 2\n{}\n"[..]);
        assert!(matches!(
            read_frame_raw(&mut reader),
            Err(ProtoError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn oversized_writes_are_refused_before_any_bytes() {
        let payload = Json::str("x".repeat(MAX_FRAME_LEN + 1));
        let mut out = Vec::new();
        let err = write_frame(&mut out, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(out.is_empty(), "stream must stay untouched and in sync");
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let header = format!("pcp1 {}\n", MAX_FRAME_LEN + 1);
        let mut reader = io::BufReader::new(header.as_bytes());
        assert!(matches!(
            read_frame(&mut reader),
            Err(ProtoError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let solve = Request::Solve(
            QueryRequest::new(
                QueryKind::MinCoverSize,
                GraphSpec::CotreeTerm("(j a b)".to_string()),
            )
            .with_id("q1"),
        );
        match Request::from_json(&solve.to_json()).unwrap() {
            Request::Solve(req) => {
                assert_eq!(req.id.as_deref(), Some("q1"));
                assert_eq!(req.kind, QueryKind::MinCoverSize);
                assert!(matches!(req.graph, GraphSpec::CotreeTerm(ref t) if t == "(j a b)"));
            }
            other => panic!("wrong request: {other:?}"),
        }

        let batch = Request::Batch {
            shared: Some(GraphSpec::EdgeList("0 1\n".to_string())),
            requests: vec![QueryRequest::new(QueryKind::Recognize, GraphSpec::Shared)],
        };
        match Request::from_json(&batch.to_json()).unwrap() {
            Request::Batch { shared, requests } => {
                assert!(matches!(shared, Some(GraphSpec::EdgeList(_))));
                assert_eq!(requests.len(), 1);
                assert!(matches!(requests[0].graph, GraphSpec::Shared));
            }
            other => panic!("wrong request: {other:?}"),
        }

        for simple in [
            Request::Stats,
            Request::Metrics,
            Request::Snapshot,
            Request::Shutdown,
            Request::Hello { proto: 1 },
        ] {
            assert!(Request::from_json(&simple.to_json()).is_ok());
        }
    }

    #[test]
    fn malformed_messages_are_typed() {
        for bad in [
            r#"{"no_type":1}"#,
            r#"{"type":"launch_missiles"}"#,
            r#"{"type":"hello"}"#,
            r#"{"type":"batch"}"#,
            r#"{"type":"solve"}"#, // missing 'kind'
        ] {
            let value = Json::parse(bad).unwrap();
            let err = Request::from_json(&value).unwrap_err();
            assert!(matches!(err, ProtoError::BadMessage(_)), "for {bad}");
            assert!(err.is_recoverable());
        }
        // A solve without a graph field targets the (absent) shared graph:
        // structurally valid, fails later in the engine, not the protocol.
        let value = Json::parse(r#"{"type":"solve","kind":"recognize"}"#).unwrap();
        assert!(Request::from_json(&value).is_ok());
    }

    #[test]
    fn dispatch_answers_each_request_kind() {
        let engine = QueryEngine::default();
        let (reply, action) = dispatch(
            &engine,
            &Request::Hello {
                proto: PROTO_VERSION,
            },
        );
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("hello"));
        assert_eq!(action, Action::Continue);

        let (reply, _) = dispatch(&engine, &Request::Hello { proto: 99 });
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));

        let query = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b c)".to_string()),
        );
        let (reply, _) = dispatch(&engine, &Request::Solve(query.clone()));
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("response"));
        assert_eq!(
            reply
                .get("response")
                .and_then(|r| r.get("answer"))
                .and_then(|a| a.get("size"))
                .and_then(Json::as_u64),
            Some(1)
        );

        let (reply, _) = dispatch(
            &engine,
            &Request::Batch {
                shared: None,
                requests: vec![query.clone(), query],
            },
        );
        let Some(Json::Arr(responses)) = reply.get("responses") else {
            panic!("batch reply missing responses: {reply}");
        };
        assert_eq!(responses.len(), 2);

        let (reply, _) = dispatch(&engine, &Request::Stats);
        let stats = reply.get("stats").expect("stats payload");
        assert!(stats.get("hits").and_then(Json::as_u64).is_some());
        assert_eq!(
            stats.get("per_shard").map(|s| matches!(s, Json::Arr(_))),
            Some(true)
        );
        assert!(stats.get("uptime_secs").and_then(Json::as_u64).is_some());
        assert_eq!(
            stats.get("snapshot"),
            Some(&Json::Null),
            "no snapshot attached: metadata must be null, not absent"
        );

        let (reply, action) = dispatch(&engine, &Request::Metrics);
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("metrics"));
        assert_eq!(action, Action::Continue);
        let metrics = reply.get("metrics").expect("metrics payload");
        // The solve + batch above were booked: 3 requests, all ok.
        assert_eq!(
            metrics.get("requests_total").and_then(Json::as_u64),
            Some(3)
        );
        assert!(metrics.get("stages").is_some());
        assert_eq!(
            metrics
                .get("version")
                .and_then(|v| v.get("proto"))
                .and_then(Json::as_str),
            Some("pcp1")
        );

        // Save-now without persistence configured: a typed, recoverable
        // error reply, not a dead connection.
        let (reply, action) = dispatch(&engine, &Request::Snapshot);
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(
            reply.get("code").and_then(Json::as_str),
            Some("snapshot_unconfigured")
        );
        assert_eq!(action, Action::Continue);

        let (reply, action) = dispatch(&engine, &Request::Shutdown);
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("shutdown_ok")
        );
        assert_eq!(action, Action::Shutdown);
    }

    #[test]
    fn every_reply_echoes_the_trace_id() {
        let engine = QueryEngine::default();
        let ctx = RequestCtx::with_trace("trace-42");
        let query = QueryRequest::new(
            QueryKind::MinCoverSize,
            GraphSpec::CotreeTerm("(j a b)".to_string()),
        );
        for request in [
            Request::Hello {
                proto: PROTO_VERSION,
            },
            Request::Hello { proto: 99 }, // error reply
            Request::Solve(query.clone()),
            Request::Batch {
                shared: None,
                requests: vec![query],
            },
            Request::Stats,
            Request::Metrics,
            Request::Snapshot, // snapshot_unconfigured error reply
        ] {
            let (reply, _) = dispatch_ctx(&engine, &request, &ctx);
            assert_eq!(
                reply.get("trace_id").and_then(Json::as_str),
                Some("trace-42"),
                "reply missing trace: {reply}"
            );
        }
        // The engine threads the same trace into response metadata.
        let (reply, _) = dispatch_ctx(
            &engine,
            &Request::Solve(QueryRequest::new(
                QueryKind::Recognize,
                GraphSpec::CotreeTerm("(u a b)".to_string()),
            )),
            &ctx,
        );
        assert_eq!(
            reply
                .get("response")
                .and_then(|r| r.get("meta"))
                .and_then(|m| m.get("trace_id"))
                .and_then(Json::as_str),
            Some("trace-42")
        );
        // And a client-supplied frame field is where transports read it from.
        let frame = Json::parse(r#"{"type":"stats","trace_id":"abc"}"#).unwrap();
        assert_eq!(request_trace(&frame), Some("abc"));
        assert_eq!(
            request_trace(&Json::parse(r#"{"type":"stats"}"#).unwrap()),
            None
        );
    }

    /// A fake duplex stream: reads drain a pre-baked reply script, writes
    /// count the frames the client sent (each frame ends in exactly two
    /// newlines: the header's and the body terminator).
    struct Scripted {
        replies: io::Cursor<Vec<u8>>,
        newlines_written: usize,
    }

    impl Scripted {
        fn new(replies: &[Json]) -> Self {
            let mut bytes = Vec::new();
            for reply in replies {
                write_frame(&mut bytes, reply).unwrap();
            }
            Scripted {
                replies: io::Cursor::new(bytes),
                newlines_written: 0,
            }
        }

        fn frames_written(&self) -> usize {
            self.newlines_written / 2
        }
    }

    impl io::Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.replies.read(buf)
        }
    }

    impl io::Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.newlines_written += buf.iter().filter(|&&b| b == b'\n').count();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn overloaded_reply() -> Json {
        Json::obj(vec![
            ("type", Json::str("error")),
            ("code", Json::str("overloaded")),
            ("message", Json::str("server overloaded; retry after 1 ms")),
            ("retry_after_ms", Json::num(1)),
        ])
    }

    #[test]
    fn client_retries_overload_until_the_reply_lands() {
        let hello = Json::obj(vec![
            ("type", Json::str("hello")),
            ("proto", Json::num(PROTO_VERSION)),
        ]);
        let stats = Json::obj(vec![
            ("type", Json::str("stats")),
            ("stats", Json::obj(vec![("entries", Json::num(0))])),
        ]);
        // Script: handshake, then two sheds, then the real answer.
        let script = Scripted::new(&[
            hello.clone(),
            overloaded_reply(),
            overloaded_reply(),
            stats.clone(),
        ]);
        let mut client = Client::connect(script)
            .expect("handshake")
            .with_retry(RetryPolicy {
                max_retries: 3,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
            });
        let payload = client.stats().expect("retries absorb the sheds");
        assert_eq!(payload.get("entries").and_then(Json::as_u64), Some(0));
        // hello + three stats frames (initial attempt + two retries).
        assert_eq!(client.stream.get_ref().frames_written(), 4);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_overload_error() {
        let hello = Json::obj(vec![
            ("type", Json::str("hello")),
            ("proto", Json::num(PROTO_VERSION)),
        ]);
        let script = Scripted::new(&[hello, overloaded_reply(), overloaded_reply()]);
        let mut client = Client::connect(script)
            .expect("handshake")
            .with_retry(RetryPolicy {
                max_retries: 1,
                base_backoff_ms: 1,
                max_backoff_ms: 1,
            });
        let error = client.stats().expect_err("budget of one retry");
        match error {
            ProtoError::Remote {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, "overloaded");
                assert_eq!(retry_after_ms, Some(1));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn non_overload_errors_are_never_retried() {
        let hello = Json::obj(vec![
            ("type", Json::str("hello")),
            ("proto", Json::num(PROTO_VERSION)),
        ]);
        let bad = Json::obj(vec![
            ("type", Json::str("error")),
            ("code", Json::str("bad_request")),
            ("message", Json::str("nope")),
        ]);
        let script = Scripted::new(&[hello, bad]);
        let mut client = Client::connect(script)
            .expect("handshake")
            .with_retry(RetryPolicy::default());
        assert!(client.stats().is_err());
        // hello + exactly one stats frame: no retry was attempted.
        assert_eq!(client.stream.get_ref().frames_written(), 2);
    }

    #[test]
    fn backoff_honors_the_server_hint_and_the_cap() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 100,
        };
        // Hint above the exponential floor wins; jitter adds at most 50%.
        let waited = policy.backoff(0, Some(80)).as_millis() as u64;
        assert!((80..=120).contains(&waited), "hint floor: {waited}");
        // Deep attempts cap at max_backoff_ms (+ jitter).
        let waited = policy.backoff(10, None).as_millis() as u64;
        assert!((100..=150).contains(&waited), "cap: {waited}");
    }
}
