//! Lock-free pipeline telemetry: counters, latency histograms, trace IDs.
//!
//! Every request the engine answers crosses five pipeline stages — ingest,
//! recognize, cache lookup, solve, verify — and this module records each
//! one without locks: plain relaxed atomics behind a [`Telemetry`] registry
//! owned by the [`QueryEngine`](crate::engine::QueryEngine). Latencies land
//! in fixed-bucket log-scale [`Histogram`]s (powers of two, microseconds)
//! whose counts are exact even under concurrent recording, so p50/p90/p99
//! extraction never needs a mutex on the hot path.
//!
//! The registry also tracks whole-request latency split by query kind and
//! by outcome (`ok` / `not_a_cograph` / `invalid` / `internal`), daemon
//! connection gauges per transport, and snapshot checkpoint health. A
//! [`MetricsReport`] snapshots everything at once and renders either
//! structured JSON (the `metrics` proto frame, `pathcover-cli metrics`) or
//! Prometheus text exposition format (`GET /v1/metrics`).
//!
//! Requests are correlated across log lines and transports by a trace ID
//! carried in a [`RequestCtx`]: accepted from an `X-Request-Id` header or a
//! `trace_id` proto field at the transport edge, synthesized otherwise, and
//! echoed in every response and error body.

use crate::cache::{CacheStats, ShardStats};
use crate::json::Json;
use crate::model::QueryKind;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Number of buckets in every latency histogram: bucket `i < 31` holds
/// values `v` with `2^(i-1) < v <= 2^i` microseconds (bucket 0 holds
/// `v <= 1`), bucket 31 is the overflow (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Minimum gap between structured slow-request/error log lines; anything
/// arriving faster is dropped so a pathological workload cannot turn the
/// log into its own denial of service.
const LOG_RATE_LIMIT_NANOS: u64 = 100_000_000; // 100ms

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A fixed-bucket log-scale latency histogram over `u64` microsecond
/// values, recordable concurrently from any number of threads.
///
/// Recording is three relaxed `fetch_add`s (bucket, count, sum) — no CAS
/// loops, no locks — so total counts are exact under contention even
/// though a snapshot taken mid-record may transiently see `count` ahead
/// of the bucket sums by a few in-flight increments.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for `v <= 1`, otherwise the smallest
    /// `i` with `v <= 2^i`, saturating at the overflow bucket.
    fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            ((64 - (value - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of a bucket (`u64::MAX` for the overflow
    /// bucket).
    fn bucket_upper(index: usize) -> u64 {
        if index >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], with quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (microseconds).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound of
    /// the bucket containing the rank-`ceil(q·count)` smallest
    /// observation; `0` when empty, `u64::MAX` when the rank falls in the
    /// overflow bucket. Because bucketisation preserves order, this is
    /// exactly the bucket bound the true quantile value lives under.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Histogram::bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Mean observed value in microseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Structured summary (`count` / `sum_us` / `mean_us` / `p50_us` /
    /// `p90_us` / `p99_us`) used by the stats payload and the CLI.
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::num(self.count)),
            ("sum_us", Json::num(self.sum)),
            ("mean_us", Json::num(self.mean().round() as u64)),
            ("p50_us", Json::num(self.quantile(0.50))),
            ("p90_us", Json::num(self.quantile(0.90))),
            ("p99_us", Json::num(self.quantile(0.99))),
        ])
    }
}

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

/// The five pipeline stages whose latency is recorded per segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Parsing edge-list / DIMACS / cotree-term input into a graph.
    Ingest,
    /// Cograph recognition (cotree construction or P4 rejection).
    Recognize,
    /// Cache fingerprint/canonical-key lookups and inserts.
    CacheLookup,
    /// The actual path-cover / Hamiltonian computation.
    Solve,
    /// Independent re-verification of the returned cover.
    Verify,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Ingest,
        Stage::Recognize,
        Stage::CacheLookup,
        Stage::Solve,
        Stage::Verify,
    ];

    /// Stable label used in metric names and JSON keys.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Recognize => "recognize",
            Stage::CacheLookup => "cache_lookup",
            Stage::Solve => "solve",
            Stage::Verify => "verify",
        }
    }

    /// Position of this stage in [`Stage::ALL`] (and in
    /// [`MetricsReport::stages`]).
    pub fn index(self) -> usize {
        match self {
            Stage::Ingest => 0,
            Stage::Recognize => 1,
            Stage::CacheLookup => 2,
            Stage::Solve => 3,
            Stage::Verify => 4,
        }
    }
}

/// Request outcome classes used to split whole-request latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The job produced a verified answer.
    Ok,
    /// The input graph was rejected with an induced-P4 certificate.
    NotACograph,
    /// The request itself was defective (ingest error, empty graph,
    /// missing shared graph, bad request).
    Invalid,
    /// The engine failed the job (verification mismatch, job panic).
    Internal,
}

impl Outcome {
    /// All outcomes, in severity order.
    pub const ALL: [Outcome; 4] = [
        Outcome::Ok,
        Outcome::NotACograph,
        Outcome::Invalid,
        Outcome::Internal,
    ];

    /// Stable label used in metric names and JSON keys.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::NotACograph => "not_a_cograph",
            Outcome::Invalid => "invalid",
            Outcome::Internal => "internal",
        }
    }

    /// Classifies a wire error code (the `code` field of error bodies).
    pub fn from_error_code(code: &str) -> Outcome {
        match code {
            "not_a_cograph" => Outcome::NotACograph,
            "cover_verification_failed" | "job_panicked" => Outcome::Internal,
            _ => Outcome::Invalid,
        }
    }

    fn index(self) -> usize {
        match self {
            Outcome::Ok => 0,
            Outcome::NotACograph => 1,
            Outcome::Invalid => 2,
            Outcome::Internal => 3,
        }
    }
}

/// The two wire transports, used to label connection gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The length-framed `pcp1`/`pcp2` protocol (unix socket).
    Framed,
    /// The HTTP/1.1 front-end (TCP).
    Http,
}

impl Transport {
    /// Both transports.
    pub const ALL: [Transport; 2] = [Transport::Framed, Transport::Http];

    /// Stable label used in metric names and JSON keys.
    pub fn as_str(self) -> &'static str {
        match self {
            Transport::Framed => "framed",
            Transport::Http => "http",
        }
    }

    fn index(self) -> usize {
        match self {
            Transport::Framed => 0,
            Transport::Http => 1,
        }
    }
}

fn kind_index(kind: QueryKind) -> usize {
    match kind {
        QueryKind::MinCoverSize => 0,
        QueryKind::FullCover => 1,
        QueryKind::HamiltonianPath => 2,
        QueryKind::HamiltonianCycle => 3,
        QueryKind::Recognize => 4,
    }
}

// ---------------------------------------------------------------------------
// Request context / trace IDs
// ---------------------------------------------------------------------------

/// Per-request context carried from the transport edge through the engine:
/// the trace ID echoed in every response and log line, plus an optional
/// deadline after which the engine stops working on the request.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// The trace ID — client-supplied (`X-Request-Id` header, `trace_id`
    /// proto field) or synthesized at the edge.
    pub trace_id: String,
    /// Absolute deadline for the request, set at the transport edge from a
    /// `deadline_ms` envelope field or `X-Deadline-Ms` header; `None` means
    /// the request may run to completion.
    pub deadline: Option<Instant>,
    /// The request's span sink when the flight recorder is on
    /// (see [`crate::trace`]); `None` means spans are not being collected
    /// and instrumented sites skip their clock reads entirely.
    pub collector: Option<std::sync::Arc<crate::trace::SpanCollector>>,
}

// Identity of a request context is its trace ID and deadline; the span
// collector is per-request plumbing, not identity (and `Arc<SpanCollector>`
// has no meaningful equality).
impl PartialEq for RequestCtx {
    fn eq(&self, other: &Self) -> bool {
        self.trace_id == other.trace_id && self.deadline == other.deadline
    }
}

impl Eq for RequestCtx {}

impl RequestCtx {
    /// Wraps a client-supplied trace ID.
    pub fn with_trace(trace_id: impl Into<String>) -> Self {
        RequestCtx {
            trace_id: trace_id.into(),
            deadline: None,
            collector: None,
        }
    }

    /// Attaches (or clears) a span collector; used by the engine at request
    /// entry when the flight recorder is enabled.
    pub fn with_collector(
        mut self,
        collector: Option<std::sync::Arc<crate::trace::SpanCollector>>,
    ) -> Self {
        self.collector = collector;
        self
    }

    /// The trace clock's current offset in microseconds, when spans are
    /// being collected. Instrumented sites pair this with
    /// [`RequestCtx::finish_span`].
    pub fn span_start(&self) -> Option<u64> {
        self.collector
            .as_ref()
            .map(|collector| collector.elapsed_us())
    }

    /// Closes a span opened at `start` (a [`RequestCtx::span_start`]
    /// reading). A `None` start — tracing off — is a no-op.
    pub fn finish_span(&self, name: &str, start: Option<u64>) {
        if let (Some(collector), Some(start_us)) = (self.collector.as_ref(), start) {
            collector.finish(name, start_us);
        }
    }

    /// Attaches a relative deadline (`None` clears it): the request must
    /// finish within `deadline_ms` milliseconds of now or the engine cuts
    /// it short with a `deadline_exceeded` error.
    pub fn with_deadline_ms(mut self, deadline_ms: Option<u64>) -> Self {
        self.deadline = deadline_ms.map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        self
    }

    /// Whether the request's deadline (if any) has already passed. Checked
    /// cooperatively at pipeline stage boundaries and in the session lock
    /// wait — a cheap monotonic-clock read, never a lock.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Synthesizes a fresh trace ID (`pc-<16 hex digits>`): wall-clock
    /// nanoseconds mixed with the process ID and a global sequence
    /// counter, so IDs are unique within a process and collide across
    /// daemons only if clocks and PIDs both coincide.
    pub fn generate() -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mixed =
            nanos ^ (u64::from(std::process::id()) << 32) ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        RequestCtx {
            trace_id: format!("pc-{mixed:016x}"),
            deadline: None,
            collector: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline clock
// ---------------------------------------------------------------------------

/// A per-request stage stopwatch: each [`mark`](PipelineClock::mark)
/// attributes the time since the previous mark to one stage. With
/// telemetry disabled it is a true no-op — no `Instant::now()` calls at
/// all — which is what the `service_telemetry_overhead` bench compares
/// against.
#[derive(Debug)]
pub struct PipelineClock<'t> {
    inner: Option<(&'t Telemetry, Instant)>,
    collector: Option<Arc<crate::trace::SpanCollector>>,
}

impl PipelineClock<'_> {
    /// Records the segment since the previous mark under `stage` and
    /// restarts the stopwatch. When a span collector rides the clock the
    /// same segment is also recorded as a `stage:*` span in the request
    /// trace.
    pub fn mark(&mut self, stage: Stage) {
        if let Some((telemetry, last)) = &mut self.inner {
            let now = Instant::now();
            let micros = (now - *last).as_micros() as u64;
            telemetry.record_stage(stage, micros);
            if let Some(collector) = &self.collector {
                let end = collector.elapsed_us();
                collector.push(crate::trace::Span::new(
                    format!("stage:{}", stage.as_str()),
                    end.saturating_sub(micros),
                    micros,
                ));
            }
            *last = now;
        }
    }

    /// The span collector riding this clock, if the request is traced and
    /// the clock is live. Pipeline internals use it to attach extra child
    /// spans (cache lookups, pool rounds) without threading the request
    /// context everywhere.
    pub fn collector(&self) -> Option<&Arc<crate::trace::SpanCollector>> {
        self.collector.as_ref()
    }

    /// Restarts the stopwatch without attributing the elapsed segment to
    /// any stage (used to skip untimed bookkeeping between stages).
    pub fn reset(&mut self) {
        if let Some((_, last)) = &mut self.inner {
            *last = Instant::now();
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Per-transport connection counters.
#[derive(Debug, Default)]
struct TransportCounters {
    accepted: AtomicU64,
    active: AtomicI64,
    idle_timeouts: AtomicU64,
    oversize_rejects: AtomicU64,
    accept_errors: AtomicU64,
}

/// The metrics registry: one per [`QueryEngine`](crate::engine::QueryEngine),
/// shared by the engine pipeline, the daemon accept loops and both
/// transports. All recording is relaxed-atomic; reading takes a
/// point-in-time [`MetricsReport`] via the engine.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    slow_log_micros: Option<u64>,
    stages: [Histogram; 5],
    request_kind: [Histogram; 5],
    request_outcome: [Histogram; 4],
    requests: [[AtomicU64; 4]; 5],
    transports: [TransportCounters; 2],
    snapshot_save: Histogram,
    snapshot_failures: AtomicU64,
    snapshot_consecutive_failures: AtomicU64,
    snapshot_last_unix: AtomicU64,
    rejected_overload: AtomicU64,
    deadline_exceeded: AtomicU64,
    inflight: AtomicI64,
    pool_solves: AtomicU64,
    pool_workers: AtomicU64,
    pool_rounds: AtomicU64,
    pool_steals: AtomicU64,
    pool_barrier_waits: AtomicU64,
    pool_barrier_wait_p50_us: AtomicU64,
    pool_barrier_wait_p99_us: AtomicU64,
    sessions_created: AtomicU64,
    sessions_dropped: AtomicU64,
    sessions_expired: AtomicU64,
    sessions_live: AtomicI64,
    session_mutations: AtomicU64,
    session_recognize_incremental: AtomicU64,
    session_recognize_rebuild: AtomicU64,
    last_log_nanos: AtomicU64,
}

impl Telemetry {
    /// Creates a registry. With `enabled` false every recording call is a
    /// no-op (the "no-op recorder" the overhead bench compares against);
    /// `slow_log_micros` is the `serve --slow-ms` threshold.
    pub fn new(enabled: bool, slow_log_micros: Option<u64>) -> Self {
        Telemetry {
            enabled,
            slow_log_micros,
            stages: std::array::from_fn(|_| Histogram::new()),
            request_kind: std::array::from_fn(|_| Histogram::new()),
            request_outcome: std::array::from_fn(|_| Histogram::new()),
            requests: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            transports: std::array::from_fn(|_| TransportCounters::default()),
            snapshot_save: Histogram::new(),
            snapshot_failures: AtomicU64::new(0),
            snapshot_consecutive_failures: AtomicU64::new(0),
            snapshot_last_unix: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            inflight: AtomicI64::new(0),
            pool_solves: AtomicU64::new(0),
            pool_workers: AtomicU64::new(0),
            pool_rounds: AtomicU64::new(0),
            pool_steals: AtomicU64::new(0),
            pool_barrier_waits: AtomicU64::new(0),
            pool_barrier_wait_p50_us: AtomicU64::new(0),
            pool_barrier_wait_p99_us: AtomicU64::new(0),
            sessions_created: AtomicU64::new(0),
            sessions_dropped: AtomicU64::new(0),
            sessions_expired: AtomicU64::new(0),
            sessions_live: AtomicI64::new(0),
            session_mutations: AtomicU64::new(0),
            session_recognize_incremental: AtomicU64::new(0),
            session_recognize_rebuild: AtomicU64::new(0),
            last_log_nanos: AtomicU64::new(0),
        }
    }

    /// Whether recording is live (false for the no-op recorder).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a per-request stage stopwatch (no-op when disabled).
    pub fn pipeline_clock(&self) -> PipelineClock<'_> {
        PipelineClock {
            inner: self.enabled.then(|| (self, Instant::now())),
            collector: None,
        }
    }

    /// Like [`pipeline_clock`](Self::pipeline_clock), but also carrying
    /// the request's span collector (if any) so each stage mark doubles
    /// as a trace span. Stage spans require telemetry to be live — the
    /// disabled registry keeps the clock a true no-op.
    pub fn pipeline_clock_ctx(&self, ctx: &RequestCtx) -> PipelineClock<'_> {
        PipelineClock {
            inner: self.enabled.then(|| (self, Instant::now())),
            collector: if self.enabled {
                ctx.collector.clone()
            } else {
                None
            },
        }
    }

    /// Records one stage segment in microseconds.
    pub fn record_stage(&self, stage: Stage, micros: u64) {
        if self.enabled {
            self.stages[stage.index()].record(micros);
        }
    }

    /// Records one completed request: bumps the kind × outcome counter
    /// and both whole-request latency histograms.
    pub fn record_request(&self, kind: QueryKind, outcome: Outcome, total_micros: u64) {
        if self.enabled {
            self.requests[kind_index(kind)][outcome.index()].fetch_add(1, Ordering::Relaxed);
            self.request_kind[kind_index(kind)].record(total_micros);
            self.request_outcome[outcome.index()].record(total_micros);
        }
    }

    /// Whether a completed request deserves a structured log line: over
    /// the `--slow-ms` threshold, or an internal failure — and inside the
    /// rate limit (at most one line per 100ms process-wide).
    pub fn should_log(&self, outcome: Outcome, total_micros: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let eligible = matches!(outcome, Outcome::Internal)
            || self
                .slow_log_micros
                .is_some_and(|threshold| total_micros >= threshold);
        eligible && self.log_rate_ok()
    }

    fn log_rate_ok(&self) -> bool {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let last = self.last_log_nanos.load(Ordering::Relaxed);
        now.saturating_sub(last) >= LOG_RATE_LIMIT_NANOS
            && self
                .last_log_nanos
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }

    /// Records an accepted connection (bumps the accepted counter and the
    /// active gauge).
    pub fn conn_opened(&self, transport: Transport) {
        if self.enabled {
            let t = &self.transports[transport.index()];
            t.accepted.fetch_add(1, Ordering::Relaxed);
            t.active.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a closed connection (decrements the active gauge).
    pub fn conn_closed(&self, transport: Transport) {
        if self.enabled {
            self.transports[transport.index()]
                .active
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Records a connection closed by idle timeout.
    pub fn idle_timeout(&self, transport: Transport) {
        if self.enabled {
            self.transports[transport.index()]
                .idle_timeouts
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a frame/body rejected for exceeding the shared size cap.
    pub fn oversize_reject(&self, transport: Transport) {
        if self.enabled {
            self.transports[transport.index()]
                .oversize_rejects
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an `accept()` failure on a listener (EMFILE and friends);
    /// drives the accept loop's bounded backoff telemetry.
    pub fn accept_error(&self, transport: Transport) {
        if self.enabled {
            self.transports[transport.index()]
                .accept_errors
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a request shed under load (admission cap, per-connection
    /// budget, connection cap, or an injected overload fault).
    pub fn overload_rejected(&self) {
        if self.enabled {
            self.rejected_overload.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a request cut short because its deadline expired.
    pub fn deadline_exceeded(&self) {
        if self.enabled {
            self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bumps the in-flight work gauge (a request was admitted).
    pub fn inflight_started(&self) {
        if self.enabled {
            self.inflight.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Decrements the in-flight work gauge (an admitted request finished).
    pub fn inflight_finished(&self) {
        if self.enabled {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Records a successful snapshot checkpoint: its duration and the
    /// wall-clock second it completed. Resets the consecutive-failure
    /// streak.
    pub fn checkpoint_saved(&self, micros: u64) {
        if self.enabled {
            self.snapshot_save.record(micros);
            let unix = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            self.snapshot_last_unix.store(unix, Ordering::Relaxed);
            self.snapshot_consecutive_failures
                .store(0, Ordering::Relaxed);
        }
    }

    /// Records a failed snapshot checkpoint and extends the
    /// consecutive-failure streak that drives the checkpointer's backoff.
    pub fn checkpoint_failed(&self) {
        if self.enabled {
            self.snapshot_failures.fetch_add(1, Ordering::Relaxed);
            self.snapshot_consecutive_failures
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the work-stealing pool's cumulative statistics after a
    /// parallel solve: the counters are lifetime totals of the engine's
    /// pool, so the latest snapshot replaces the previous one, and a
    /// separate counter tracks how many solves went through the pool.
    pub fn record_pool(&self, stats: &PoolReport) {
        if self.enabled {
            self.pool_solves.fetch_add(1, Ordering::Relaxed);
            self.pool_workers.store(stats.workers, Ordering::Relaxed);
            self.pool_rounds.store(stats.rounds, Ordering::Relaxed);
            self.pool_steals.store(stats.steals, Ordering::Relaxed);
            self.pool_barrier_waits
                .store(stats.barrier_waits, Ordering::Relaxed);
            self.pool_barrier_wait_p50_us
                .store(stats.barrier_wait_p50_us, Ordering::Relaxed);
            self.pool_barrier_wait_p99_us
                .store(stats.barrier_wait_p99_us, Ordering::Relaxed);
        }
    }

    /// Publishes the pool's resolved worker count without booking a solve.
    /// Called once at engine startup so the pool gauges exist (at zero
    /// rounds/steals but the true worker count) before the first parallel
    /// solve, instead of leaving dashboard gaps until the pool engages.
    pub fn set_pool_workers(&self, workers: u64) {
        if self.enabled {
            self.pool_workers.store(workers, Ordering::Relaxed);
        }
    }

    /// Records a session handle being created.
    pub fn session_created(&self) {
        if self.enabled {
            self.sessions_created.fetch_add(1, Ordering::Relaxed);
            self.sessions_live.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a session handle dropped by an explicit `session_drop`.
    pub fn session_dropped(&self) {
        if self.enabled {
            self.sessions_dropped.fetch_add(1, Ordering::Relaxed);
            self.sessions_live.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Records a session handle reclaimed by the idle-TTL sweep.
    pub fn session_expired(&self) {
        if self.enabled {
            self.sessions_expired.fetch_add(1, Ordering::Relaxed);
            self.sessions_live.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Records a successful session mutation (vertex or edge change).
    pub fn session_mutation(&self) {
        if self.enabled {
            self.session_mutations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records how a session recognition ran: absorbed by the incremental
    /// insertion pass, or fallen back to rebuild-from-scratch.
    pub fn session_recognized(&self, incremental: bool) {
        if self.enabled {
            if incremental {
                self.session_recognize_incremental
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                self.session_recognize_rebuild
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshots the registry (cache/uptime/version context is supplied
    /// by the engine, which owns those).
    pub fn report(
        &self,
        cache: CacheStats,
        shards: Vec<ShardStats>,
        uptime_secs: u64,
    ) -> MetricsReport {
        MetricsReport {
            requests: std::array::from_fn(|k| {
                std::array::from_fn(|o| self.requests[k][o].load(Ordering::Relaxed))
            }),
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            request_kind: std::array::from_fn(|i| self.request_kind[i].snapshot()),
            request_outcome: std::array::from_fn(|i| self.request_outcome[i].snapshot()),
            transports: std::array::from_fn(|i| TransportReport {
                accepted: self.transports[i].accepted.load(Ordering::Relaxed),
                active: self.transports[i].active.load(Ordering::Relaxed),
                idle_timeouts: self.transports[i].idle_timeouts.load(Ordering::Relaxed),
                oversize_rejects: self.transports[i].oversize_rejects.load(Ordering::Relaxed),
                accept_errors: self.transports[i].accept_errors.load(Ordering::Relaxed),
            }),
            snapshot_save: self.snapshot_save.snapshot(),
            snapshot_failures: self.snapshot_failures.load(Ordering::Relaxed),
            snapshot_consecutive_failures: self
                .snapshot_consecutive_failures
                .load(Ordering::Relaxed),
            snapshot_last_unix: self.snapshot_last_unix.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            pool_solves: self.pool_solves.load(Ordering::Relaxed),
            pool: PoolReport {
                workers: self.pool_workers.load(Ordering::Relaxed),
                rounds: self.pool_rounds.load(Ordering::Relaxed),
                steals: self.pool_steals.load(Ordering::Relaxed),
                barrier_waits: self.pool_barrier_waits.load(Ordering::Relaxed),
                barrier_wait_p50_us: self.pool_barrier_wait_p50_us.load(Ordering::Relaxed),
                barrier_wait_p99_us: self.pool_barrier_wait_p99_us.load(Ordering::Relaxed),
            },
            sessions: SessionReport {
                live: self.sessions_live.load(Ordering::Relaxed),
                created: self.sessions_created.load(Ordering::Relaxed),
                dropped: self.sessions_dropped.load(Ordering::Relaxed),
                expired: self.sessions_expired.load(Ordering::Relaxed),
                mutations: self.session_mutations.load(Ordering::Relaxed),
                recognize_incremental: self.session_recognize_incremental.load(Ordering::Relaxed),
                recognize_rebuild: self.session_recognize_rebuild.load(Ordering::Relaxed),
            },
            cache,
            shards,
            uptime_secs,
        }
    }
}

// ---------------------------------------------------------------------------
// Report + rendering
// ---------------------------------------------------------------------------

/// Point-in-time per-transport connection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportReport {
    /// Total connections accepted since start.
    pub accepted: u64,
    /// Currently open connections (gauge).
    pub active: i64,
    /// Connections closed by idle timeout.
    pub idle_timeouts: u64,
    /// Frames/bodies rejected for exceeding the shared size cap.
    pub oversize_rejects: u64,
    /// `accept()` failures on this transport's listener.
    pub accept_errors: u64,
}

/// Point-in-time counters of the engine's work-stealing pool (the
/// real-cores PRAM backend). All values are lifetime totals of the pool as
/// of the most recent parallel solve; zeros when no solve has used the
/// pool yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolReport {
    /// Worker threads of the pool (gauge).
    pub workers: u64,
    /// PRAM rounds executed (counter).
    pub rounds: u64,
    /// Chunks stolen from another worker's queue (counter).
    pub steals: u64,
    /// Barrier wait observations (counter).
    pub barrier_waits: u64,
    /// Median barrier wait in microseconds (gauge).
    pub barrier_wait_p50_us: u64,
    /// 99th-percentile barrier wait in microseconds (gauge).
    pub barrier_wait_p99_us: u64,
}

/// Point-in-time counters of the daemon-resident session registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// Live daemon-resident handles (gauge).
    pub live: i64,
    /// Sessions created since start.
    pub created: u64,
    /// Sessions released by an explicit `session_drop`.
    pub dropped: u64,
    /// Sessions reclaimed by the idle-TTL sweep.
    pub expired: u64,
    /// Successful mutations (vertex insertions, edge adds/removals).
    pub mutations: u64,
    /// Recognitions absorbed by the incremental insertion pass.
    pub recognize_incremental: u64,
    /// Recognitions that fell back to rebuild-from-scratch.
    pub recognize_rebuild: u64,
}

/// A point-in-time copy of every metric the daemon exposes, renderable as
/// structured JSON (`metrics` proto frame) or Prometheus text
/// (`GET /v1/metrics`).
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Request counts, kind × outcome (registry order of [`QueryKind::ALL`] /
    /// [`Outcome::ALL`]).
    pub requests: [[u64; 4]; 5],
    /// Per-stage latency histograms, [`Stage::ALL`] order.
    pub stages: [HistogramSnapshot; 5],
    /// Whole-request latency by query kind, [`QueryKind::ALL`] order.
    pub request_kind: [HistogramSnapshot; 5],
    /// Whole-request latency by outcome, [`Outcome::ALL`] order.
    pub request_outcome: [HistogramSnapshot; 4],
    /// Connection counters, [`Transport::ALL`] order.
    pub transports: [TransportReport; 2],
    /// Snapshot checkpoint durations.
    pub snapshot_save: HistogramSnapshot,
    /// Failed snapshot checkpoints.
    pub snapshot_failures: u64,
    /// Checkpoint failures since the last success (0 = healthy).
    pub snapshot_consecutive_failures: u64,
    /// Unix second of the last successful checkpoint (0 = never).
    pub snapshot_last_unix: u64,
    /// Requests shed under load (admission cap, budgets, injected faults).
    pub rejected_overload: u64,
    /// Requests cut short because their deadline expired.
    pub deadline_exceeded: u64,
    /// Requests currently admitted and executing (gauge).
    pub inflight: i64,
    /// Solves that ran on the work-stealing pool.
    pub pool_solves: u64,
    /// Work-stealing pool counters as of the latest parallel solve.
    pub pool: PoolReport,
    /// Session registry counters.
    pub sessions: SessionReport,
    /// Aggregate cache counters.
    pub cache: CacheStats,
    /// Per-shard cache counters.
    pub shards: Vec<ShardStats>,
    /// Engine uptime in whole seconds.
    pub uptime_secs: u64,
}

impl MetricsReport {
    /// Total requests across all kinds and outcomes.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().flatten().sum()
    }

    /// Whole-request latency aggregated across every query kind: the
    /// bucket-wise union of the per-kind histograms (bounds are shared, so
    /// the merge is exact). Backs the `pc_request_duration` Prometheus
    /// series an external scraper uses to compute its own quantiles.
    pub fn request_duration(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        };
        for snap in &self.request_kind {
            for (i, &bucket) in snap.buckets.iter().enumerate() {
                merged.buckets[i] += bucket;
            }
            merged.count += snap.count;
            merged.sum += snap.sum;
        }
        merged
    }

    /// Structured JSON rendering, used by the `metrics` proto frame,
    /// `GET /v1/metrics?format=json` and `pathcover-cli metrics`.
    pub fn to_json(&self) -> Json {
        let requests = Json::Obj(
            QueryKind::ALL
                .iter()
                .enumerate()
                .map(|(k, kind)| {
                    (
                        kind.as_str().to_string(),
                        Json::Obj(
                            Outcome::ALL
                                .iter()
                                .enumerate()
                                .map(|(o, outcome)| {
                                    (outcome.as_str().to_string(), Json::num(self.requests[k][o]))
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let stages = Json::Obj(
            Stage::ALL
                .iter()
                .enumerate()
                .map(|(i, stage)| (stage.as_str().to_string(), self.stages[i].summary_json()))
                .collect(),
        );
        let by_kind = Json::Obj(
            QueryKind::ALL
                .iter()
                .enumerate()
                .map(|(i, kind)| {
                    (
                        kind.as_str().to_string(),
                        self.request_kind[i].summary_json(),
                    )
                })
                .collect(),
        );
        let by_outcome = Json::Obj(
            Outcome::ALL
                .iter()
                .enumerate()
                .map(|(i, outcome)| {
                    (
                        outcome.as_str().to_string(),
                        self.request_outcome[i].summary_json(),
                    )
                })
                .collect(),
        );
        let connections = Json::Obj(
            Transport::ALL
                .iter()
                .enumerate()
                .map(|(i, transport)| {
                    let t = &self.transports[i];
                    (
                        transport.as_str().to_string(),
                        Json::obj(vec![
                            ("accepted", Json::num(t.accepted)),
                            ("active", Json::num(t.active.max(0) as u64)),
                            ("idle_timeouts", Json::num(t.idle_timeouts)),
                            ("oversize_rejects", Json::num(t.oversize_rejects)),
                            ("accept_errors", Json::num(t.accept_errors)),
                        ]),
                    )
                })
                .collect(),
        );
        let per_shard = Json::Arr(
            self.shards
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("hits", Json::num(s.hits)),
                        ("misses", Json::num(s.misses)),
                        ("evictions", Json::num(s.evictions)),
                        ("entries", Json::num(s.entries as u64)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("requests_total", Json::num(self.total_requests())),
            ("requests", requests),
            ("stages", stages),
            ("request_latency_by_kind", by_kind),
            ("request_latency_by_outcome", by_outcome),
            ("connections", connections),
            (
                "resilience",
                Json::obj(vec![
                    ("rejected_overload", Json::num(self.rejected_overload)),
                    ("deadline_exceeded", Json::num(self.deadline_exceeded)),
                    ("inflight", Json::num(self.inflight.max(0) as u64)),
                ]),
            ),
            (
                "snapshot",
                Json::obj(vec![
                    ("checkpoints", self.snapshot_save.summary_json()),
                    ("failures", Json::num(self.snapshot_failures)),
                    (
                        "consecutive_failures",
                        Json::num(self.snapshot_consecutive_failures),
                    ),
                    ("last_success_unix", Json::num(self.snapshot_last_unix)),
                ]),
            ),
            (
                "pool",
                Json::obj(vec![
                    ("solves", Json::num(self.pool_solves)),
                    ("workers", Json::num(self.pool.workers)),
                    ("rounds", Json::num(self.pool.rounds)),
                    ("steals", Json::num(self.pool.steals)),
                    ("barrier_waits", Json::num(self.pool.barrier_waits)),
                    (
                        "barrier_wait_p50_us",
                        Json::num(self.pool.barrier_wait_p50_us),
                    ),
                    (
                        "barrier_wait_p99_us",
                        Json::num(self.pool.barrier_wait_p99_us),
                    ),
                ]),
            ),
            (
                "sessions",
                Json::obj(vec![
                    ("live", Json::num(self.sessions.live.max(0) as u64)),
                    ("created", Json::num(self.sessions.created)),
                    ("dropped", Json::num(self.sessions.dropped)),
                    ("expired", Json::num(self.sessions.expired)),
                    ("mutations", Json::num(self.sessions.mutations)),
                    (
                        "recognize_incremental",
                        Json::num(self.sessions.recognize_incremental),
                    ),
                    (
                        "recognize_rebuild",
                        Json::num(self.sessions.recognize_rebuild),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::num(self.cache.hits)),
                    ("misses", Json::num(self.cache.misses)),
                    ("evictions", Json::num(self.cache.evictions)),
                    ("entries", Json::num(self.cache.entries as u64)),
                    ("per_shard", per_shard),
                ]),
            ),
            ("uptime_secs", Json::num(self.uptime_secs)),
        ])
    }

    /// Prometheus text exposition (format 0.0.4) rendering, served by
    /// `GET /v1/metrics`. Histograms use cumulative `le` buckets over the
    /// power-of-two bounds plus `+Inf`; all latency units are
    /// microseconds (suffix `_us`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);

        out.push_str(&format!(
            "# HELP pc_build_info Build identification of this daemon; always 1.\n\
             # TYPE pc_build_info gauge\n\
             pc_build_info{{version=\"{}\",rust_version=\"{}\",profile=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION"),
            option_env!("CARGO_PKG_RUST_VERSION").unwrap_or("unknown"),
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
        ));

        out.push_str("# HELP pc_requests_total Requests completed, by query kind and outcome.\n");
        out.push_str("# TYPE pc_requests_total counter\n");
        for (k, kind) in QueryKind::ALL.iter().enumerate() {
            for (o, outcome) in Outcome::ALL.iter().enumerate() {
                out.push_str(&format!(
                    "pc_requests_total{{kind=\"{}\",outcome=\"{}\"}} {}\n",
                    kind.as_str(),
                    outcome.as_str(),
                    self.requests[k][o]
                ));
            }
        }

        out.push_str(
            "# HELP pc_stage_latency_us Per-stage pipeline latency in microseconds.\n\
             # TYPE pc_stage_latency_us histogram\n",
        );
        for (i, stage) in Stage::ALL.iter().enumerate() {
            render_histogram(
                &mut out,
                "pc_stage_latency_us",
                &format!("stage=\"{}\"", stage.as_str()),
                &self.stages[i],
            );
        }

        out.push_str(
            "# HELP pc_request_latency_us Whole-request latency in microseconds, by query kind.\n\
             # TYPE pc_request_latency_us histogram\n",
        );
        for (i, kind) in QueryKind::ALL.iter().enumerate() {
            render_histogram(
                &mut out,
                "pc_request_latency_us",
                &format!("kind=\"{}\"", kind.as_str()),
                &self.request_kind[i],
            );
        }

        out.push_str(
            "# HELP pc_request_outcome_latency_us Whole-request latency in microseconds, by outcome.\n\
             # TYPE pc_request_outcome_latency_us histogram\n",
        );
        for (i, outcome) in Outcome::ALL.iter().enumerate() {
            render_histogram(
                &mut out,
                "pc_request_outcome_latency_us",
                &format!("outcome=\"{}\"", outcome.as_str()),
                &self.request_outcome[i],
            );
        }

        // Aggregate request duration: one unlabelled cumulative histogram
        // (same power-of-two microsecond bounds as every other series) so
        // an external Prometheus can run its own histogram_quantile, plus
        // the precomputed quantile gauges for dashboards that want the
        // daemon's view.
        let duration = self.request_duration();
        out.push_str(
            "# HELP pc_request_duration Whole-request latency in microseconds, all query kinds.\n\
             # TYPE pc_request_duration histogram\n",
        );
        render_histogram(&mut out, "pc_request_duration", "", &duration);
        out.push_str(&format!(
            "# HELP pc_request_duration_p50_us Precomputed median whole-request latency in microseconds.\n\
             # TYPE pc_request_duration_p50_us gauge\n\
             pc_request_duration_p50_us {}\n\
             # HELP pc_request_duration_p90_us Precomputed p90 whole-request latency in microseconds.\n\
             # TYPE pc_request_duration_p90_us gauge\n\
             pc_request_duration_p90_us {}\n\
             # HELP pc_request_duration_p99_us Precomputed p99 whole-request latency in microseconds.\n\
             # TYPE pc_request_duration_p99_us gauge\n\
             pc_request_duration_p99_us {}\n",
            duration.quantile(0.50),
            duration.quantile(0.90),
            duration.quantile(0.99)
        ));

        out.push_str(
            "# HELP pc_connections_accepted_total Connections accepted, by transport.\n\
             # TYPE pc_connections_accepted_total counter\n",
        );
        for (i, transport) in Transport::ALL.iter().enumerate() {
            out.push_str(&format!(
                "pc_connections_accepted_total{{transport=\"{}\"}} {}\n",
                transport.as_str(),
                self.transports[i].accepted
            ));
        }
        out.push_str(
            "# HELP pc_connections_active Currently open connections, by transport.\n\
             # TYPE pc_connections_active gauge\n",
        );
        for (i, transport) in Transport::ALL.iter().enumerate() {
            out.push_str(&format!(
                "pc_connections_active{{transport=\"{}\"}} {}\n",
                transport.as_str(),
                self.transports[i].active.max(0)
            ));
        }
        out.push_str(
            "# HELP pc_idle_timeouts_total Connections closed by idle timeout, by transport.\n\
             # TYPE pc_idle_timeouts_total counter\n",
        );
        for (i, transport) in Transport::ALL.iter().enumerate() {
            out.push_str(&format!(
                "pc_idle_timeouts_total{{transport=\"{}\"}} {}\n",
                transport.as_str(),
                self.transports[i].idle_timeouts
            ));
        }
        out.push_str(
            "# HELP pc_oversize_rejects_total Frames or bodies rejected over the size cap, by transport.\n\
             # TYPE pc_oversize_rejects_total counter\n",
        );
        for (i, transport) in Transport::ALL.iter().enumerate() {
            out.push_str(&format!(
                "pc_oversize_rejects_total{{transport=\"{}\"}} {}\n",
                transport.as_str(),
                self.transports[i].oversize_rejects
            ));
        }

        out.push_str(
            "# HELP pc_accept_errors_total Listener accept() failures, by transport.\n\
             # TYPE pc_accept_errors_total counter\n",
        );
        for (i, transport) in Transport::ALL.iter().enumerate() {
            out.push_str(&format!(
                "pc_accept_errors_total{{transport=\"{}\"}} {}\n",
                transport.as_str(),
                self.transports[i].accept_errors
            ));
        }
        out.push_str(&format!(
            "# HELP pc_rejected_overload_total Requests shed under load (admission cap, budgets, injected faults).\n\
             # TYPE pc_rejected_overload_total counter\n\
             pc_rejected_overload_total {}\n\
             # HELP pc_deadline_exceeded_total Requests cut short because their deadline expired.\n\
             # TYPE pc_deadline_exceeded_total counter\n\
             pc_deadline_exceeded_total {}\n\
             # HELP pc_inflight_requests Requests currently admitted and executing.\n\
             # TYPE pc_inflight_requests gauge\n\
             pc_inflight_requests {}\n",
            self.rejected_overload,
            self.deadline_exceeded,
            self.inflight.max(0)
        ));

        out.push_str(
            "# HELP pc_snapshot_checkpoint_duration_us Snapshot checkpoint duration in microseconds.\n\
             # TYPE pc_snapshot_checkpoint_duration_us histogram\n",
        );
        render_histogram(
            &mut out,
            "pc_snapshot_checkpoint_duration_us",
            "",
            &self.snapshot_save,
        );
        out.push_str(&format!(
            "# HELP pc_snapshot_failures_total Failed snapshot checkpoints.\n\
             # TYPE pc_snapshot_failures_total counter\n\
             pc_snapshot_failures_total {}\n\
             # HELP pc_snapshot_consecutive_failures Checkpoint failures since the last success.\n\
             # TYPE pc_snapshot_consecutive_failures gauge\n\
             pc_snapshot_consecutive_failures {}\n\
             # HELP pc_snapshot_last_success_unixtime Unix time of the last successful checkpoint (0 = never).\n\
             # TYPE pc_snapshot_last_success_unixtime gauge\n\
             pc_snapshot_last_success_unixtime {}\n",
            self.snapshot_failures, self.snapshot_consecutive_failures, self.snapshot_last_unix
        ));

        out.push_str(&format!(
            "# HELP pc_pool_solves_total Solves executed on the work-stealing pool.\n\
             # TYPE pc_pool_solves_total counter\n\
             pc_pool_solves_total {}\n\
             # HELP pc_pool_workers Worker threads of the engine's work-stealing pool.\n\
             # TYPE pc_pool_workers gauge\n\
             pc_pool_workers {}\n\
             # HELP pc_pool_rounds_total PRAM rounds executed by the pool.\n\
             # TYPE pc_pool_rounds_total counter\n\
             pc_pool_rounds_total {}\n\
             # HELP pc_pool_steals_total Chunks stolen between pool workers.\n\
             # TYPE pc_pool_steals_total counter\n\
             pc_pool_steals_total {}\n\
             # HELP pc_pool_barrier_waits_total Barrier wait observations in the pool.\n\
             # TYPE pc_pool_barrier_waits_total counter\n\
             pc_pool_barrier_waits_total {}\n\
             # HELP pc_pool_barrier_wait_p50_us Median pool barrier wait in microseconds.\n\
             # TYPE pc_pool_barrier_wait_p50_us gauge\n\
             pc_pool_barrier_wait_p50_us {}\n\
             # HELP pc_pool_barrier_wait_p99_us 99th-percentile pool barrier wait in microseconds.\n\
             # TYPE pc_pool_barrier_wait_p99_us gauge\n\
             pc_pool_barrier_wait_p99_us {}\n",
            self.pool_solves,
            self.pool.workers,
            self.pool.rounds,
            self.pool.steals,
            self.pool.barrier_waits,
            self.pool.barrier_wait_p50_us,
            self.pool.barrier_wait_p99_us
        ));

        out.push_str(&format!(
            "# HELP pc_sessions_live Live daemon-resident session handles.\n\
             # TYPE pc_sessions_live gauge\n\
             pc_sessions_live {}\n\
             # HELP pc_sessions_created_total Session handles created.\n\
             # TYPE pc_sessions_created_total counter\n\
             pc_sessions_created_total {}\n\
             # HELP pc_sessions_dropped_total Session handles released by session_drop.\n\
             # TYPE pc_sessions_dropped_total counter\n\
             pc_sessions_dropped_total {}\n\
             # HELP pc_sessions_expired_total Session handles reclaimed by the idle-TTL sweep.\n\
             # TYPE pc_sessions_expired_total counter\n\
             pc_sessions_expired_total {}\n\
             # HELP pc_session_mutations_total Successful session mutations.\n\
             # TYPE pc_session_mutations_total counter\n\
             pc_session_mutations_total {}\n\
             # HELP pc_session_recognize_incremental_total Session recognitions absorbed incrementally.\n\
             # TYPE pc_session_recognize_incremental_total counter\n\
             pc_session_recognize_incremental_total {}\n\
             # HELP pc_session_recognize_rebuild_total Session recognitions that rebuilt from scratch.\n\
             # TYPE pc_session_recognize_rebuild_total counter\n\
             pc_session_recognize_rebuild_total {}\n",
            self.sessions.live.max(0),
            self.sessions.created,
            self.sessions.dropped,
            self.sessions.expired,
            self.sessions.mutations,
            self.sessions.recognize_incremental,
            self.sessions.recognize_rebuild
        ));

        out.push_str(&format!(
            "# HELP pc_cache_hits_total Cache hits across all shards.\n\
             # TYPE pc_cache_hits_total counter\n\
             pc_cache_hits_total {}\n\
             # HELP pc_cache_misses_total Cache misses across all shards.\n\
             # TYPE pc_cache_misses_total counter\n\
             pc_cache_misses_total {}\n\
             # HELP pc_cache_evictions_total Cache evictions across all shards.\n\
             # TYPE pc_cache_evictions_total counter\n\
             pc_cache_evictions_total {}\n\
             # HELP pc_cache_entries Live cache entries across all shards.\n\
             # TYPE pc_cache_entries gauge\n\
             pc_cache_entries {}\n",
            self.cache.hits, self.cache.misses, self.cache.evictions, self.cache.entries
        ));
        out.push_str(
            "# HELP pc_cache_shard_hits_total Cache hits per shard.\n\
             # TYPE pc_cache_shard_hits_total counter\n",
        );
        for (i, shard) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "pc_cache_shard_hits_total{{shard=\"{i}\"}} {}\n",
                shard.hits
            ));
        }
        out.push_str(
            "# HELP pc_cache_shard_misses_total Cache misses per shard.\n\
             # TYPE pc_cache_shard_misses_total counter\n",
        );
        for (i, shard) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "pc_cache_shard_misses_total{{shard=\"{i}\"}} {}\n",
                shard.misses
            ));
        }

        out.push_str(&format!(
            "# HELP pc_uptime_seconds Engine uptime in seconds.\n\
             # TYPE pc_uptime_seconds gauge\n\
             pc_uptime_seconds {}\n",
            self.uptime_secs
        ));
        out
    }
}

/// Renders one labelled histogram series in Prometheus exposition shape:
/// cumulative `_bucket{le=...}` lines over the power-of-two bounds, the
/// `+Inf` bucket, then `_sum` and `_count`.
fn render_histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &bucket) in snap.buckets.iter().enumerate() {
        cumulative += bucket;
        let le = if i == HISTOGRAM_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            Histogram::bucket_upper(i).to_string()
        };
        if labels.is_empty() {
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        } else {
            out.push_str(&format!(
                "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
            ));
        }
    }
    let suffix = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_sum{suffix} {}\n", snap.sum));
    out.push_str(&format!("{name}_count{suffix} {}\n", snap.count));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Every power of two lands in its own bucket; one past it spills
        // into the next.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        for i in 1..31usize {
            let bound = 1u64 << i;
            assert_eq!(Histogram::bucket_index(bound), i, "value {bound}");
            assert_eq!(
                Histogram::bucket_index(bound + 1),
                i + 1,
                "value {}",
                bound + 1
            );
            assert_eq!(Histogram::bucket_upper(i), bound);
        }
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record(1u64 << 30); // last finite bucket
        h.record((1u64 << 30) + 1); // first overflow value
        h.record(u64::MAX); // way past everything
        let snap = h.snapshot();
        assert_eq!(snap.buckets[30], 1);
        assert_eq!(snap.buckets[31], 2);
        assert_eq!(snap.count, 3);
        // The overflow quantile reports the open bound.
        assert_eq!(snap.quantile(0.99), u64::MAX);
    }

    #[test]
    fn quantiles_agree_with_a_sorted_vector_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for round in 0..8 {
            let h = Histogram::new();
            let size = 100 + round * 173;
            let mut values: Vec<u64> = (0..size)
                .map(|_| {
                    // Log-uniform spread so every bucket range gets traffic.
                    let exp = rng.gen_range(0..24u32);
                    rng.gen_range(0..(2u64 << exp))
                })
                .collect();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, values.len() as u64);
            assert_eq!(snap.sum, values.iter().sum::<u64>());
            for q in [0.5, 0.9, 0.99] {
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                let oracle = values[rank - 1];
                // Bucketisation preserves order, so the histogram quantile
                // is exactly the upper bound of the oracle value's bucket.
                let expected = Histogram::bucket_upper(Histogram::bucket_index(oracle));
                assert_eq!(
                    snap.quantile(q),
                    expected,
                    "q={q} round={round} oracle={oracle}"
                );
            }
        }
    }

    #[test]
    fn concurrent_recording_keeps_exact_counts() {
        let h = std::sync::Arc::new(Histogram::new());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 20_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.sum, n * (n - 1) / 2);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(
            snap.summary_json().get("p99_us").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let tel = Telemetry::new(false, Some(0));
        tel.record_stage(Stage::Solve, 10);
        tel.record_request(QueryKind::Recognize, Outcome::Ok, 10);
        tel.conn_opened(Transport::Http);
        tel.checkpoint_saved(5);
        assert!(!tel.should_log(Outcome::Internal, u64::MAX));
        let report = tel.report(CacheStats::default(), Vec::new(), 0);
        assert_eq!(report.total_requests(), 0);
        assert_eq!(report.stages[Stage::Solve.index()].count, 0);
        assert_eq!(report.transports[Transport::Http.index()].accepted, 0);
    }

    #[test]
    fn slow_log_gate_honours_threshold_and_rate_limit() {
        let tel = Telemetry::new(true, Some(1_000));
        assert!(!tel.should_log(Outcome::Ok, 999));
        assert!(tel.should_log(Outcome::Ok, 1_000));
        // Immediately after a line the limiter suppresses the next one.
        assert!(!tel.should_log(Outcome::Ok, 50_000));
        // No threshold configured: only internal failures qualify.
        let quiet = Telemetry::new(true, None);
        assert!(!quiet.should_log(Outcome::Ok, u64::MAX));
        assert!(quiet.should_log(Outcome::Internal, 1));
    }

    #[test]
    fn trace_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let ctx = RequestCtx::generate();
            assert!(ctx.trace_id.starts_with("pc-"), "{}", ctx.trace_id);
            assert_eq!(ctx.trace_id.len(), 19, "{}", ctx.trace_id);
            assert!(seen.insert(ctx.trace_id));
        }
        assert_eq!(RequestCtx::with_trace("abc").trace_id, "abc");
    }

    #[test]
    fn prometheus_rendering_is_line_parseable() {
        let tel = Telemetry::new(true, None);
        tel.record_request(QueryKind::FullCover, Outcome::Ok, 300);
        tel.record_stage(Stage::Solve, 120);
        tel.conn_opened(Transport::Framed);
        tel.oversize_reject(Transport::Http);
        tel.checkpoint_saved(2_000);
        let report = tel.report(CacheStats::default(), Vec::new(), 7);
        let text = report.to_prometheus();
        let mut samples = 0usize;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            // `name{labels} value` or `name value`.
            let (series, value) = line.rsplit_once(' ').expect(line);
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in: {line}"
            );
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'), "{line}");
                }
            }
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "bad value in: {line}"
            );
            samples += 1;
        }
        assert!(samples > 100, "suspiciously few samples: {samples}");
        assert!(text.contains("pc_requests_total{kind=\"full_cover\",outcome=\"ok\"} 1\n"));
        assert!(text.contains("pc_stage_latency_us_count{stage=\"solve\"} 1\n"));
        assert!(text.contains("pc_connections_accepted_total{transport=\"framed\"} 1\n"));
        assert!(text.contains("pc_oversize_rejects_total{transport=\"http\"} 1\n"));
        assert!(text.contains("pc_accept_errors_total{transport=\"framed\"} 0\n"));
        assert!(text.contains("pc_rejected_overload_total 0\n"));
        assert!(text.contains("pc_deadline_exceeded_total 0\n"));
        assert!(text.contains("pc_inflight_requests 0\n"));
        assert!(text.contains("pc_uptime_seconds 7\n"));
        // Histogram buckets are cumulative and end at +Inf == count.
        assert!(text.contains("pc_stage_latency_us_bucket{stage=\"solve\",le=\"+Inf\"} 1\n"));
        assert_eq!(report.total_requests(), 1);
    }

    #[test]
    fn metrics_json_mirrors_the_registry() {
        let tel = Telemetry::new(true, None);
        tel.record_request(QueryKind::MinCoverSize, Outcome::Ok, 40);
        tel.record_request(QueryKind::MinCoverSize, Outcome::Invalid, 10);
        tel.record_stage(Stage::Ingest, 5);
        let report = tel.report(CacheStats::default(), Vec::new(), 3);
        let json = report.to_json();
        assert_eq!(json.get("requests_total").and_then(Json::as_u64), Some(2));
        let kind = json
            .get("requests")
            .and_then(|r| r.get("min_cover_size"))
            .expect("kind row");
        assert_eq!(kind.get("ok").and_then(Json::as_u64), Some(1));
        assert_eq!(kind.get("invalid").and_then(Json::as_u64), Some(1));
        let ingest = json
            .get("stages")
            .and_then(|s| s.get("ingest"))
            .expect("stage row");
        assert_eq!(ingest.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("uptime_secs").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn resilience_counters_round_trip() {
        let tel = Telemetry::new(true, None);
        tel.overload_rejected();
        tel.overload_rejected();
        tel.deadline_exceeded();
        tel.inflight_started();
        tel.accept_error(Transport::Framed);
        tel.checkpoint_failed();
        tel.checkpoint_failed();
        let report = tel.report(CacheStats::default(), Vec::new(), 0);
        assert_eq!(report.rejected_overload, 2);
        assert_eq!(report.deadline_exceeded, 1);
        assert_eq!(report.inflight, 1);
        assert_eq!(
            report.transports[Transport::Framed.index()].accept_errors,
            1
        );
        assert_eq!(report.snapshot_consecutive_failures, 2);
        assert_eq!(report.snapshot_failures, 2);
        // A success resets the streak but not the lifetime total.
        tel.checkpoint_saved(10);
        tel.inflight_finished();
        let report = tel.report(CacheStats::default(), Vec::new(), 0);
        assert_eq!(report.snapshot_consecutive_failures, 0);
        assert_eq!(report.snapshot_failures, 2);
        assert_eq!(report.inflight, 0);
        let json = report.to_json();
        let resilience = json.get("resilience").expect("resilience block");
        assert_eq!(
            resilience.get("rejected_overload").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            resilience.get("deadline_exceeded").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(resilience.get("inflight").and_then(Json::as_u64), Some(0));
        let framed = json
            .get("connections")
            .and_then(|c| c.get("framed"))
            .expect("framed row");
        assert_eq!(framed.get("accept_errors").and_then(Json::as_u64), Some(1));
        let snapshot = json.get("snapshot").expect("snapshot block");
        assert_eq!(
            snapshot.get("consecutive_failures").and_then(Json::as_u64),
            Some(0)
        );
        let text = report.to_prometheus();
        assert!(text.contains("pc_rejected_overload_total 2\n"));
        assert!(text.contains("pc_deadline_exceeded_total 1\n"));
        assert!(text.contains("pc_accept_errors_total{transport=\"framed\"} 1\n"));
        assert!(text.contains("pc_snapshot_consecutive_failures 0\n"));
    }

    #[test]
    fn deadline_expiry_is_observable_from_ctx() {
        let ctx = RequestCtx::generate();
        assert!(!ctx.deadline_expired());
        let ctx = ctx.with_deadline_ms(Some(0));
        assert!(ctx.deadline_expired());
        let ctx = RequestCtx::with_trace("t").with_deadline_ms(Some(60_000));
        assert!(!ctx.deadline_expired());
        assert!(ctx.with_deadline_ms(None).deadline.is_none());
    }
}
