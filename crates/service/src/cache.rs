//! The sharded cotree cache.
//!
//! Recognition (`O(n^2 log n)`) dominates the cost of serving a query that
//! arrives as raw graph text, and binarisation plus the solver dominate the
//! rest. The cache removes both for repeated graphs:
//!
//! * a **graph fingerprint** (hash of the exact vertex count and edge list)
//!   maps previously-seen graphs to their cotree without re-running
//!   recognition, and
//! * a **canonical cotree key** — a hash of the cotree's canonical form,
//!   invariant under reordering of children — maps equal cotrees (however
//!   they were ingested) to one shared [`SolveEntry`] that memoises the
//!   answers every query kind needs: minimum cover size and the two
//!   Hamiltonian decisions.
//!
//! `FullCover` answers are *not* memoised: covers are `O(n)` big, the solver
//! that produces them is `O(n)` too, and every returned cover is re-verified
//! against the request's graph anyway.
//!
//! ## Sharding and eviction
//!
//! The cache is split into `N` shards (a power of two, default
//! [`DEFAULT_SHARDS`]) selected by the low bits of the hash being probed, so
//! concurrent batch workers contend on `1/N`-th of the lock traffic. Each
//! shard holds two independently bounded LRU maps:
//!
//! * `entries`: canonical key → [`SolveEntry`] (for cotree-keyed lookups),
//! * `by_graph`: graph fingerprint → (exact graph, [`SolveEntry`]) (for
//!   graph-keyed lookups that skip recognition).
//!
//! Both are true LRUs: a hit touches the entry, eviction removes the least
//! recently used one. Keeping `by_graph` values as direct `Arc`s to the
//! solve entry (rather than indirecting through the canonical key) means the
//! two maps never need cross-shard bookkeeping: evicting a canonical key
//! never strands a fingerprint link, and many fingerprints mapping to one
//! canonical key stay bounded by the fingerprint map's own capacity. (The
//! pre-sharding design kept a `key -> fingerprint` reverse link and leaked
//! `by_graph` entries whenever several fingerprints shared a key; see
//! `by_graph_stays_bounded_under_many_graphs_one_cotree`.)
//!
//! Collision discipline is unchanged from the unsharded cache: every hit is
//! confirmed by an exact comparison (graph equality or canonical cotree
//! equality), so a hash collision degrades to a miss or an uncached entry —
//! never to another graph's answers.
//!
//! Per-shard hit/miss/eviction counters are aggregated into [`CacheStats`]
//! by [`CotreeCache::stats`]; the per-shard breakdown is available through
//! [`CotreeCache::shard_stats`].

use cograph::{Cotree, CotreeKind};
use pathcover::{has_hamiltonian_cycle, has_hamiltonian_path, min_path_cover_size};
use pcgraph::Graph;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Default shard count of [`CotreeCache::new`] (must be a power of two).
pub const DEFAULT_SHARDS: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Hash of the exact labelled graph (vertex count plus sorted edge list).
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(g.num_vertices() as u64);
    for (u, v) in g.edges() {
        h.write_u64(((u as u64) << 32) | v as u64);
    }
    h.finish()
}

/// Hash of the cotree's canonical form.
///
/// Each node hashes its kind and its children's hashes *sorted*, so the key
/// is invariant under child reordering — `(u a (j b c))` and `(u (j c b) a)`
/// collide on purpose. Leaf labels are part of the hash: two cotrees get the
/// same key only when they describe the same labelled graph, which is what
/// makes cached covers safe to reuse.
pub fn canonical_key(tree: &Cotree) -> u64 {
    let hashes = node_hashes(tree);
    hashes[tree.root()]
}

/// Per-node canonical hashes (see [`canonical_key`]).
fn node_hashes(tree: &Cotree) -> Vec<u64> {
    let mut node_hash = vec![0u64; tree.num_nodes()];
    for u in tree.postorder() {
        let mut h = Fnv::new();
        match tree.kind(u) {
            CotreeKind::Leaf(v) => {
                h.write_u64(1);
                h.write_u64(v as u64);
            }
            kind => {
                h.write_u64(if kind == CotreeKind::Union { 2 } else { 3 });
                let mut child_hashes: Vec<u64> =
                    tree.children(u).iter().map(|&c| node_hash[c]).collect();
                child_hashes.sort_unstable();
                for ch in child_hashes {
                    h.write_u64(ch);
                }
            }
        }
        node_hash[u] = h.finish();
    }
    node_hash
}

/// Exact canonical equality: `true` iff the two cotrees describe the same
/// labelled graph up to reordering of children.
///
/// Children are paired in sorted-hash order and compared recursively, so a
/// hash collision among siblings can only produce a false *negative* (the
/// cache then treats the trees as distinct — lost sharing, never a wrong
/// answer); a `true` result is an exact structural match of the pairing.
pub fn canonical_eq(a: &Cotree, b: &Cotree) -> bool {
    if a.num_nodes() != b.num_nodes() {
        return false;
    }
    let ha = node_hashes(a);
    let hb = node_hashes(b);
    canonical_eq_at(a, a.root(), &ha, b, b.root(), &hb)
}

fn sorted_children(tree: &Cotree, u: usize, hashes: &[u64]) -> Vec<usize> {
    let mut kids: Vec<usize> = tree.children(u).to_vec();
    kids.sort_unstable_by_key(|&c| hashes[c]);
    kids
}

fn canonical_eq_at(a: &Cotree, u: usize, ha: &[u64], b: &Cotree, v: usize, hb: &[u64]) -> bool {
    match (a.kind(u), b.kind(v)) {
        (CotreeKind::Leaf(x), CotreeKind::Leaf(y)) => x == y,
        (ka, kb) if ka == kb => {
            let ca = sorted_children(a, u, ha);
            let cb = sorted_children(b, v, hb);
            ca.len() == cb.len()
                && ca
                    .into_iter()
                    .zip(cb)
                    .all(|(cu, cv)| canonical_eq_at(a, cu, ha, b, cv, hb))
        }
        _ => false,
    }
}

/// A cached cotree plus memoised scalar answers.
#[derive(Debug)]
pub struct SolveEntry {
    /// The canonical key this entry is stored under.
    pub key: u64,
    /// The cotree itself.
    pub cotree: Cotree,
    min_size: OnceLock<usize>,
    ham_path: OnceLock<bool>,
    ham_cycle: OnceLock<bool>,
}

/// The scalar answers a [`SolveEntry`] has memoised so far — `None` means
/// "not computed yet". This is what a snapshot persists per entry so a
/// warm-started daemon answers without re-running the solvers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoisedScalars {
    /// Minimum path-cover size, if computed.
    pub min_cover_size: Option<usize>,
    /// Hamiltonian-path decision, if computed.
    pub ham_path: Option<bool>,
    /// Hamiltonian-cycle decision, if computed.
    pub ham_cycle: Option<bool>,
}

impl SolveEntry {
    /// Wraps a cotree (computing its canonical key).
    pub fn new(cotree: Cotree) -> Self {
        SolveEntry::from_parts(cotree, MemoisedScalars::default())
    }

    /// Rebuilds an entry from snapshot parts, pre-seeding the memo slots
    /// with the scalars persisted by a previous process.
    pub fn from_parts(cotree: Cotree, scalars: MemoisedScalars) -> Self {
        let entry = SolveEntry {
            key: canonical_key(&cotree),
            cotree,
            min_size: OnceLock::new(),
            ham_path: OnceLock::new(),
            ham_cycle: OnceLock::new(),
        };
        if let Some(size) = scalars.min_cover_size {
            let _ = entry.min_size.set(size);
        }
        if let Some(path) = scalars.ham_path {
            let _ = entry.ham_path.set(path);
        }
        if let Some(cycle) = scalars.ham_cycle {
            let _ = entry.ham_cycle.set(cycle);
        }
        entry
    }

    /// The scalars memoised so far (the snapshot writer's view).
    pub fn memoised_scalars(&self) -> MemoisedScalars {
        MemoisedScalars {
            min_cover_size: self.min_size.get().copied(),
            ham_path: self.ham_path.get().copied(),
            ham_cycle: self.ham_cycle.get().copied(),
        }
    }

    /// Minimum path-cover size (memoised).
    pub fn min_cover_size(&self) -> usize {
        *self
            .min_size
            .get_or_init(|| min_path_cover_size(&self.cotree))
    }

    /// Hamiltonian-path decision (memoised).
    pub fn has_hamiltonian_path(&self) -> bool {
        *self
            .ham_path
            .get_or_init(|| has_hamiltonian_path(&self.cotree))
    }

    /// Hamiltonian-cycle decision (memoised).
    pub fn has_hamiltonian_cycle(&self) -> bool {
        *self
            .ham_cycle
            .get_or_init(|| has_hamiltonian_cycle(&self.cotree))
    }
}

/// Aggregated counters, snapshot via [`CotreeCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (all shards).
    pub hits: u64,
    /// Lookups that had to recognise/insert fresh (all shards).
    pub misses: u64,
    /// Entries removed by LRU capacity pressure (all shards, both maps).
    pub evictions: u64,
    /// Cotree entries currently resident (all shards).
    pub entries: usize,
    /// Number of shards.
    pub shards: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard's counters, snapshot via [`CotreeCache::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Lookups answered from this shard.
    pub hits: u64,
    /// Lookups this shard could not answer.
    pub misses: u64,
    /// LRU evictions in this shard (both maps).
    pub evictions: u64,
    /// Cotree entries resident in this shard.
    pub entries: usize,
}

impl ShardStats {
    /// Hit fraction in `[0, 1]` for this shard (0 when it saw no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU map from `u64` hash keys to values.
///
/// Recency is tracked with lazy invalidation: every touch pushes a
/// `(key, tick)` marker onto a queue and records the same tick in the map;
/// eviction pops markers until one still matches its entry's current tick —
/// stale markers (the entry was touched again later, or already evicted)
/// are discarded. Each operation pushes at most one marker and eviction
/// pops each marker at most once, so touch and insert are amortised `O(1)`
/// at any capacity; the queue is compacted when it outgrows the live map
/// by a constant factor.
struct Lru<V> {
    /// key -> (value, tick of last use).
    map: HashMap<u64, (V, u64)>,
    /// Touch markers, oldest first; stale entries dropped lazily.
    order: VecDeque<(u64, u64)>,
    tick: u64,
    cap: usize,
}

impl<V> Lru<V> {
    fn new(cap: usize) -> Self {
        Lru {
            map: HashMap::new(),
            order: VecDeque::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    /// Records a marker for `key` at `tick` — which must already be the
    /// entry's current tick in the map, so compaction never discards a
    /// live entry's only marker.
    fn push_marker(&mut self, key: u64, tick: u64) {
        self.order.push_back((key, tick));
        if self.order.len() > self.map.len().saturating_mul(4).max(64) {
            let map = &self.map;
            self.order
                .retain(|&(k, t)| map.get(&k).is_some_and(|(_, used)| *used == t));
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    fn get_touch(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((_, used)) => *used = tick,
            None => return None,
        }
        self.push_marker(key, tick);
        self.map.get(&key).map(|(value, _)| value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used entry
    /// when over capacity. Returns the number of evictions performed.
    fn insert(&mut self, key: u64, value: V) -> u64 {
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            while self.map.len() >= self.cap {
                // Only a marker matching its entry's latest tick names the
                // true LRU; anything else is stale and skipped. Every live
                // entry has a current marker, so the queue cannot run dry
                // while the map is at capacity — but degrade to accepting
                // the overflow rather than panicking under the shard lock.
                let Some((k, t)) = self.order.pop_front() else {
                    break;
                };
                if self.map.get(&k).is_some_and(|(_, used)| *used == t) {
                    self.map.remove(&k);
                    evicted += 1;
                }
            }
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(key, (value, tick));
        self.push_marker(key, tick);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Reads `key` without touching its recency (the snapshot export's
    /// residency probe).
    fn peek(&self, key: u64) -> Option<&V> {
        self.map.get(&key).map(|(value, _)| value)
    }

    /// Key–value pairs in least → most recently used order (the snapshot
    /// export path: re-inserting in this order reproduces the LRU order).
    fn iter_lru(&self) -> Vec<(u64, &V)> {
        let mut items: Vec<(u64, &V, u64)> = self
            .map
            .iter()
            .map(|(k, (v, tick))| (*k, v, *tick))
            .collect();
        items.sort_unstable_by_key(|&(_, _, tick)| tick);
        items.into_iter().map(|(k, v, _)| (k, v)).collect()
    }
}

struct Shard {
    /// canonical key -> solve entry (exact cotree confirmed on lookup).
    entries: Lru<Arc<SolveEntry>>,
    /// graph fingerprint -> (the exact graph, its solve entry). The graph is
    /// kept so a lookup can confirm the match exactly — a fingerprint
    /// collision (the inputs are untrusted and FNV is not cryptographic)
    /// must degrade to a miss, never serve another graph's answers.
    by_graph: Lru<(Arc<Graph>, Arc<SolveEntry>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn new(cap: usize) -> Self {
        Shard {
            entries: Lru::new(cap),
            by_graph: Lru::new(cap),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

/// One resident entry as exported by [`CotreeCache::export`], with the
/// graph-fingerprint links that point at it.
#[derive(Debug, Clone)]
pub struct ExportedEntry {
    /// The resident entry (cotree + memoised scalars).
    pub entry: Arc<SolveEntry>,
    /// Fingerprints of ingested graphs linked to this entry. In a cache fed
    /// by the engine there is at most one (canonically equal cotrees
    /// describe one labelled graph, and a labelled graph has one
    /// fingerprint), but the order and multiplicity of whatever is resident
    /// are preserved.
    pub fingerprints: Vec<u64>,
    /// Whether the entry is resident in the canonical (key-indexed) map.
    /// `false` for entries reachable only through a graph link — importing
    /// those back into the canonical map would evict genuinely warm
    /// entries, so the import path must re-establish only the link
    /// ([`CotreeCache::link_graph`]).
    pub canonical: bool,
}

/// The bounded, sharded, thread-safe cotree cache.
pub struct CotreeCache {
    shards: Vec<Mutex<Shard>>,
    mask: u64,
}

impl CotreeCache {
    /// Creates a cache with [`DEFAULT_SHARDS`] shards holding at least
    /// `capacity` cotrees in total.
    pub fn new(capacity: usize) -> Self {
        CotreeCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with `shards` shards (rounded up to a power of two,
    /// minimum 1) holding at least `capacity` cotrees in total. Capacity is
    /// split evenly, rounding up, so the effective total is
    /// `ceil(capacity / shards) * shards`.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(shards);
        CotreeCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key hashes into — exposed so request traces can
    /// label cache-lookup spans with the shard they touched.
    pub fn shard_index(&self, hash: u64) -> usize {
        // Low bits select the shard; both FNV-derived key families spread
        // them uniformly. The in-shard HashMap re-hashes, so reusing the low
        // bits costs nothing.
        (hash & self.mask) as usize
    }

    fn shard(&self, hash: u64) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[self.shard_index(hash)]
            .lock()
            .expect("cache shard mutex")
    }

    /// Looks up a previously-recognised graph by fingerprint, confirming
    /// the stored graph is *equal* to `graph` (a fingerprint collision is a
    /// miss, never a wrong answer). A hit touches the link's LRU position.
    pub fn lookup_graph(&self, fingerprint: u64, graph: &Graph) -> Option<Arc<SolveEntry>> {
        let mut shard = self.shard(fingerprint);
        let entry = shard
            .by_graph
            .get_touch(fingerprint)
            .filter(|(stored, _)| **stored == *graph)
            .map(|(_, entry)| entry.clone());
        match entry {
            Some(e) => {
                shard.hits += 1;
                Some(e)
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Looks up a cotree by its canonical key (cotree ingestion path),
    /// confirming the stored cotree is canonically equal. A hit touches the
    /// entry's LRU position.
    pub fn lookup_key(&self, key: u64, cotree: &Cotree) -> Option<Arc<SolveEntry>> {
        let mut shard = self.shard(key);
        let entry = shard
            .entries
            .get_touch(key)
            .filter(|e| canonical_eq(&e.cotree, cotree))
            .cloned();
        match entry {
            Some(e) => {
                shard.hits += 1;
                Some(e)
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly-built cotree, optionally linking the graph it was
    /// recognised from, and returns the resident entry (which may be a
    /// previously-cached equal cotree).
    ///
    /// If a *different* cotree already occupies the canonical key (a hash
    /// collision), the new cotree is returned uncached: collisions degrade
    /// to cache bypass for the newcomer, never to shared wrong answers.
    pub fn insert(&self, graph: Option<(u64, Arc<Graph>)>, cotree: Cotree) -> Arc<SolveEntry> {
        self.insert_entry(graph, Arc::new(SolveEntry::new(cotree)))
    }

    /// Inserts a prebuilt entry — the snapshot import path, which must keep
    /// the entry's memoised scalars instead of rebuilding it from the bare
    /// cotree. Same residency and collision semantics as [`Self::insert`];
    /// hit/miss counters are untouched (an import is not a lookup).
    pub fn insert_entry(
        &self,
        graph: Option<(u64, Arc<Graph>)>,
        entry: Arc<SolveEntry>,
    ) -> Arc<SolveEntry> {
        let resident = {
            let mut shard = self.shard(entry.key);
            match shard.entries.get_touch(entry.key) {
                Some(existing) if canonical_eq(&existing.cotree, &entry.cotree) => existing.clone(),
                Some(_collision) => return entry,
                None => {
                    let evicted = shard.entries.insert(entry.key, entry.clone());
                    shard.evictions += evicted;
                    entry
                }
            }
        };
        if let Some((fp, graph)) = graph {
            let mut shard = self.shard(fp);
            let evicted = shard.by_graph.insert(fp, (graph, resident.clone()));
            shard.evictions += evicted;
        }
        resident
    }

    /// Exports every resident entry for snapshotting.
    ///
    /// Canonical entries are listed shard by shard in least → most
    /// recently used order, so importing in file order reproduces each
    /// shard's eviction order; entries reachable only through a graph link
    /// follow at the end, flagged [`ExportedEntry::canonical`] `= false`
    /// (link order across entries is approximate). Shard locks are taken
    /// one at a time — concurrent traffic keeps flowing during a
    /// checkpoint — so the export is a crossing cut, not an atomic
    /// instant: an entry inserted mid-export may appear in the link pass
    /// only, in which case its canonical residency is re-probed before it
    /// is demoted to link-only.
    pub fn export(&self) -> Vec<ExportedEntry> {
        let mut out: Vec<ExportedEntry> = Vec::new();
        let mut index: HashMap<*const SolveEntry, usize> = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard mutex");
            for (_, entry) in shard.entries.iter_lru() {
                index.insert(Arc::as_ptr(entry), out.len());
                out.push(ExportedEntry {
                    entry: entry.clone(),
                    fingerprints: Vec::new(),
                    canonical: true,
                });
            }
        }
        // Collect the links first, then resolve them with every lock
        // released: the residency re-probe below must take a *different*
        // shard's lock, and holding two shard locks at once would let two
        // concurrent exports (checkpoint thread + save-now) deadlock.
        let mut links: Vec<(u64, Arc<SolveEntry>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard mutex");
            for (fp, (_, entry)) in shard.by_graph.iter_lru() {
                links.push((fp, entry.clone()));
            }
        }
        for (fp, entry) in links {
            let slot = match index.get(&Arc::as_ptr(&entry)) {
                Some(&slot) => slot,
                None => {
                    // Unseen in the canonical pass: a genuinely link-only
                    // entry — or an insert that landed between the two
                    // passes. Re-probe so a racing insert's entry is not
                    // recorded as link-only and lose its canonical warmth
                    // across the restart.
                    let canonical = self
                        .shard(entry.key)
                        .entries
                        .peek(entry.key)
                        .is_some_and(|resident| Arc::ptr_eq(resident, &entry));
                    index.insert(Arc::as_ptr(&entry), out.len());
                    out.push(ExportedEntry {
                        entry: entry.clone(),
                        fingerprints: Vec::new(),
                        canonical,
                    });
                    out.len() - 1
                }
            };
            out[slot].fingerprints.push(fp);
        }
        out
    }

    /// Re-establishes a graph-fingerprint link without touching the
    /// canonical map — the import path for snapshot entries that had been
    /// evicted from the canonical map but were still serving through a
    /// live link. Importing those via [`Self::insert_entry`] would make
    /// them most-recently-used canonical residents and evict genuinely
    /// warm entries.
    pub fn link_graph(&self, fingerprint: u64, graph: Arc<Graph>, entry: Arc<SolveEntry>) {
        let mut shard = self.shard(fingerprint);
        let evicted = shard.by_graph.insert(fingerprint, (graph, entry));
        shard.evictions += evicted;
    }

    /// Aggregated snapshot of all shards' counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            shards: self.shards.len(),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard mutex");
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.evictions += shard.evictions;
            stats.entries += shard.entries.len();
        }
        stats
    }

    /// Per-shard counter snapshot, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| {
                let shard = shard.lock().expect("cache shard mutex");
                ShardStats {
                    hits: shard.hits,
                    misses: shard.misses,
                    evictions: shard.evictions,
                    entries: shard.entries.len(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::parse_cotree_term;

    fn labelled_pair(reversed: bool) -> Cotree {
        // union(0, join(1, 2)) with the union's children in both orders;
        // explicit labels so both cotrees describe the same labelled graph.
        let join = Cotree::join_of_labelled(vec![Cotree::single(1), Cotree::single(2)]);
        let parts = if reversed {
            vec![join, Cotree::single(0)]
        } else {
            vec![Cotree::single(0), join]
        };
        Cotree::union_of_labelled(parts)
    }

    /// A join of `k+2` distinct leaves: distinct canonical key per `k`.
    fn distinct_tree(k: usize) -> Cotree {
        let leaves: Vec<Cotree> = (0..k + 2).map(|v| Cotree::single(v as u32)).collect();
        Cotree::join_of_labelled(leaves)
    }

    #[test]
    fn canonical_key_is_child_order_invariant() {
        assert_eq!(
            canonical_key(&labelled_pair(false)),
            canonical_key(&labelled_pair(true))
        );
        // Term-notation leaves are labelled by first appearance, so the same
        // *shape* with reordered children is a different labelled graph and
        // must NOT collide.
        let a = parse_cotree_term("(u a (j b c))").unwrap();
        let b = parse_cotree_term("(u (j b c) a)").unwrap();
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn canonical_key_separates_union_from_join() {
        let a = parse_cotree_term("(u a b)").unwrap();
        let b = parse_cotree_term("(j a b)").unwrap();
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn canonical_key_is_label_sensitive() {
        // Same shape, different leaf labels -> different labelled graphs.
        let a = Cotree::join_of_labelled(vec![Cotree::single(0), Cotree::single(1)]);
        let b = Cotree::join_of_labelled(vec![Cotree::single(0), Cotree::single(2)]);
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn graph_fingerprint_distinguishes_graphs() {
        let g1 = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let g2 = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let g3 = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g3));
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g1.clone()));
    }

    #[test]
    fn insert_then_lookup_hits() {
        let cache = CotreeCache::new(8);
        let tree = parse_cotree_term("(j a b c)").unwrap();
        let graph = Arc::new(tree.to_graph());
        let fp = graph_fingerprint(&graph);
        assert!(cache.lookup_graph(fp, &graph).is_none());
        let entry = cache.insert(Some((fp, graph.clone())), tree);
        let hit = cache
            .lookup_graph(fp, &graph)
            .expect("fingerprint now cached");
        assert_eq!(hit.key, entry.key);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.shards, DEFAULT_SHARDS);
    }

    #[test]
    fn fingerprint_collision_degrades_to_miss() {
        // Manufacture a collision by registering graph A's entry under a
        // fingerprint, then probing with a *different* graph B claiming the
        // same fingerprint: the exact-graph check must refuse the entry.
        let cache = CotreeCache::new(8);
        let tree_a = parse_cotree_term("(j a b c)").unwrap();
        let graph_a = Arc::new(tree_a.to_graph());
        let fp = graph_fingerprint(&graph_a);
        cache.insert(Some((fp, graph_a)), tree_a);
        let graph_b = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(cache.lookup_graph(fp, &graph_b).is_none());
    }

    #[test]
    fn key_collision_returns_uncached_entry_not_shared_answers() {
        // Simulate a canonical-key collision by handing insert a cotree
        // whose key already maps to a different cotree: the second insert
        // must come back as its own entry, not the resident one.
        let cache = CotreeCache::new(8);
        let t1 = parse_cotree_term("(j a b c)").unwrap();
        let resident = cache.insert(None, t1.clone());
        let t2 = parse_cotree_term("(u a b c)").unwrap();
        // Different cotrees, different keys: sanity that normal inserts
        // don't collide...
        let other = cache.insert(None, t2.clone());
        assert_ne!(resident.key, other.key);
        // ...and that an exact-equal insert does share.
        let same = cache.insert(None, t1.clone());
        assert!(Arc::ptr_eq(&resident, &same));
        // Exact-match guard on lookup: asking for t2 under t1's key misses.
        assert!(cache.lookup_key(resident.key, &t2).is_none());
        assert!(cache.lookup_key(resident.key, &t1).is_some());
    }

    #[test]
    fn equal_cotrees_share_one_entry() {
        let cache = CotreeCache::new(8);
        let a = cache.insert(None, labelled_pair(false));
        let b = cache.insert(None, labelled_pair(true));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // Single shard so capacity pressure is deterministic.
        let cache = CotreeCache::with_shards(2, 1);
        let t1 = parse_cotree_term("(u a b)").unwrap();
        let t2 = parse_cotree_term("(j a b)").unwrap();
        let t3 = parse_cotree_term("(u a b c)").unwrap();
        let k1 = cache.insert(None, t1.clone()).key;
        let k2 = cache.insert(None, t2.clone()).key;
        cache.insert(None, t3.clone());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup_key(k1, &t1).is_none(), "oldest entry evicted");
        assert!(cache.lookup_key(k2, &t2).is_some(), "newer entry kept");
    }

    #[test]
    fn lru_touch_on_hit_protects_hot_entries() {
        // FIFO would evict t1 (inserted first); LRU must evict t2 because a
        // hit on t1 made it the more recently used of the two.
        let cache = CotreeCache::with_shards(2, 1);
        let t1 = parse_cotree_term("(u a b)").unwrap();
        let t2 = parse_cotree_term("(j a b)").unwrap();
        let t3 = parse_cotree_term("(u a b c)").unwrap();
        let k1 = cache.insert(None, t1.clone()).key;
        let k2 = cache.insert(None, t2.clone()).key;
        assert!(cache.lookup_key(k1, &t1).is_some(), "touch t1");
        cache.insert(None, t3.clone());
        assert!(
            cache.lookup_key(k1, &t1).is_some(),
            "touched entry survives"
        );
        assert!(cache.lookup_key(k2, &t2).is_none(), "LRU entry evicted");
    }

    #[test]
    fn graph_links_are_lru_too() {
        let cache = CotreeCache::with_shards(2, 1);
        let trees: Vec<Cotree> = (0..3).map(distinct_tree).collect();
        let graphs: Vec<Arc<Graph>> = trees.iter().map(|t| Arc::new(t.to_graph())).collect();
        let fps: Vec<u64> = graphs.iter().map(|g| graph_fingerprint(g)).collect();
        cache.insert(Some((fps[0], graphs[0].clone())), trees[0].clone());
        cache.insert(Some((fps[1], graphs[1].clone())), trees[1].clone());
        // Touch link 0, then insert link 2: link 1 is the LRU one.
        assert!(cache.lookup_graph(fps[0], &graphs[0]).is_some());
        cache.insert(Some((fps[2], graphs[2].clone())), trees[2].clone());
        assert!(cache.lookup_graph(fps[0], &graphs[0]).is_some());
        assert!(cache.lookup_graph(fps[1], &graphs[1]).is_none());
        assert!(cache.lookup_graph(fps[2], &graphs[2]).is_some());
    }

    #[test]
    fn by_graph_stays_bounded_under_many_graphs_one_cotree() {
        // Hammer one shard with many distinct fingerprint links all pointing
        // at equal cotrees: the graph-link map must stay bounded by its
        // capacity instead of stranding old links (the pre-sharding cache
        // kept only the latest key->fp link and leaked the rest).
        let cache = CotreeCache::with_shards(4, 1);
        let tree = parse_cotree_term("(j a b c)").unwrap();
        let real_graph = Arc::new(tree.to_graph());
        for fp in 0..100u64 {
            // Synthetic fingerprints simulate distinct graphs resolving to
            // one canonical cotree; each insert adds one graph link.
            cache.insert(Some((fp, real_graph.clone())), tree.clone());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "one canonical cotree resident");
        // 100 links through a capacity-4 link map: 96 must have been evicted
        // and the survivors stay within capacity.
        assert_eq!(stats.evictions, 96);
        let resident_links = (0..100u64)
            .filter(|&fp| cache.lookup_graph(fp, &real_graph).is_some())
            .count();
        assert_eq!(resident_links, 4, "links bounded by capacity");
    }

    #[test]
    fn stats_aggregate_across_shards() {
        // Generous capacity (32 per shard) so skew in the key distribution
        // cannot evict anything: the second pass must be pure hits.
        let cache = CotreeCache::with_shards(256, 8);
        let trees: Vec<Cotree> = (0..32).map(distinct_tree).collect();
        for t in &trees {
            let k = canonical_key(t);
            assert!(cache.lookup_key(k, t).is_none()); // 32 misses
            cache.insert(None, t.clone());
        }
        for t in &trees {
            let k = canonical_key(t);
            assert!(cache.lookup_key(k, t).is_some()); // 32 hits
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 32);
        assert_eq!(stats.entries, 32);
        assert_eq!(stats.shards, 8);
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), stats.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<usize>(),
            stats.entries
        );
        // 32 distinct keys across 8 shards: sharding actually spreads them.
        assert!(
            shards.iter().filter(|s| s.entries > 0).count() > 1,
            "keys all landed in one shard: {shards:?}"
        );
    }

    #[test]
    fn per_shard_eviction_under_capacity_pressure() {
        let cache = CotreeCache::with_shards(8, 8); // capacity 1 per shard
        let trees: Vec<Cotree> = (0..64).map(distinct_tree).collect();
        for t in &trees {
            cache.insert(None, t.clone());
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "at most one entry per shard");
        assert_eq!(stats.evictions as usize + stats.entries, 64);
        for s in cache.shard_stats() {
            assert!(s.entries <= 1, "shard over its capacity: {s:?}");
        }
    }

    #[test]
    fn lru_stays_correct_under_churn() {
        // Heavy churn through a small single-shard cache exercises the lazy
        // marker queue (stale markers, compaction): a key touched before
        // every insert must survive the entire sweep, occupancy must never
        // exceed capacity, and eviction accounting must balance.
        let cache = CotreeCache::with_shards(16, 1);
        let pinned = distinct_tree(0);
        let pinned_key = cache.insert(None, pinned.clone()).key;
        for i in 1..1000 {
            assert!(
                cache.lookup_key(pinned_key, &pinned).is_some(),
                "pinned entry evicted at step {i}"
            );
            cache.insert(None, distinct_tree(i));
            let stats = cache.stats();
            assert!(stats.entries <= 16, "over capacity at step {i}: {stats:?}");
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions as usize + stats.entries, 1000);
        assert!(cache.lookup_key(pinned_key, &pinned).is_some());
    }

    #[test]
    fn memoised_answers_match_direct_calls() {
        let tree = parse_cotree_term("(j (u a b) (u c d) e)").unwrap();
        let entry = SolveEntry::new(tree.clone());
        assert_eq!(entry.min_cover_size(), min_path_cover_size(&tree));
        assert_eq!(entry.has_hamiltonian_path(), has_hamiltonian_path(&tree));
        assert_eq!(entry.has_hamiltonian_cycle(), has_hamiltonian_cycle(&tree));
        // Second calls return the memo (same values).
        assert_eq!(entry.min_cover_size(), min_path_cover_size(&tree));
    }

    #[test]
    fn memoised_scalars_round_trip_through_parts() {
        let tree = parse_cotree_term("(j (u a b) c)").unwrap();
        let entry = SolveEntry::new(tree.clone());
        assert_eq!(entry.memoised_scalars(), MemoisedScalars::default());
        entry.min_cover_size();
        entry.has_hamiltonian_path();
        let scalars = entry.memoised_scalars();
        assert_eq!(scalars.min_cover_size, Some(min_path_cover_size(&tree)));
        assert_eq!(scalars.ham_path, Some(has_hamiltonian_path(&tree)));
        assert_eq!(scalars.ham_cycle, None, "cycle was never asked for");

        let rebuilt = SolveEntry::from_parts(tree.clone(), scalars);
        assert_eq!(rebuilt.memoised_scalars(), scalars);
        assert_eq!(rebuilt.min_cover_size(), entry.min_cover_size());
        assert_eq!(rebuilt.key, entry.key);
    }

    #[test]
    fn export_lists_entries_in_lru_order_with_links() {
        // Single shard so the order is fully determined.
        let cache = CotreeCache::with_shards(8, 1);
        let trees: Vec<Cotree> = (0..3).map(distinct_tree).collect();
        let graph1 = Arc::new(trees[1].to_graph());
        let fp1 = graph_fingerprint(&graph1);
        let k0 = cache.insert(None, trees[0].clone()).key;
        cache.insert(Some((fp1, graph1.clone())), trees[1].clone());
        cache.insert(None, trees[2].clone());
        // Touch entry 0: it becomes the most recently used.
        assert!(cache.lookup_key(k0, &trees[0]).is_some());
        let exported = cache.export();
        assert_eq!(exported.len(), 3);
        let keys: Vec<u64> = exported.iter().map(|e| e.entry.key).collect();
        assert_eq!(
            keys,
            vec![
                canonical_key(&trees[1]),
                canonical_key(&trees[2]),
                canonical_key(&trees[0]),
            ],
            "least recently used first, touched entry last"
        );
        let links: Vec<&[u64]> = exported.iter().map(|e| e.fingerprints.as_slice()).collect();
        assert_eq!(links, vec![&[fp1][..], &[][..], &[][..]]);
        assert!(exported.iter().all(|e| e.canonical));
    }

    #[test]
    fn export_keeps_entries_reachable_only_through_graph_links() {
        // Capacity 1: inserting a second cotree evicts the first from the
        // canonical map, but its graph link (stored in another slot of the
        // by_graph LRU) can survive. Export must not drop that entry.
        let cache = CotreeCache::with_shards(1, 1);
        let t0 = distinct_tree(0);
        let g0 = Arc::new(t0.to_graph());
        let fp0 = graph_fingerprint(&g0);
        cache.insert(Some((fp0, g0.clone())), t0.clone());
        cache.insert(None, distinct_tree(1));
        // t0 is gone from the canonical map but still served via its link.
        assert!(cache.lookup_key(canonical_key(&t0), &t0).is_none());
        assert!(cache.lookup_graph(fp0, &g0).is_some());
        let exported = cache.export();
        let link_only = exported
            .iter()
            .find(|e| e.entry.key == canonical_key(&t0))
            .expect("link-only entry must be exported");
        assert_eq!(link_only.fingerprints, [fp0]);
        assert!(
            !link_only.canonical,
            "evicted entry must be marked link-only so import does not \
             promote it over genuinely warm canonical entries"
        );
    }

    #[test]
    fn link_graph_restores_a_link_without_touching_the_canonical_map() {
        let cache = CotreeCache::with_shards(1, 1);
        let resident = distinct_tree(0);
        let resident_key = cache.insert(None, resident.clone()).key;
        let t1 = distinct_tree(1);
        let g1 = Arc::new(t1.to_graph());
        let fp1 = graph_fingerprint(&g1);
        cache.link_graph(fp1, g1.clone(), Arc::new(SolveEntry::new(t1)));
        // The canonical map still holds only `resident`; the link answers.
        assert!(cache.lookup_key(resident_key, &resident).is_some());
        assert!(cache.lookup_graph(fp1, &g1).is_some());
        assert_eq!(cache.stats().entries, 1, "canonical map untouched");
    }

    #[test]
    fn insert_entry_preserves_memoised_scalars() {
        let cache = CotreeCache::new(8);
        let tree = parse_cotree_term("(j a b c)").unwrap();
        let entry = Arc::new(SolveEntry::new(tree));
        entry.min_cover_size();
        let resident = cache.insert_entry(None, entry.clone());
        assert!(Arc::ptr_eq(&resident, &entry));
        assert_eq!(resident.memoised_scalars().min_cover_size, Some(1));
        // Imports are not lookups: no hit/miss distortion.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn hit_rate_is_computed() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }
}
