//! The cotree cache.
//!
//! Recognition (`O(n^2 log n)`) dominates the cost of serving a query that
//! arrives as raw graph text, and binarisation plus the solver dominate the
//! rest. The cache removes both for repeated graphs:
//!
//! * a **graph fingerprint** (hash of the exact vertex count and edge list)
//!   maps previously-seen graphs to their cotree without re-running
//!   recognition, and
//! * a **canonical cotree key** — a hash of the cotree's canonical form,
//!   invariant under reordering of children — maps equal cotrees (however
//!   they were ingested) to one shared [`SolveEntry`] that memoises the
//!   answers every query kind needs: minimum cover size and the two
//!   Hamiltonian decisions.
//!
//! `FullCover` answers are *not* memoised: covers are `O(n)` big, the solver
//! that produces them is `O(n)` too, and every returned cover is re-verified
//! against the request's graph anyway.
//!
//! The cache is a bounded FIFO (default 1024 entries) behind a mutex; hits
//! and misses are counted and surfaced through [`CacheStats`].

use cograph::{Cotree, CotreeKind};
use pathcover::{has_hamiltonian_cycle, has_hamiltonian_path, min_path_cover_size};
use pcgraph::Graph;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Hash of the exact labelled graph (vertex count plus sorted edge list).
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(g.num_vertices() as u64);
    for (u, v) in g.edges() {
        h.write_u64(((u as u64) << 32) | v as u64);
    }
    h.finish()
}

/// Hash of the cotree's canonical form.
///
/// Each node hashes its kind and its children's hashes *sorted*, so the key
/// is invariant under child reordering — `(u a (j b c))` and `(u (j c b) a)`
/// collide on purpose. Leaf labels are part of the hash: two cotrees get the
/// same key only when they describe the same labelled graph, which is what
/// makes cached covers safe to reuse.
pub fn canonical_key(tree: &Cotree) -> u64 {
    let hashes = node_hashes(tree);
    hashes[tree.root()]
}

/// Per-node canonical hashes (see [`canonical_key`]).
fn node_hashes(tree: &Cotree) -> Vec<u64> {
    let mut node_hash = vec![0u64; tree.num_nodes()];
    for u in tree.postorder() {
        let mut h = Fnv::new();
        match tree.kind(u) {
            CotreeKind::Leaf(v) => {
                h.write_u64(1);
                h.write_u64(v as u64);
            }
            kind => {
                h.write_u64(if kind == CotreeKind::Union { 2 } else { 3 });
                let mut child_hashes: Vec<u64> =
                    tree.children(u).iter().map(|&c| node_hash[c]).collect();
                child_hashes.sort_unstable();
                for ch in child_hashes {
                    h.write_u64(ch);
                }
            }
        }
        node_hash[u] = h.finish();
    }
    node_hash
}

/// Exact canonical equality: `true` iff the two cotrees describe the same
/// labelled graph up to reordering of children.
///
/// Children are paired in sorted-hash order and compared recursively, so a
/// hash collision among siblings can only produce a false *negative* (the
/// cache then treats the trees as distinct — lost sharing, never a wrong
/// answer); a `true` result is an exact structural match of the pairing.
pub fn canonical_eq(a: &Cotree, b: &Cotree) -> bool {
    if a.num_nodes() != b.num_nodes() {
        return false;
    }
    let ha = node_hashes(a);
    let hb = node_hashes(b);
    canonical_eq_at(a, a.root(), &ha, b, b.root(), &hb)
}

fn sorted_children(tree: &Cotree, u: usize, hashes: &[u64]) -> Vec<usize> {
    let mut kids: Vec<usize> = tree.children(u).to_vec();
    kids.sort_unstable_by_key(|&c| hashes[c]);
    kids
}

fn canonical_eq_at(a: &Cotree, u: usize, ha: &[u64], b: &Cotree, v: usize, hb: &[u64]) -> bool {
    match (a.kind(u), b.kind(v)) {
        (CotreeKind::Leaf(x), CotreeKind::Leaf(y)) => x == y,
        (ka, kb) if ka == kb => {
            let ca = sorted_children(a, u, ha);
            let cb = sorted_children(b, v, hb);
            ca.len() == cb.len()
                && ca
                    .into_iter()
                    .zip(cb)
                    .all(|(cu, cv)| canonical_eq_at(a, cu, ha, b, cv, hb))
        }
        _ => false,
    }
}

/// A cached cotree plus memoised scalar answers.
#[derive(Debug)]
pub struct SolveEntry {
    /// The canonical key this entry is stored under.
    pub key: u64,
    /// The cotree itself.
    pub cotree: Cotree,
    min_size: OnceLock<usize>,
    ham_path: OnceLock<bool>,
    ham_cycle: OnceLock<bool>,
}

impl SolveEntry {
    /// Wraps a cotree (computing its canonical key).
    pub fn new(cotree: Cotree) -> Self {
        SolveEntry {
            key: canonical_key(&cotree),
            cotree,
            min_size: OnceLock::new(),
            ham_path: OnceLock::new(),
            ham_cycle: OnceLock::new(),
        }
    }

    /// Minimum path-cover size (memoised).
    pub fn min_cover_size(&self) -> usize {
        *self
            .min_size
            .get_or_init(|| min_path_cover_size(&self.cotree))
    }

    /// Hamiltonian-path decision (memoised).
    pub fn has_hamiltonian_path(&self) -> bool {
        *self
            .ham_path
            .get_or_init(|| has_hamiltonian_path(&self.cotree))
    }

    /// Hamiltonian-cycle decision (memoised).
    pub fn has_hamiltonian_cycle(&self) -> bool {
        *self
            .ham_cycle
            .get_or_init(|| has_hamiltonian_cycle(&self.cotree))
    }
}

/// Hit/miss counters, snapshot via [`CotreeCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to recognise/insert fresh.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct CacheInner {
    /// graph fingerprint -> (the exact graph, its canonical key). The graph
    /// is kept so a lookup can confirm the match exactly — a fingerprint
    /// collision (the inputs are untrusted and FNV is not cryptographic)
    /// must degrade to a miss, never serve another graph's answers.
    by_graph: HashMap<u64, (Arc<Graph>, u64)>,
    /// canonical key -> solve entry (exact cotree confirmed on lookup).
    entries: HashMap<u64, Arc<SolveEntry>>,
    /// canonical key -> fingerprint linked to it, for O(1) eviction.
    key_to_fp: HashMap<u64, u64>,
    /// FIFO of canonical keys for eviction.
    order: VecDeque<u64>,
}

/// The bounded, thread-safe cotree cache.
pub struct CotreeCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CotreeCache {
    /// Creates a cache holding at most `capacity` cotrees (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CotreeCache {
            inner: Mutex::new(CacheInner {
                by_graph: HashMap::new(),
                entries: HashMap::new(),
                key_to_fp: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a previously-recognised graph by fingerprint, confirming
    /// the stored graph is *equal* to `graph` (a fingerprint collision is a
    /// miss, never a wrong answer).
    pub fn lookup_graph(&self, fingerprint: u64, graph: &Graph) -> Option<Arc<SolveEntry>> {
        let inner = self.inner.lock().expect("cache mutex");
        let entry = inner
            .by_graph
            .get(&fingerprint)
            .filter(|(stored, _)| **stored == *graph)
            .and_then(|(_, key)| inner.entries.get(key))
            .cloned();
        drop(inner);
        match entry {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a cotree by its canonical key (cotree ingestion path),
    /// confirming the stored cotree is canonically equal.
    pub fn lookup_key(&self, key: u64, cotree: &Cotree) -> Option<Arc<SolveEntry>> {
        let entry = self
            .inner
            .lock()
            .expect("cache mutex")
            .entries
            .get(&key)
            .filter(|e| canonical_eq(&e.cotree, cotree))
            .cloned();
        match entry {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly-built cotree, optionally linking the graph it was
    /// recognised from, and returns the resident entry (which may be a
    /// previously-cached equal cotree).
    ///
    /// If a *different* cotree already occupies the canonical key (a hash
    /// collision), the new cotree is returned uncached: collisions degrade
    /// to cache bypass for the newcomer, never to shared wrong answers.
    pub fn insert(&self, graph: Option<(u64, Arc<Graph>)>, cotree: Cotree) -> Arc<SolveEntry> {
        let entry = Arc::new(SolveEntry::new(cotree));
        let mut inner = self.inner.lock().expect("cache mutex");
        let resident = match inner.entries.get(&entry.key) {
            Some(existing) if canonical_eq(&existing.cotree, &entry.cotree) => existing.clone(),
            Some(_collision) => return entry,
            None => {
                while inner.order.len() >= self.capacity {
                    if let Some(evicted) = inner.order.pop_front() {
                        inner.entries.remove(&evicted);
                        if let Some(fp) = inner.key_to_fp.remove(&evicted) {
                            inner.by_graph.remove(&fp);
                        }
                    }
                }
                inner.order.push_back(entry.key);
                inner.entries.insert(entry.key, entry.clone());
                entry
            }
        };
        if let Some((fp, graph)) = graph {
            inner.by_graph.insert(fp, (graph, resident.key));
            inner.key_to_fp.insert(resident.key, fp);
        }
        resident
    }

    /// Snapshot of the hit/miss counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache mutex").entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::parse_cotree_term;

    fn labelled_pair(reversed: bool) -> Cotree {
        // union(0, join(1, 2)) with the union's children in both orders;
        // explicit labels so both cotrees describe the same labelled graph.
        let join = Cotree::join_of_labelled(vec![Cotree::single(1), Cotree::single(2)]);
        let parts = if reversed {
            vec![join, Cotree::single(0)]
        } else {
            vec![Cotree::single(0), join]
        };
        Cotree::union_of_labelled(parts)
    }

    #[test]
    fn canonical_key_is_child_order_invariant() {
        assert_eq!(
            canonical_key(&labelled_pair(false)),
            canonical_key(&labelled_pair(true))
        );
        // Term-notation leaves are labelled by first appearance, so the same
        // *shape* with reordered children is a different labelled graph and
        // must NOT collide.
        let a = parse_cotree_term("(u a (j b c))").unwrap();
        let b = parse_cotree_term("(u (j b c) a)").unwrap();
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn canonical_key_separates_union_from_join() {
        let a = parse_cotree_term("(u a b)").unwrap();
        let b = parse_cotree_term("(j a b)").unwrap();
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn canonical_key_is_label_sensitive() {
        // Same shape, different leaf labels -> different labelled graphs.
        let a = Cotree::join_of_labelled(vec![Cotree::single(0), Cotree::single(1)]);
        let b = Cotree::join_of_labelled(vec![Cotree::single(0), Cotree::single(2)]);
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn graph_fingerprint_distinguishes_graphs() {
        let g1 = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let g2 = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let g3 = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g3));
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g1.clone()));
    }

    #[test]
    fn insert_then_lookup_hits() {
        let cache = CotreeCache::new(8);
        let tree = parse_cotree_term("(j a b c)").unwrap();
        let graph = Arc::new(tree.to_graph());
        let fp = graph_fingerprint(&graph);
        assert!(cache.lookup_graph(fp, &graph).is_none());
        let entry = cache.insert(Some((fp, graph.clone())), tree);
        let hit = cache
            .lookup_graph(fp, &graph)
            .expect("fingerprint now cached");
        assert_eq!(hit.key, entry.key);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn fingerprint_collision_degrades_to_miss() {
        // Manufacture a collision by registering graph A's entry under a
        // fingerprint, then probing with a *different* graph B claiming the
        // same fingerprint: the exact-graph check must refuse the entry.
        let cache = CotreeCache::new(8);
        let tree_a = parse_cotree_term("(j a b c)").unwrap();
        let graph_a = Arc::new(tree_a.to_graph());
        let fp = graph_fingerprint(&graph_a);
        cache.insert(Some((fp, graph_a)), tree_a);
        let graph_b = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(cache.lookup_graph(fp, &graph_b).is_none());
    }

    #[test]
    fn key_collision_returns_uncached_entry_not_shared_answers() {
        // Simulate a canonical-key collision by handing insert a cotree
        // whose key already maps to a different cotree: the second insert
        // must come back as its own entry, not the resident one.
        let cache = CotreeCache::new(8);
        let t1 = parse_cotree_term("(j a b c)").unwrap();
        let resident = cache.insert(None, t1.clone());
        let t2 = parse_cotree_term("(u a b c)").unwrap();
        // Different cotrees, different keys: sanity that normal inserts
        // don't collide...
        let other = cache.insert(None, t2.clone());
        assert_ne!(resident.key, other.key);
        // ...and that an exact-equal insert does share.
        let same = cache.insert(None, t1.clone());
        assert!(Arc::ptr_eq(&resident, &same));
        // Exact-match guard on lookup: asking for t2 under t1's key misses.
        assert!(cache.lookup_key(resident.key, &t2).is_none());
        assert!(cache.lookup_key(resident.key, &t1).is_some());
    }

    #[test]
    fn equal_cotrees_share_one_entry() {
        let cache = CotreeCache::new(8);
        let a = cache.insert(None, labelled_pair(false));
        let b = cache.insert(None, labelled_pair(true));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let cache = CotreeCache::new(2);
        let t1 = parse_cotree_term("(u a b)").unwrap();
        let t2 = parse_cotree_term("(j a b)").unwrap();
        let t3 = parse_cotree_term("(u a b c)").unwrap();
        let g1 = Arc::new(t1.to_graph());
        let fp1 = graph_fingerprint(&g1);
        let k1 = cache.insert(Some((fp1, g1.clone())), t1.clone()).key;
        cache.insert(None, t2);
        cache.insert(None, t3);
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.lookup_key(k1, &t1).is_none(), "oldest entry evicted");
        assert!(
            cache.lookup_graph(fp1, &g1).is_none(),
            "fingerprint link evicted too"
        );
    }

    #[test]
    fn memoised_answers_match_direct_calls() {
        let tree = parse_cotree_term("(j (u a b) (u c d) e)").unwrap();
        let entry = SolveEntry::new(tree.clone());
        assert_eq!(entry.min_cover_size(), min_path_cover_size(&tree));
        assert_eq!(entry.has_hamiltonian_path(), has_hamiltonian_path(&tree));
        assert_eq!(entry.has_hamiltonian_cycle(), has_hamiltonian_cycle(&tree));
        // Second calls return the memo (same values).
        assert_eq!(entry.min_cover_size(), min_path_cover_size(&tree));
    }
}
