//! # pcservice — the batched path-cover query engine
//!
//! The algorithm crates of this workspace answer one question about one
//! cotree at a time. This crate is the serving layer above them: it takes
//! jobs from raw input all the way to verified answers, in batches, with
//! caching — the shape a production deployment of the Nakano–Olariu–Zomaya
//! pipeline needs.
//!
//! The flow is **ingest → recognize → cache → solve → verify**:
//!
//! 1. [`ingest`] parses edge-list text, DIMACS text or cotree term notation
//!    (`(u (j a b) c)`) into a graph or cotree, with typed errors
//!    ([`IngestError`]) locating the defect.
//! 2. Graphs are run through the linear-time incremental recogniser
//!    ([`cograph::try_recognize`]); non-cographs fail their job with
//!    [`ServiceError::NotACograph`], which carries the induced-`P_4`
//!    certificate into the wire error body of both transports.
//! 3. The sharded [`cache`] keys cotrees by a canonical-form hash
//!    (child-order invariant) and remembers graph fingerprints with
//!    per-shard LRU eviction, so a repeated graph skips recognition
//!    entirely and equal cotrees share memoised answers.
//! 4. [`engine::QueryEngine`] answers the five [`QueryKind`]s —
//!    `MinCoverSize`, `FullCover`, `HamiltonianPath`, `HamiltonianCycle`,
//!    `Recognize` — one request at a time or fanned across a std-thread pool
//!    with per-job isolation (typed errors *and* panic containment).
//! 5. Every returned cover and Hamiltonian witness is re-checked with
//!    [`pcgraph::verify_path_cover`] before the response leaves the engine.
//!
//! Above the engine sits the serving stack: [`v2`] defines the versioned
//! request envelope (`{op, target, params, trace_id}`) and the single
//! dispatcher every operation runs through; [`proto`] defines a
//! length-framed JSON wire format over any byte stream, carrying both the
//! legacy v1 verbs (`hello` / `solve` / `batch` / `stats` / `snapshot` /
//! `shutdown`, each a thin shim over the v2 dispatcher) and raw `pcp2`
//! envelope frames; [`http`] adapts the same messages to HTTP/1.1 routes
//! (`POST /v1/solve`, `POST /v1/batch`, `GET /v1/stats`, `GET /healthz`,
//! `POST /v1/snapshot`, `POST /v1/shutdown`, and `POST /v2/query` for the
//! envelope); and [`daemon`] runs a long-lived shared engine behind a unix
//! domain socket, a TCP socket, or both at once, so the cotree cache
//! amortises across client processes and transports. [`session`] adds
//! daemon-resident graph handles on top: mutate a resident graph
//! edge-by-edge and query its incrementally-maintained cotree (insertions
//! never re-run full recognition; an illegal one is refused with its
//! induced-`P_4` witness and the session keeps its last good state).
//! [`snapshot`] makes the cache survive the process itself: a verified,
//! checksummed on-disk format (`pcsnap1`) saved on shutdown and on a
//! background checkpoint interval, reloaded — after integrity verification,
//! with corrupt files quarantined — when the daemon starts, so restarts
//! begin warm.
//!
//! The `pathcover-cli` binary in this crate exposes the engine on the
//! command line (`solve`, `batch`, `bench`, `recognize`, plus a `session`
//! noun that drives the v2 envelope) reading files or stdin and emitting
//! human-readable text or JSON lines; `serve` starts the daemon
//! (`--socket` and/or `--http`) and `--remote <socket>` /
//! `--remote-http <addr>` turn the query subcommands into thin clients of
//! one.
//!
//! ```
//! use pcservice::{EngineConfig, GraphSpec, QueryEngine, QueryKind, QueryRequest};
//!
//! let engine = QueryEngine::new(EngineConfig::default());
//! let request = QueryRequest::new(
//!     QueryKind::MinCoverSize,
//!     GraphSpec::CotreeTerm("(u (j a b) c)".to_string()),
//! );
//! let response = engine.execute(&request);
//! assert!(response.outcome.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
#[cfg(unix)]
pub mod daemon;
pub mod engine;
pub mod error;
pub mod faults;
pub mod http;
pub mod ingest;
pub mod json;
pub mod log;
pub mod model;
pub mod proto;
pub mod session;
pub mod snapshot;
pub mod telemetry;
pub mod trace;
pub mod v2;

pub use cache::{
    canonical_eq, canonical_key, graph_fingerprint, CacheStats, CotreeCache, MemoisedScalars,
    ShardStats, SolveEntry, DEFAULT_SHARDS,
};
#[cfg(unix)]
pub use daemon::{Daemon, DaemonConfig, ShutdownSignal};
pub use engine::{EngineConfig, InflightGuard, QueryEngine, SnapshotMeta, DEFAULT_RETRY_AFTER_MS};
pub use error::ServiceError;
pub use faults::{FaultSpec, Faults};
pub use http::HttpError;
pub use ingest::{cotree_to_term, GraphFormat, IngestError, Ingested};
pub use json::{Json, JsonError};
pub use model::{
    Answer, CacheStatus, GraphSpec, QueryKind, QueryRequest, QueryResponse, ResponseMeta,
};
pub use proto::{ProtoError, MAX_FRAME_LEN, PROTO_VERSION};
pub use session::{Maintenance, SessionInfo, SessionRegistry, SessionState};
pub use snapshot::{LoadOutcome, SnapshotError, SNAPSHOT_VERSION};
pub use telemetry::{
    Histogram, HistogramSnapshot, MetricsReport, Outcome, PipelineClock, RequestCtx, Stage,
    Telemetry, Transport,
};
pub use trace::{FinishedTrace, FlightRecorder, Span, SpanCollector, TraceConfig};
pub use v2::API_VERSION;
