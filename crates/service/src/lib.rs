//! # pcservice — the batched path-cover query engine
//!
//! The algorithm crates of this workspace answer one question about one
//! cotree at a time. This crate is the serving layer above them: it takes
//! jobs from raw input all the way to verified answers, in batches, with
//! caching — the shape a production deployment of the Nakano–Olariu–Zomaya
//! pipeline needs.
//!
//! The flow is **ingest → recognize → cache → solve → verify**:
//!
//! 1. [`ingest`] parses edge-list text, DIMACS text or cotree term notation
//!    (`(u (j a b) c)`) into a graph or cotree, with typed errors
//!    ([`IngestError`]) locating the defect.
//! 2. Graphs are run through [`cograph::recognize`]; non-cographs fail their
//!    job with [`ServiceError::NotACograph`].
//! 3. The [`cache`] keys cotrees by a canonical-form hash (child-order
//!    invariant) and remembers graph fingerprints, so a repeated graph skips
//!    recognition entirely and equal cotrees share memoised answers.
//! 4. [`engine::QueryEngine`] answers the five [`QueryKind`]s —
//!    `MinCoverSize`, `FullCover`, `HamiltonianPath`, `HamiltonianCycle`,
//!    `Recognize` — one request at a time or fanned across a std-thread pool
//!    with per-job isolation (typed errors *and* panic containment).
//! 5. Every returned cover and Hamiltonian witness is re-checked with
//!    [`pcgraph::verify_path_cover`] before the response leaves the engine.
//!
//! The `pathcover-cli` binary in this crate exposes the engine on the
//! command line (`solve`, `batch`, `bench`, `recognize`) reading files or
//! stdin and emitting human-readable text or JSON lines.
//!
//! ```
//! use pcservice::{EngineConfig, GraphSpec, QueryEngine, QueryKind, QueryRequest};
//!
//! let engine = QueryEngine::new(EngineConfig::default());
//! let request = QueryRequest::new(
//!     QueryKind::MinCoverSize,
//!     GraphSpec::CotreeTerm("(u (j a b) c)".to_string()),
//! );
//! let response = engine.execute(&request);
//! assert!(response.outcome.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod ingest;
pub mod json;
pub mod model;

pub use cache::{
    canonical_eq, canonical_key, graph_fingerprint, CacheStats, CotreeCache, SolveEntry,
};
pub use engine::{EngineConfig, QueryEngine};
pub use error::ServiceError;
pub use ingest::{cotree_to_term, GraphFormat, IngestError, Ingested};
pub use json::{Json, JsonError};
pub use model::{
    Answer, CacheStatus, GraphSpec, QueryKind, QueryRequest, QueryResponse, ResponseMeta,
};
