//! Fault injection for chaos testing the daemon.
//!
//! A [`FaultSpec`] describes which faults to inject and how often; a
//! [`Faults`] runtime makes the per-event decisions deterministically from
//! a seeded counter, so a chaos run with a fixed seed injects the same
//! fault sequence every time. The harness is compiled in but default-off:
//! the all-zero spec ([`FaultSpec::default`]) makes every hook a no-op, so
//! production binaries pay a single branch per hook.
//!
//! Faults are enabled with `pathcover-cli serve --fault-spec <spec>` or the
//! `PC_FAULTS` environment variable. The grammar is comma-separated
//! `key=value` pairs:
//!
//! ```text
//! accept_delay_ms=5,frame_stall_ms=20,panic_rate=0.05,overload_rate=0.2,seed=42
//! ```
//!
//! * `accept_delay_ms` — sleep this long after every accepted connection,
//!   simulating a slow accept path.
//! * `frame_stall_ms` — sleep this long before serving each request,
//!   simulating a stalled handler mid-frame.
//! * `panic_rate` — probability (`0.0..=1.0`) that a request handler
//!   panics; the daemon must contain the panic to that connection.
//! * `overload_rate` — probability that a request is answered with a
//!   forced `overloaded` rejection without touching the engine.
//! * `seed` — seed of the deterministic decision stream.
//!
//! The chaos integration suite (`tests/chaos.rs`) and the `chaos-smoke` CI
//! job drive the daemon through these faults and assert that every reply
//! is either byte-identical to the fault-free run or a typed
//! `overloaded` error, and that drain shutdown stays clean.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which faults to inject and how often. The all-zero default disables
/// everything.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Milliseconds to sleep after every accepted connection.
    pub accept_delay_ms: u64,
    /// Milliseconds to stall before serving each request.
    pub frame_stall_ms: u64,
    /// Probability (`0.0..=1.0`) that a request handler panics.
    pub panic_rate: f64,
    /// Probability (`0.0..=1.0`) that a request is rejected `overloaded`.
    pub overload_rate: f64,
    /// Seed of the deterministic decision stream.
    pub seed: u64,
}

impl FaultSpec {
    /// Parses the `key=value,key=value` grammar (see the module docs).
    /// Unknown keys, malformed numbers, and rates outside `0.0..=1.0` are
    /// rejected with a message naming the offending pair. The empty string
    /// parses to the disabled spec.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for pair in text.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry '{pair}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad_num = || format!("fault spec entry '{pair}' has a malformed value");
            match key {
                "accept_delay_ms" => spec.accept_delay_ms = value.parse().map_err(|_| bad_num())?,
                "frame_stall_ms" => spec.frame_stall_ms = value.parse().map_err(|_| bad_num())?,
                "panic_rate" => spec.panic_rate = parse_rate(value).ok_or_else(bad_num)?,
                "overload_rate" => spec.overload_rate = parse_rate(value).ok_or_else(bad_num)?,
                "seed" => spec.seed = value.parse().map_err(|_| bad_num())?,
                other => {
                    return Err(format!(
                        "unknown fault spec key '{other}' (expected accept_delay_ms, \
                         frame_stall_ms, panic_rate, overload_rate, or seed)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Whether any fault is configured (false for the all-zero default).
    pub fn is_active(&self) -> bool {
        self.accept_delay_ms != 0
            || self.frame_stall_ms != 0
            || self.panic_rate > 0.0
            || self.overload_rate > 0.0
    }
}

fn parse_rate(value: &str) -> Option<f64> {
    let rate: f64 = value.parse().ok()?;
    (0.0..=1.0).contains(&rate).then_some(rate)
}

/// The fault-injection runtime: a [`FaultSpec`] plus the deterministic
/// decision stream. One instance is shared by every connection handler of
/// a daemon, so rate decisions are made over the global request sequence.
#[derive(Debug, Default)]
pub struct Faults {
    spec: FaultSpec,
    seq: AtomicU64,
}

impl Faults {
    /// Builds the runtime for a spec. [`Faults::default`] is the disabled
    /// runtime (every hook a no-op).
    pub fn new(spec: FaultSpec) -> Self {
        Faults {
            spec,
            seq: AtomicU64::new(0),
        }
    }

    /// The spec this runtime was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Whether any fault is configured.
    pub fn is_active(&self) -> bool {
        self.spec.is_active()
    }

    /// The configured post-accept delay, if any.
    pub fn accept_delay(&self) -> Option<Duration> {
        (self.spec.accept_delay_ms != 0).then(|| Duration::from_millis(self.spec.accept_delay_ms))
    }

    /// The configured pre-request stall, if any.
    pub fn frame_stall(&self) -> Option<Duration> {
        (self.spec.frame_stall_ms != 0).then(|| Duration::from_millis(self.spec.frame_stall_ms))
    }

    /// Whether the next request handler should panic (deterministic in the
    /// seed and the request sequence number).
    pub fn should_panic(&self) -> bool {
        self.spec.panic_rate > 0.0 && self.roll() < self.spec.panic_rate
    }

    /// Whether the next request should be answered with a forced
    /// `overloaded` rejection.
    pub fn should_overload(&self) -> bool {
        self.spec.overload_rate > 0.0 && self.roll() < self.spec.overload_rate
    }

    /// One draw from the decision stream, uniform in `[0, 1)`: a
    /// splitmix64-style mix of the seed and a global sequence counter.
    /// Deterministic — no clocks, no OS randomness — so a seeded chaos run
    /// is reproducible.
    fn roll(&self) -> f64 {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut z = self
            .spec
            .seed
            .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // 53 high bits → uniform double in [0, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_default_specs_are_disabled() {
        assert!(!FaultSpec::default().is_active());
        assert!(!FaultSpec::parse("").expect("empty spec").is_active());
        let faults = Faults::default();
        assert!(faults.accept_delay().is_none());
        assert!(faults.frame_stall().is_none());
        assert!(!faults.should_panic());
        assert!(!faults.should_overload());
    }

    #[test]
    fn grammar_round_trips_every_key() {
        let spec = FaultSpec::parse(
            "accept_delay_ms=5, frame_stall_ms=20,panic_rate=0.05,overload_rate=0.2,seed=42",
        )
        .expect("full spec");
        assert_eq!(
            spec,
            FaultSpec {
                accept_delay_ms: 5,
                frame_stall_ms: 20,
                panic_rate: 0.05,
                overload_rate: 0.2,
                seed: 42,
            }
        );
        assert!(spec.is_active());
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_offender_named() {
        for (spec, fragment) in [
            ("bogus=1", "unknown fault spec key 'bogus'"),
            ("panic_rate=2.0", "malformed value"),
            ("overload_rate=-0.1", "malformed value"),
            ("accept_delay_ms=abc", "malformed value"),
            ("frame_stall_ms", "not key=value"),
        ] {
            let error = FaultSpec::parse(spec).expect_err(spec);
            assert!(error.contains(fragment), "for '{spec}': {error}");
        }
    }

    #[test]
    fn rate_decisions_are_deterministic_and_roughly_calibrated() {
        let spec = FaultSpec {
            overload_rate: 0.25,
            seed: 7,
            ..FaultSpec::default()
        };
        let a = Faults::new(spec.clone());
        let b = Faults::new(spec);
        let draws_a: Vec<bool> = (0..1000).map(|_| a.should_overload()).collect();
        let draws_b: Vec<bool> = (0..1000).map(|_| b.should_overload()).collect();
        assert_eq!(draws_a, draws_b, "same seed, same decision stream");
        let hits = draws_a.iter().filter(|&&x| x).count();
        assert!(
            (150..=350).contains(&hits),
            "rate 0.25 over 1000 draws should land near 250, got {hits}"
        );
    }

    #[test]
    fn zero_rate_never_fires_and_one_always_fires() {
        let never = Faults::new(FaultSpec {
            panic_rate: 0.0,
            seed: 3,
            ..FaultSpec::default()
        });
        let always = Faults::new(FaultSpec {
            overload_rate: 1.0,
            seed: 3,
            ..FaultSpec::default()
        });
        for _ in 0..100 {
            assert!(!never.should_panic());
            assert!(always.should_overload());
        }
    }
}
